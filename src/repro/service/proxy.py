"""Network-fault chaos proxy: the PR 4 chaos philosophy applied to the wire.

A seeded asyncio TCP proxy that sits between a client and the renaming
daemon and injects the faults a real network serves up: abrupt connection
**resets**, **mid-frame truncation** (forward part of a frame, then
close), byte-level **corruption** (one flipped byte), **stalls** (stop
forwarding long enough to trip the client's timeout), and **duplicate
delivery** (the same chunk twice). The recovery suite and ``make
recovery-smoke`` drive client traffic through it to prove the typed-error
contract: every injected fault surfaces on the client as a typed
:class:`~repro.service.load.SessionOutcome` status — never a hang, never
a silent wrong answer — and, with idempotency tokens, a retry through the
journal loses nothing.

Faults are drawn per connection from a :func:`repro.sim.rng.derive_seed`
stream keyed on ``(seed, "proxy-conn", index)``: the same seed yields the
same fault schedule for the same connection order. At most one fault
fires per connection (the probabilities are tried in a fixed order), on a
byte offset early in the chosen direction's stream so small frames are
still hit.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

from ..sim.errors import ConfigurationError
from ..sim.rng import derive_seed

__all__ = ["ChaosProxy", "ProxyFaults", "ProxyStats"]

#: Fault kinds, in the order probabilities are tried per connection.
FAULT_KINDS = ("reset", "truncate", "corrupt", "stall", "duplicate")

#: Directions a fault may target: client→server ("up") or server→client
#: ("down"). "both" lets the per-connection RNG pick.
DIRECTIONS = ("up", "down", "both")

#: Injected faults land within the first this-many bytes of the chosen
#: direction's stream — early enough to hit even a Welcome-sized frame.
_MAX_FAULT_OFFSET = 24


@dataclass(frozen=True)
class ProxyFaults:
    """Per-connection fault probabilities (each in [0, 1]).

    ``stall_s`` is how long a stall stops forwarding — set it beyond the
    client's timeout to turn a stall into a client-observed timeout.
    ``direction`` restricts which half of the conversation faults hit
    (useful for deterministic tests); ``"both"`` picks per connection.
    """

    reset: float = 0.0
    truncate: float = 0.0
    corrupt: float = 0.0
    stall: float = 0.0
    duplicate: float = 0.0
    stall_s: float = 5.0
    direction: str = "both"

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            probability = getattr(self, kind)
            if not 0.0 <= probability <= 1.0:
                raise ConfigurationError(
                    f"fault probability {kind}={probability} outside [0, 1]"
                )
        if self.direction not in DIRECTIONS:
            raise ConfigurationError(
                f"unknown fault direction {self.direction!r} "
                f"(expected one of {DIRECTIONS})"
            )

    @property
    def any_enabled(self) -> bool:
        return any(getattr(self, kind) > 0.0 for kind in FAULT_KINDS)


@dataclass
class ProxyStats:
    """What the proxy did, per fault kind."""

    connections: int = 0
    upstream_failures: int = 0  # daemon connect failed; client closed
    resets: int = 0
    truncations: int = 0
    corruptions: int = 0
    stalls: int = 0
    duplicates: int = 0
    forwarded_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "connections": self.connections,
            "upstream_failures": self.upstream_failures,
            "resets": self.resets,
            "truncations": self.truncations,
            "corruptions": self.corruptions,
            "stalls": self.stalls,
            "duplicates": self.duplicates,
            "forwarded_bytes": self.forwarded_bytes,
        }


class _Abort(Exception):
    """Internal: stop this connection now (clean close or hard reset)."""

    def __init__(self, hard: bool) -> None:
        super().__init__("abort")
        self.hard = hard


@dataclass
class _Plan:
    """The (at most one) fault this connection will suffer."""

    kind: Optional[str] = None
    direction: str = "down"
    offset: int = 0


class ChaosProxy:
    """A seeded TCP proxy injecting network faults between two peers."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        faults: Optional[ProxyFaults] = None,
        seed: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.host = host
        self.port = port
        self.faults = faults if faults is not None else ProxyFaults()
        self.seed = seed
        self.stats = ProxyStats()
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        self._next_index = 0

    # ------------------------------------------------------------ lifecycle

    @property
    def bound_address(self) -> Tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("proxy is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro-renaming proxy`` loop)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ---------------------------------------------------------- fault plans

    def _draw_plan(self, rng: random.Random) -> _Plan:
        plan = _Plan()
        for kind in FAULT_KINDS:
            if rng.random() < getattr(self.faults, kind):
                plan.kind = kind
                break
        if plan.kind is None:
            return plan
        if self.faults.direction == "both":
            plan.direction = rng.choice(("up", "down"))
        else:
            plan.direction = self.faults.direction
        plan.offset = rng.randrange(1, _MAX_FAULT_OFFSET)
        return plan

    # -------------------------------------------------------- per-connection

    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        index = self._next_index
        self._next_index += 1
        self.stats.connections += 1
        rng = random.Random(derive_seed(self.seed, "proxy-conn", index))
        plan = self._draw_plan(rng)
        try:
            try:
                upstream_reader, upstream_writer = await asyncio.open_connection(
                    self.upstream_host, self.upstream_port
                )
            except (ConnectionError, OSError):
                self.stats.upstream_failures += 1
                await self._shutdown_writer(client_writer, hard=False)
                return
            up = asyncio.ensure_future(
                self._pump(
                    client_reader,
                    upstream_writer,
                    plan if plan.direction == "up" else _Plan(),
                )
            )
            down = asyncio.ensure_future(
                self._pump(
                    upstream_reader,
                    client_writer,
                    plan if plan.direction == "down" else _Plan(),
                )
            )
            hard = False
            try:
                done, pending = await asyncio.wait(
                    {up, down}, return_when=asyncio.FIRST_COMPLETED
                )
                for finished in done:
                    exc = finished.exception()
                    if isinstance(exc, _Abort):
                        hard = exc.hard
                for pump in pending:
                    pump.cancel()
                await asyncio.gather(up, down, return_exceptions=True)
            finally:
                await self._shutdown_writer(client_writer, hard=hard)
                await self._shutdown_writer(upstream_writer, hard=hard)
        except asyncio.CancelledError:
            await self._shutdown_writer(client_writer, hard=True)
            raise
        finally:
            self._connections.discard(task)

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        plan: _Plan,
    ) -> None:
        """Forward one direction, applying the plan's fault at its offset."""
        kind = plan.kind
        sent = 0
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                if kind is not None and sent <= plan.offset < sent + len(chunk):
                    cut = plan.offset - sent
                    if kind == "reset":
                        self.stats.resets += 1
                        raise _Abort(hard=True)
                    if kind == "truncate":
                        writer.write(chunk[:cut])
                        await writer.drain()
                        self.stats.forwarded_bytes += cut
                        self.stats.truncations += 1
                        raise _Abort(hard=False)
                    if kind == "corrupt":
                        chunk = (
                            chunk[:cut]
                            + bytes([chunk[cut] ^ 0xFF])
                            + chunk[cut + 1:]
                        )
                        self.stats.corruptions += 1
                    elif kind == "stall":
                        writer.write(chunk[:cut])
                        await writer.drain()
                        self.stats.forwarded_bytes += cut
                        self.stats.stalls += 1
                        await asyncio.sleep(self.faults.stall_s)
                        chunk = chunk[cut:]
                    elif kind == "duplicate":
                        self.stats.duplicates += 1
                        chunk = chunk + chunk
                    kind = None  # one firing per connection
                writer.write(chunk)
                await writer.drain()
                sent += len(chunk)
                self.stats.forwarded_bytes += len(chunk)
        except (ConnectionError, OSError):
            return

    async def _shutdown_writer(
        self, writer: asyncio.StreamWriter, *, hard: bool
    ) -> None:
        try:
            if hard:
                transport = writer.transport
                if transport is not None:
                    transport.abort()
                return
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
