"""Load generator and client library for the renaming daemon.

:func:`run_session` speaks the full session protocol once and — crucially
— **re-validates the assignment client-side**: the names that came back
are pushed through the same :func:`repro.analysis.properties.check_renaming`
the server used, so a server that ships a rosy certificate over a broken
assignment is caught at the other end of the wire.

Every transport failure maps to a *typed* :class:`SessionOutcome` status —
``refused``, ``timeout``, ``disconnected``, ``wire-error`` — never an
escaped exception or a hang: that is the contract the chaos-proxy suite
(``tests/test_service_proxy.py``) drives fault by fault.

:func:`run_session_with_retry` wraps one session in the shared jittered
backoff (:class:`repro.analysis.backoff.PollBackoff`). Connect-level
failures are always retried; mid-session failures only when the session
carries an idempotency token — then re-submission is safe by the journal
contract (same token → replay, not re-run). :func:`run_query` asks a
``--session-journal`` daemon what happened to a token.

:func:`run_load` drives many sessions concurrently (bounded by a
semaphore) and aggregates a :class:`LoadReport` with throughput and
p50/p99 latency — the numbers ``make service-smoke`` and
``benchmarks/bench_service_load.py`` assert on. ``ServerBusy`` is
backpressure, not an error: the generator backs off and retries within a
bounded budget, reporting busy-retries separately.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.backoff import PollBackoff
from ..analysis.properties import check_renaming
from ..wire import WireError
from ..workloads import make_ids
from .frames import read_frame, write_frame
from .messages import (
    CertificateMessage,
    CloseSessionMessage,
    NamesAssignedMessage,
    OpenSessionMessage,
    QueryRequestMessage,
    QueryResponseMessage,
    RegisterIdsMessage,
    ServerBusyMessage,
    SessionErrorMessage,
    SessionWelcomeMessage,
)

__all__ = [
    "LoadReport",
    "QueryOutcome",
    "SessionOutcome",
    "run_load",
    "run_query",
    "run_query_with_retry",
    "run_session",
    "run_session_with_retry",
    "validate_names",
]

#: Default client backoff between retries (floor, cap — seconds).
_RETRY_FLOOR_S = 0.05
_RETRY_CAP_S = 2.0


class _AssignmentView:
    """Adapter: a bare (original → name) mapping as check_renaming input."""

    def __init__(self, names: Dict[int, int]) -> None:
        self._names = dict(names)

    def outputs_by_id(self) -> Dict[int, int]:
        return dict(self._names)


def validate_names(
    entries: Sequence[Tuple[int, int]],
    namespace: int,
    expected_count: int,
    *,
    order_preserving: bool = True,
) -> List[str]:
    """Client-side re-validation of a served assignment.

    Returns the violation strings (empty = the assignment really does
    satisfy the renaming properties the certificate claims).
    """
    report = check_renaming(
        _AssignmentView(dict(entries)), namespace, expected_count=expected_count
    )
    ok = report.ok if order_preserving else report.ok_without_order()
    if ok:
        return []
    if order_preserving:
        return list(report.violations)
    return [v for v in report.violations if not v.startswith("order:")]


@dataclass
class SessionOutcome:
    """What one driven session produced.

    ``entries``/``certificate`` carry the served assignment on
    ``completed`` (and ``violation``) outcomes so callers — the recovery
    suite above all — can compare results across retries byte-for-byte.
    """

    status: str  # completed|busy|rejected|invalid|violation|refused|timeout|disconnected|wire-error
    latency_s: float = 0.0
    code: str = ""       # SessionError code when status == "rejected"
    detail: str = ""
    algorithm: str = ""
    rounds: int = 0
    entries: Tuple[Tuple[int, int], ...] = ()
    certificate: Optional[CertificateMessage] = None


async def run_session(
    host: str,
    port: int,
    *,
    ids: Sequence[int],
    algorithm: str = "auto",
    t: int = 0,
    attack: str = "silent",
    seed: int = 0,
    timeout_s: float = 30.0,
    register_chunk: int = 0,
    session_id: str = "",
) -> SessionOutcome:
    """Drive one complete session; never raises for protocol-level outcomes.

    ``register_chunk`` splits the ids over several RegisterIds frames
    (0 = one frame), exercising the repeatable-registration path.
    ``session_id`` is the idempotency token (requires a daemon running
    with ``--session-journal``; empty = anonymous).
    """
    started = time.monotonic()
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout_s
        )
    except (ConnectionError, OSError):
        return SessionOutcome(status="refused")
    except asyncio.TimeoutError:
        return SessionOutcome(status="timeout", detail="connect")
    try:
        try:
            greeting = await asyncio.wait_for(read_frame(reader), timeout=timeout_s)
        except asyncio.TimeoutError:
            return SessionOutcome(status="timeout", detail="welcome")
        if isinstance(greeting, ServerBusyMessage):
            return SessionOutcome(
                status="busy",
                detail=f"{greeting.active}/{greeting.limit} sessions active",
            )
        if not isinstance(greeting, SessionWelcomeMessage):
            return SessionOutcome(
                status="disconnected", detail="no welcome frame"
            )
        await write_frame(
            writer,
            OpenSessionMessage(
                algorithm=algorithm, t=t, attack=attack, seed=seed,
                session_id=session_id,
            ),
        )
        id_list = [int(i) for i in ids]
        chunk = register_chunk if register_chunk > 0 else len(id_list)
        for start in range(0, len(id_list), max(1, chunk)):
            await write_frame(
                writer,
                RegisterIdsMessage(ids=tuple(id_list[start:start + max(1, chunk)])),
            )
        await write_frame(writer, CloseSessionMessage())
        try:
            first = await asyncio.wait_for(read_frame(reader), timeout=timeout_s)
        except asyncio.TimeoutError:
            return SessionOutcome(status="timeout", detail="response")
        if first is None:
            return SessionOutcome(status="disconnected", detail="before response")
        if isinstance(first, SessionErrorMessage):
            return SessionOutcome(status="rejected", code=first.code, detail=first.detail)
        if not isinstance(first, NamesAssignedMessage):
            return SessionOutcome(
                status="disconnected",
                detail=f"unexpected {type(first).__name__} response",
            )
        try:
            certificate = await asyncio.wait_for(read_frame(reader), timeout=timeout_s)
        except asyncio.TimeoutError:
            return SessionOutcome(status="timeout", detail="certificate")
        if not isinstance(certificate, CertificateMessage):
            return SessionOutcome(status="disconnected", detail="no certificate frame")
        latency = time.monotonic() - started
        if not certificate.ok:
            return SessionOutcome(
                status="violation",
                latency_s=latency,
                detail="; ".join(certificate.violations),
                algorithm=first.algorithm,
                rounds=first.rounds,
                entries=first.entries,
                certificate=certificate,
            )
        problems = validate_names(
            first.entries,
            certificate.namespace,
            expected_count=len(id_list) - t,
            order_preserving="order_preservation" in certificate.checked,
        )
        if problems:
            return SessionOutcome(
                status="invalid",
                latency_s=latency,
                detail="certificate says ok but client re-check found: "
                + "; ".join(problems),
                algorithm=first.algorithm,
                rounds=first.rounds,
            )
        return SessionOutcome(
            status="completed",
            latency_s=latency,
            algorithm=first.algorithm,
            rounds=first.rounds,
            entries=first.entries,
            certificate=certificate,
        )
    except WireError as exc:
        # A corrupted byte stream (chaos proxy, broken middlebox) is a
        # typed client outcome, never an escaped exception.
        return SessionOutcome(status="wire-error", detail=str(exc))
    except (ConnectionError, OSError) as exc:
        return SessionOutcome(
            status="disconnected", detail=f"{type(exc).__name__}: {exc}"
        )
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _retryable(outcome: "SessionOutcome", session_id: str) -> bool:
    """May this outcome be retried without risking a duplicate run?

    Connect-level failures (nothing was submitted) are always safe.
    Mid-session failures — a timeout or disconnect after the submission
    may have reached the daemon, a corrupted response — are only safe
    under an idempotency token: the journal guarantees the retry is
    answered by replay, not a second execution.
    """
    if outcome.status == "refused":
        return True
    if outcome.status == "timeout" and outcome.detail == "connect":
        return True
    if session_id and outcome.status in ("timeout", "disconnected", "wire-error"):
        return True
    return False


async def run_session_with_retry(
    host: str,
    port: int,
    *,
    retries: int = 0,
    backoff: Optional[PollBackoff] = None,
    session_id: str = "",
    **kwargs,
) -> SessionOutcome:
    """:func:`run_session` under the shared jittered backoff.

    Retries at most ``retries`` times, only for outcomes
    :func:`_retryable` says are safe given the token. Returns the final
    outcome either way.
    """
    policy = backoff or PollBackoff(_RETRY_FLOOR_S, _RETRY_CAP_S)
    attempt = 0
    while True:
        outcome = await run_session(host, port, session_id=session_id, **kwargs)
        if attempt >= retries or not _retryable(outcome, session_id):
            return outcome
        attempt += 1
        await asyncio.sleep(policy.next_delay())


@dataclass
class QueryOutcome:
    """What a ``QueryRequest`` against the daemon's journal produced.

    ``status`` is a journal state (``completed``/``failed``/``in-flight``/
    ``unknown``) on success, or one of the transport/typed-error statuses
    (``busy``/``rejected``/``refused``/``timeout``/``disconnected``/
    ``wire-error``) otherwise.
    """

    status: str
    code: str = ""       # SessionError code (status == "rejected"/"failed")
    detail: str = ""
    entries: Tuple[Tuple[int, int], ...] = ()
    certificate: Optional[CertificateMessage] = None
    algorithm: str = ""
    rounds: int = 0


async def run_query(
    host: str,
    port: int,
    session_id: str,
    *,
    timeout_s: float = 30.0,
) -> QueryOutcome:
    """Ask a ``--session-journal`` daemon what happened to a token."""
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout_s
        )
    except (ConnectionError, OSError):
        return QueryOutcome(status="refused")
    except asyncio.TimeoutError:
        return QueryOutcome(status="timeout", detail="connect")
    try:
        try:
            greeting = await asyncio.wait_for(read_frame(reader), timeout=timeout_s)
        except asyncio.TimeoutError:
            return QueryOutcome(status="timeout", detail="welcome")
        if isinstance(greeting, ServerBusyMessage):
            return QueryOutcome(
                status="busy",
                detail=f"{greeting.active}/{greeting.limit} sessions active",
            )
        if not isinstance(greeting, SessionWelcomeMessage):
            return QueryOutcome(status="disconnected", detail="no welcome frame")
        await write_frame(writer, QueryRequestMessage(session_id=session_id))
        try:
            response = await asyncio.wait_for(read_frame(reader), timeout=timeout_s)
        except asyncio.TimeoutError:
            return QueryOutcome(status="timeout", detail="response")
        if response is None:
            return QueryOutcome(status="disconnected", detail="before response")
        if isinstance(response, SessionErrorMessage):
            return QueryOutcome(
                status="rejected", code=response.code, detail=response.detail
            )
        if not isinstance(response, QueryResponseMessage):
            return QueryOutcome(
                status="disconnected",
                detail=f"unexpected {type(response).__name__} response",
            )
        if response.state == "completed":
            try:
                names = await asyncio.wait_for(read_frame(reader), timeout=timeout_s)
                certificate = await asyncio.wait_for(
                    read_frame(reader), timeout=timeout_s
                )
            except asyncio.TimeoutError:
                return QueryOutcome(status="timeout", detail="journaled result")
            if not isinstance(names, NamesAssignedMessage) or not isinstance(
                certificate, CertificateMessage
            ):
                return QueryOutcome(
                    status="disconnected", detail="journaled result missing"
                )
            return QueryOutcome(
                status="completed",
                entries=names.entries,
                certificate=certificate,
                algorithm=names.algorithm,
                rounds=names.rounds,
            )
        if response.state == "failed":
            try:
                error = await asyncio.wait_for(read_frame(reader), timeout=timeout_s)
            except asyncio.TimeoutError:
                return QueryOutcome(status="timeout", detail="journaled error")
            if not isinstance(error, SessionErrorMessage):
                return QueryOutcome(
                    status="disconnected", detail="journaled error missing"
                )
            return QueryOutcome(
                status="failed", code=error.code, detail=error.detail
            )
        return QueryOutcome(status=response.state)
    except WireError as exc:
        return QueryOutcome(status="wire-error", detail=str(exc))
    except (ConnectionError, OSError) as exc:
        return QueryOutcome(
            status="disconnected", detail=f"{type(exc).__name__}: {exc}"
        )
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_query_with_retry(
    host: str,
    port: int,
    session_id: str,
    *,
    retries: int = 0,
    backoff: Optional[PollBackoff] = None,
    timeout_s: float = 30.0,
) -> QueryOutcome:
    """:func:`run_query` under the shared backoff — queries are read-only,
    so every transport-level failure (and busy) is safe to retry."""
    policy = backoff or PollBackoff(_RETRY_FLOOR_S, _RETRY_CAP_S)
    attempt = 0
    while True:
        outcome = await run_query(host, port, session_id, timeout_s=timeout_s)
        if attempt >= retries or outcome.status not in (
            "busy", "refused", "timeout", "disconnected", "wire-error"
        ):
            return outcome
        attempt += 1
        await asyncio.sleep(policy.next_delay())


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


@dataclass
class LoadReport:
    """Aggregate outcome of a load run."""

    sessions: int = 0
    elapsed_s: float = 0.0
    counts: Dict[str, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    rejected_codes: Dict[str, int] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)
    #: ServerBusy responses absorbed by backoff-and-retry — backpressure
    #: working as designed, reported separately from errors.
    busy_retries: int = 0
    #: Transport-level retries spent by run_session_with_retry.
    transport_retries: int = 0

    @property
    def completed(self) -> int:
        return self.counts.get("completed", 0)

    @property
    def sessions_per_sec(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    @property
    def p50_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.50)

    @property
    def p99_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.99)

    def exit_code(self) -> int:
        """2 if any served assignment failed validation, 3 if nothing
        completed at all, else 0 — mirroring the daemon's contract."""
        if self.counts.get("invalid", 0) or self.counts.get("violation", 0):
            return 2
        if self.completed == 0:
            return 3
        return 0

    def as_text(self) -> str:
        lines = [
            f"sessions          {self.sessions}",
            f"elapsed           {self.elapsed_s:.2f}s",
            f"throughput        {self.sessions_per_sec:.1f} sessions/s",
            f"latency p50       {self.p50_s * 1000:.1f} ms",
            f"latency p99       {self.p99_s * 1000:.1f} ms",
        ]
        if self.busy_retries:
            lines.append(f"busy retries      {self.busy_retries}")
        if self.transport_retries:
            lines.append(f"transport retries {self.transport_retries}")
        for status in sorted(self.counts):
            lines.append(f"{status:<17} {self.counts[status]}")
        for code in sorted(self.rejected_codes):
            lines.append(f"  rejected[{code}]  {self.rejected_codes[code]}")
        return "\n".join(lines)


async def run_load(
    host: str,
    port: int,
    *,
    sessions: int,
    concurrency: int = 32,
    ids_per_session: int = 8,
    algorithm: str = "auto",
    t: int = 0,
    attack: str = "silent",
    seed: int = 0,
    timeout_s: float = 30.0,
    workload: str = "uniform",
    max_failures_kept: int = 20,
    session_prefix: str = "",
    retries: int = 0,
    busy_retries: int = 8,
) -> LoadReport:
    """Drive ``sessions`` sessions, at most ``concurrency`` in flight.

    ``session_prefix`` stamps each session with the idempotency token
    ``{prefix}-{index}`` (daemon must run with ``--session-journal``).
    ``busy_retries`` bounds how many ServerBusy responses *per session*
    are absorbed by backoff before "busy" becomes the session's outcome;
    ``retries`` bounds transport-level retries per session (gated on the
    token for mid-session failures, see :func:`_retryable`).
    """
    gate = asyncio.Semaphore(concurrency)
    report = LoadReport(sessions=sessions)

    async def one(index: int) -> SessionOutcome:
        ids = make_ids(workload, ids_per_session, seed=seed + index)
        token = f"{session_prefix}-{index}" if session_prefix else ""
        async with gate:
            policy = PollBackoff(_RETRY_FLOOR_S, _RETRY_CAP_S)
            busy_left = busy_retries
            transport_left = retries
            while True:
                outcome = await run_session(
                    host,
                    port,
                    ids=ids,
                    algorithm=algorithm,
                    t=t,
                    attack=attack,
                    seed=seed + index,
                    timeout_s=timeout_s,
                    session_id=token,
                )
                if outcome.status == "busy" and busy_left > 0:
                    busy_left -= 1
                    report.busy_retries += 1
                elif transport_left > 0 and _retryable(outcome, token):
                    transport_left -= 1
                    report.transport_retries += 1
                else:
                    return outcome
                await asyncio.sleep(policy.next_delay())

    started = time.monotonic()
    outcomes = await asyncio.gather(*(one(i) for i in range(sessions)))
    report.elapsed_s = time.monotonic() - started
    for outcome in outcomes:
        report.counts[outcome.status] = report.counts.get(outcome.status, 0) + 1
        if outcome.status == "completed":
            report.latencies_s.append(outcome.latency_s)
        elif outcome.status == "rejected":
            report.rejected_codes[outcome.code] = (
                report.rejected_codes.get(outcome.code, 0) + 1
            )
        if outcome.status in ("invalid", "violation") and len(
            report.failures
        ) < max_failures_kept:
            report.failures.append(f"{outcome.status}: {outcome.detail}")
    return report
