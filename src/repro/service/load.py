"""Load generator and client library for the renaming daemon.

:func:`run_session` speaks the full session protocol once and — crucially
— **re-validates the assignment client-side**: the names that came back
are pushed through the same :func:`repro.analysis.properties.check_renaming`
the server used, so a server that ships a rosy certificate over a broken
assignment is caught at the other end of the wire.

:func:`run_load` drives many sessions concurrently (bounded by a
semaphore) and aggregates a :class:`LoadReport` with throughput and
p50/p99 latency — the numbers ``make service-smoke`` and
``benchmarks/bench_service_load.py`` assert on.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.properties import check_renaming
from ..workloads import make_ids
from .frames import read_frame, write_frame
from .messages import (
    CertificateMessage,
    CloseSessionMessage,
    NamesAssignedMessage,
    OpenSessionMessage,
    RegisterIdsMessage,
    ServerBusyMessage,
    SessionErrorMessage,
    SessionWelcomeMessage,
)

__all__ = ["LoadReport", "SessionOutcome", "run_load", "run_session", "validate_names"]


class _AssignmentView:
    """Adapter: a bare (original → name) mapping as check_renaming input."""

    def __init__(self, names: Dict[int, int]) -> None:
        self._names = dict(names)

    def outputs_by_id(self) -> Dict[int, int]:
        return dict(self._names)


def validate_names(
    entries: Sequence[Tuple[int, int]],
    namespace: int,
    expected_count: int,
    *,
    order_preserving: bool = True,
) -> List[str]:
    """Client-side re-validation of a served assignment.

    Returns the violation strings (empty = the assignment really does
    satisfy the renaming properties the certificate claims).
    """
    report = check_renaming(
        _AssignmentView(dict(entries)), namespace, expected_count=expected_count
    )
    ok = report.ok if order_preserving else report.ok_without_order()
    if ok:
        return []
    if order_preserving:
        return list(report.violations)
    return [v for v in report.violations if not v.startswith("order:")]


@dataclass
class SessionOutcome:
    """What one driven session produced."""

    status: str  # completed|busy|rejected|invalid|violation|refused|timeout|disconnected
    latency_s: float = 0.0
    code: str = ""       # SessionError code when status == "rejected"
    detail: str = ""
    algorithm: str = ""
    rounds: int = 0


async def run_session(
    host: str,
    port: int,
    *,
    ids: Sequence[int],
    algorithm: str = "auto",
    t: int = 0,
    attack: str = "silent",
    seed: int = 0,
    timeout_s: float = 30.0,
    register_chunk: int = 0,
) -> SessionOutcome:
    """Drive one complete session; never raises for protocol-level outcomes.

    ``register_chunk`` splits the ids over several RegisterIds frames
    (0 = one frame), exercising the repeatable-registration path.
    """
    started = time.monotonic()
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout_s
        )
    except (ConnectionError, OSError):
        return SessionOutcome(status="refused")
    except asyncio.TimeoutError:
        return SessionOutcome(status="timeout", detail="connect")
    try:
        try:
            greeting = await asyncio.wait_for(read_frame(reader), timeout=timeout_s)
        except asyncio.TimeoutError:
            return SessionOutcome(status="timeout", detail="welcome")
        if isinstance(greeting, ServerBusyMessage):
            return SessionOutcome(
                status="busy",
                detail=f"{greeting.active}/{greeting.limit} sessions active",
            )
        if not isinstance(greeting, SessionWelcomeMessage):
            return SessionOutcome(
                status="disconnected", detail="no welcome frame"
            )
        await write_frame(
            writer,
            OpenSessionMessage(algorithm=algorithm, t=t, attack=attack, seed=seed),
        )
        id_list = [int(i) for i in ids]
        chunk = register_chunk if register_chunk > 0 else len(id_list)
        for start in range(0, len(id_list), max(1, chunk)):
            await write_frame(
                writer,
                RegisterIdsMessage(ids=tuple(id_list[start:start + max(1, chunk)])),
            )
        await write_frame(writer, CloseSessionMessage())
        try:
            first = await asyncio.wait_for(read_frame(reader), timeout=timeout_s)
        except asyncio.TimeoutError:
            return SessionOutcome(status="timeout", detail="response")
        if first is None:
            return SessionOutcome(status="disconnected", detail="before response")
        if isinstance(first, SessionErrorMessage):
            return SessionOutcome(status="rejected", code=first.code, detail=first.detail)
        if not isinstance(first, NamesAssignedMessage):
            return SessionOutcome(
                status="disconnected",
                detail=f"unexpected {type(first).__name__} response",
            )
        try:
            certificate = await asyncio.wait_for(read_frame(reader), timeout=timeout_s)
        except asyncio.TimeoutError:
            return SessionOutcome(status="timeout", detail="certificate")
        if not isinstance(certificate, CertificateMessage):
            return SessionOutcome(status="disconnected", detail="no certificate frame")
        latency = time.monotonic() - started
        if not certificate.ok:
            return SessionOutcome(
                status="violation",
                latency_s=latency,
                detail="; ".join(certificate.violations),
                algorithm=first.algorithm,
                rounds=first.rounds,
            )
        problems = validate_names(
            first.entries,
            certificate.namespace,
            expected_count=len(id_list) - t,
            order_preserving="order_preservation" in certificate.checked,
        )
        if problems:
            return SessionOutcome(
                status="invalid",
                latency_s=latency,
                detail="certificate says ok but client re-check found: "
                + "; ".join(problems),
                algorithm=first.algorithm,
                rounds=first.rounds,
            )
        return SessionOutcome(
            status="completed",
            latency_s=latency,
            algorithm=first.algorithm,
            rounds=first.rounds,
        )
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


@dataclass
class LoadReport:
    """Aggregate outcome of a load run."""

    sessions: int = 0
    elapsed_s: float = 0.0
    counts: Dict[str, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    rejected_codes: Dict[str, int] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.counts.get("completed", 0)

    @property
    def sessions_per_sec(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    @property
    def p50_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.50)

    @property
    def p99_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.99)

    def exit_code(self) -> int:
        """2 if any served assignment failed validation, 3 if nothing
        completed at all, else 0 — mirroring the daemon's contract."""
        if self.counts.get("invalid", 0) or self.counts.get("violation", 0):
            return 2
        if self.completed == 0:
            return 3
        return 0

    def as_text(self) -> str:
        lines = [
            f"sessions          {self.sessions}",
            f"elapsed           {self.elapsed_s:.2f}s",
            f"throughput        {self.sessions_per_sec:.1f} sessions/s",
            f"latency p50       {self.p50_s * 1000:.1f} ms",
            f"latency p99       {self.p99_s * 1000:.1f} ms",
        ]
        for status in sorted(self.counts):
            lines.append(f"{status:<17} {self.counts[status]}")
        for code in sorted(self.rejected_codes):
            lines.append(f"  rejected[{code}]  {self.rejected_codes[code]}")
        return "\n".join(lines)


async def run_load(
    host: str,
    port: int,
    *,
    sessions: int,
    concurrency: int = 32,
    ids_per_session: int = 8,
    algorithm: str = "auto",
    t: int = 0,
    attack: str = "silent",
    seed: int = 0,
    timeout_s: float = 30.0,
    workload: str = "uniform",
    max_failures_kept: int = 20,
) -> LoadReport:
    """Drive ``sessions`` sessions, at most ``concurrency`` in flight."""
    gate = asyncio.Semaphore(concurrency)
    report = LoadReport(sessions=sessions)

    async def one(index: int) -> SessionOutcome:
        ids = make_ids(workload, ids_per_session, seed=seed + index)
        async with gate:
            return await run_session(
                host,
                port,
                ids=ids,
                algorithm=algorithm,
                t=t,
                attack=attack,
                seed=seed + index,
                timeout_s=timeout_s,
            )

    started = time.monotonic()
    outcomes = await asyncio.gather(*(one(i) for i in range(sessions)))
    report.elapsed_s = time.monotonic() - started
    for outcome in outcomes:
        report.counts[outcome.status] = report.counts.get(outcome.status, 0) + 1
        if outcome.status == "completed":
            report.latencies_s.append(outcome.latency_s)
        elif outcome.status == "rejected":
            report.rejected_codes[outcome.code] = (
                report.rejected_codes.get(outcome.code, 0) + 1
            )
        if outcome.status in ("invalid", "violation") and len(
            report.failures
        ) < max_failures_kept:
            report.failures.append(f"{outcome.status}: {outcome.detail}")
    return report
