"""The renaming daemon: a hardened, long-lived asyncio session server.

One TCP connection is one renaming session::

    client                                server
      |  ----------- connect ----------->  |   (or ServerBusy + close)
      |  <--------- SessionWelcome ------  |
      |  ----------- OpenSession ------->  |
      |  ---------- RegisterIds* ------->  |
      |  ----------- CloseSession ------>  |   (or the deadline closes it)
      |  <--------- NamesAssigned -------  |
      |  <---------- Certificate --------  |   (validated server-side)

Robustness contract (tested in ``tests/test_service.py`` and
``tests/test_service_drain.py``):

* **Backpressure, never silent drops** — when ``max_sessions`` sessions
  are active (or the server is draining), a new connection gets a typed
  :class:`~repro.service.messages.ServerBusyMessage` and a clean close.
* **Deadlines everywhere** — every read has an idle timeout (slow-loris
  defense) and every session has a wall deadline; expiry either runs the
  quorum registered so far or rejects with a typed error.
* **Crash containment** — one session's failure (malformed frames, a
  :class:`~repro.sim.errors.SafetyViolation`, a budget breach, an infra
  bug) is reported typed on that session's socket and never touches the
  others.
* **Graceful drain** — on SIGTERM/SIGINT the server stops admitting
  (late connects get ServerBusy), lets in-flight sessions finish inside
  ``drain_grace_s``, then sheds stragglers with a typed ``shutdown``
  error. A second signal forces the shed immediately.
* **Exit codes** (the PR 5 CLI contract): 0 clean; 2 at least one
  completed session's certificate failed; 3 infra error; 4 sessions were
  shed during drain. Precedence 3 > 4 > 2 > 0.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..analysis.supervisor import CellBudget
from ..sim import DEFAULT_ENGINE, ConfigurationError, ResourceBudgetExceeded, SafetyViolation
from ..wire import WireError
from .frames import DEFAULT_MAX_FRAME_BYTES, encode_frame, read_frame, write_frame
from .journal import SessionJournal, SessionRecord, request_fingerprint
from .messages import (
    CertificateMessage,
    CloseSessionMessage,
    NamesAssignedMessage,
    OpenSessionMessage,
    QueryRequestMessage,
    QueryResponseMessage,
    RegisterIdsMessage,
    ServerBusyMessage,
    SessionErrorMessage,
    SessionWelcomeMessage,
)
from .session import (
    ServiceInfraError,
    SessionRequest,
    execute_session,
    execute_session_isolated,
)

__all__ = ["RenamingService", "ServiceStats"]

#: Error codes journaled as *terminal*: the failure is a deterministic
#: function of the request, so a retry would fail identically — replay the
#: journaled error instead of re-running. Transient codes (idle-timeout,
#: wire, protocol, shutdown, infra) leave the token in-flight for retry.
_DETERMINISTIC_FAILURE_CODES = frozenset(
    {"config", "safety-violation", "wall-budget", "rss-budget"}
)

log = logging.getLogger("repro.service")

#: Exit codes (same contract as repro.cli).
EXIT_OK = 0
EXIT_VIOLATION = 2
EXIT_INFRA = 3
EXIT_INTERRUPTED = 4

#: How often the drain loop re-checks in-flight sessions / the force flag.
_DRAIN_POLL_S = 0.05


@dataclass
class ServiceStats:
    """Counters the daemon reports on exit (and exposes to tests)."""

    admitted: int = 0
    busy: int = 0          # connections refused with ServerBusy
    completed: int = 0     # NamesAssigned + Certificate delivered
    violations: int = 0    # completed but the certificate said not-ok
    rejected: int = 0      # typed SessionError sent (wire/protocol/config/…)
    disconnected: int = 0  # client vanished mid-session
    shed: int = 0          # sessions cancelled during drain
    infra: int = 0         # server-side failures (exit 3)
    replayed: int = 0      # tokened repeat submissions answered from the journal
    queries: int = 0       # QueryRequest frames served
    error_codes: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "busy": self.busy,
            "completed": self.completed,
            "violations": self.violations,
            "rejected": self.rejected,
            "disconnected": self.disconnected,
            "shed": self.shed,
            "infra": self.infra,
            "replayed": self.replayed,
            "queries": self.queries,
        }


class _Reject(Exception):
    """Internal: abort the session with a typed error frame."""

    def __init__(self, code: str, detail: str, trace_pointer: int = -1) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail
        self.trace_pointer = trace_pointer


class RenamingService:
    """The session daemon. ``await serve_forever()`` runs until drained."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_sessions: int = 64,
        session_deadline_s: float = 5.0,
        idle_timeout_s: float = 2.0,
        drain_grace_s: Optional[float] = None,
        max_ids: int = 128,
        budget: Optional[CellBudget] = None,
        engine: str = DEFAULT_ENGINE,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        runner_threads: Optional[int] = None,
        install_signal_handlers: bool = True,
        journal: Optional[SessionJournal] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.max_sessions = max_sessions
        self.session_deadline_s = session_deadline_s
        self.idle_timeout_s = idle_timeout_s
        # Default grace: enough for a just-admitted session to use its full
        # deadline plus a run.
        self.drain_grace_s = (
            drain_grace_s if drain_grace_s is not None else session_deadline_s + 2.0
        )
        self.max_ids = max_ids
        self.budget = budget
        self.engine = engine
        self.max_frame_bytes = max_frame_bytes
        self.install_signal_handlers = install_signal_handlers
        self.stats = ServiceStats()
        self._sessions: Set[asyncio.Task] = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._drain_requested: Optional[asyncio.Event] = None
        self._force_shed = False
        self._draining = False
        self._next_session_id = 1
        self._executor = ThreadPoolExecutor(
            max_workers=runner_threads or min(32, max(4, max_sessions)),
            thread_name_prefix="repro-session",
        )
        self.journal = journal
        #: Tokens executing right now — a concurrent duplicate submission
        #: is a typed ``duplicate-session`` reject, not a second run.
        self._active_tokens: Set[str] = set()
        # Journal appends fsync; a dedicated single-thread executor keeps
        # the event loop unblocked while serialising the writes.
        self._journal_executor = (
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-journal")
            if journal is not None
            else None
        )

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    @property
    def bound_address(self) -> Tuple[str, int]:
        """The actual listening address (useful with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Bind and start accepting (drain machinery armed, not triggered)."""
        self._drain_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        if self.install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.initiate_drain)
                except (NotImplementedError, RuntimeError):  # non-unix / nested
                    break
        host, port = self.bound_address
        log.info("listening on %s:%d (max_sessions=%d)", host, port, self.max_sessions)

    def initiate_drain(self) -> None:
        """First call starts a graceful drain; a second forces the shed.

        Signal-handler safe (sets flags/events only).
        """
        if self._draining:
            self._force_shed = True
        else:
            self._draining = True
            if self._drain_requested is not None:
                self._drain_requested.set()

    async def serve_forever(self) -> int:
        """Run until drained; returns the contract exit code."""
        if self._server is None:
            await self.start()
        assert self._drain_requested is not None
        try:
            await self._drain_requested.wait()
            await self._drain()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self._executor.shutdown(wait=False, cancel_futures=True)
            if self._journal_executor is not None:
                # Let queued journal appends land before closing the file.
                self._journal_executor.shutdown(wait=True)
            if self.journal is not None:
                self.journal.close()
        return self.exit_code()

    async def _drain(self) -> None:
        """Finish in-flight sessions within the grace window, then shed."""
        log.info(
            "draining: %d in-flight session(s), grace %.1fs",
            len(self._sessions),
            self.drain_grace_s,
        )
        deadline = time.monotonic() + self.drain_grace_s
        while self._sessions and not self._force_shed:
            if time.monotonic() >= deadline:
                break
            await asyncio.sleep(_DRAIN_POLL_S)
        stragglers = list(self._sessions)
        for task in stragglers:
            task.cancel()
        if stragglers:
            await asyncio.gather(*stragglers, return_exceptions=True)

    def exit_code(self) -> int:
        """3 (infra) > 4 (shed) > 2 (violation observed) > 0."""
        if self.stats.infra:
            return EXIT_INFRA
        if self.stats.shed:
            return EXIT_INTERRUPTED
        if self.stats.violations:
            return EXIT_VIOLATION
        return EXIT_OK

    # ------------------------------------------------------------------ #
    # per-connection session handling                                    #
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        if self._draining or len(self._sessions) >= self.max_sessions:
            self.stats.busy += 1
            await self._send_best_effort(
                writer,
                ServerBusyMessage(
                    active=len(self._sessions), limit=self.max_sessions
                ),
            )
            await self._close(writer)
            return
        self._sessions.add(task)
        session_id = self._next_session_id
        self._next_session_id += 1
        try:
            await self._run_session(session_id, reader, writer)
        except asyncio.CancelledError:
            # Shed during drain: typed shutdown error, best effort.
            self.stats.shed += 1
            await asyncio.shield(
                self._send_best_effort(
                    writer,
                    SessionErrorMessage(
                        code="shutdown",
                        detail="server is draining; session shed before completion",
                    ),
                )
            )
        except Exception:  # noqa: BLE001 — containment boundary
            self.stats.infra += 1
            log.exception("session %d: unhandled server-side failure", session_id)
            await self._send_best_effort(
                writer,
                SessionErrorMessage(
                    code="infra", detail="internal server error"
                ),
            )
        finally:
            self._sessions.discard(task)
            await self._close(writer)

    async def _run_session(
        self, session_id: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.admitted += 1
        deadline_at = time.monotonic() + self.session_deadline_s
        await write_frame(
            writer,
            SessionWelcomeMessage(
                session_id=session_id,
                max_ids=self.max_ids,
                deadline_ms=int(self.session_deadline_s * 1000),
            ),
        )
        opened: Optional[OpenSessionMessage] = None
        ids: List[int] = []
        try:
            while True:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    if opened is not None and ids:
                        break  # deadline closes the quorum
                    raise _Reject(
                        "deadline",
                        "session deadline expired before any id was registered",
                    )
                try:
                    message = await asyncio.wait_for(
                        read_frame(reader, max_frame_bytes=self.max_frame_bytes),
                        timeout=min(self.idle_timeout_s, remaining),
                    )
                except asyncio.TimeoutError:
                    if remaining <= self.idle_timeout_s:
                        continue  # session deadline, handled at loop top
                    raise _Reject(
                        "idle-timeout",
                        f"no frame received within {self.idle_timeout_s:.1f}s",
                    ) from None
                except WireError as exc:
                    raise _Reject("wire", str(exc)) from None
                if message is None:
                    self.stats.disconnected += 1
                    log.info("session %d: client disconnected mid-session", session_id)
                    return
                if isinstance(message, OpenSessionMessage):
                    if opened is not None:
                        raise _Reject("protocol", "session already open")
                    opened = message
                elif isinstance(message, QueryRequestMessage):
                    if opened is not None:
                        raise _Reject(
                            "protocol", "QueryRequest inside an open session"
                        )
                    await self._answer_query(writer, message)
                    return
                elif isinstance(message, RegisterIdsMessage):
                    if opened is None:
                        raise _Reject("protocol", "RegisterIds before OpenSession")
                    if len(ids) + len(message.ids) > self.max_ids:
                        raise _Reject(
                            "config",
                            f"session would register {len(ids) + len(message.ids)} "
                            f"ids, cap is {self.max_ids}",
                        )
                    ids.extend(message.ids)
                elif isinstance(message, CloseSessionMessage):
                    if opened is None:
                        raise _Reject("protocol", "CloseSession before OpenSession")
                    if not ids:
                        raise _Reject("config", "cannot run a session with no ids")
                    break
                else:
                    raise _Reject(
                        "protocol",
                        f"unexpected {type(message).__name__} frame in a session",
                    )
            await self._execute_and_respond(session_id, writer, opened, tuple(ids))
        except _Reject as rej:
            self.stats.rejected += 1
            self.stats.error_codes.append(rej.code)
            log.info("session %d: rejected (%s): %s", session_id, rej.code, rej.detail)
            await self._send_best_effort(
                writer,
                SessionErrorMessage(
                    code=rej.code, detail=rej.detail, trace_pointer=rej.trace_pointer
                ),
            )
            return

    async def _execute_and_respond(
        self,
        session_id: int,
        writer: asyncio.StreamWriter,
        opened: OpenSessionMessage,
        ids: Tuple[int, ...],
    ) -> None:
        """Run the closed quorum and stream the result, journaling tokened
        sessions durably (``accepted`` → terminal) *before* any result
        frame leaves the process."""
        token = opened.session_id
        fingerprint = ""
        if token:
            if self.journal is None:
                raise _Reject(
                    "config",
                    "session carries an idempotency token but the daemon "
                    "runs without --session-journal",
                )
            request = {
                "session_id": token,
                "algorithm": opened.algorithm,
                "t": opened.t,
                "attack": opened.attack,
                "seed": opened.seed,
                "ids": list(ids),
            }
            fingerprint = request_fingerprint(request)
            existing = self.journal.lookup(token)
            if existing is not None and existing.state != "in-flight":
                if existing.fingerprint != fingerprint:
                    raise _Reject(
                        "config",
                        f"idempotency token {token!r} was journaled with "
                        f"different parameters — a token names exactly one "
                        f"request",
                    )
                log.info(
                    "session %d: token %r replayed from the journal (%s)",
                    session_id, token, existing.state,
                )
                self.stats.replayed += 1
                await self._replay_terminal(writer, existing)
                return
            if token in self._active_tokens:
                raise _Reject(
                    "duplicate-session",
                    f"idempotency token {token!r} is already executing on "
                    f"another connection",
                )
            self._active_tokens.add(token)
        try:
            if token:
                await self._journal_call(
                    self.journal.accepted, token, fingerprint, request
                )
            try:
                result = await self._execute(opened, ids)
            except _Reject as rej:
                if token and rej.code in _DETERMINISTIC_FAILURE_CODES:
                    # Durable before the error frame leaves: a retry of
                    # this token replays the identical typed error.
                    await self._journal_call(
                        self.journal.failed,
                        token,
                        fingerprint,
                        code=rej.code,
                        detail=rej.detail,
                        trace_pointer=rej.trace_pointer,
                    )
                raise
            self.stats.completed += 1
            if not result.ok:
                self.stats.violations += 1
                log.warning(
                    "session %d: certificate NOT ok: %s",
                    session_id,
                    "; ".join(result.violations),
                )
            names_frame = encode_frame(
                NamesAssignedMessage(
                    entries=result.names,
                    algorithm=result.algorithm,
                    rounds=result.rounds,
                )
            )
            certificate_frame = encode_frame(
                CertificateMessage(
                    namespace=result.namespace,
                    ok=result.ok,
                    checked=result.checked,
                    violations=result.violations,
                )
            )
            if token:
                # The write-ahead contract: the result is durable before
                # the first response byte leaves the process.
                await self._journal_call(
                    self.journal.completed,
                    token,
                    fingerprint,
                    names_hex=names_frame.hex(),
                    certificate_hex=certificate_frame.hex(),
                    ok=result.ok,
                )
            writer.write(names_frame)
            writer.write(certificate_frame)
            await writer.drain()
        finally:
            if token:
                self._active_tokens.discard(token)

    async def _replay_terminal(
        self, writer: asyncio.StreamWriter, record: SessionRecord
    ) -> None:
        """Answer a finished token from the journal, without re-running.

        Completed sessions are replayed from the *stored frame bytes* —
        byte-identical to the original response by construction."""
        if record.state == "completed":
            writer.write(bytes.fromhex(record.names_hex))
            writer.write(bytes.fromhex(record.certificate_hex))
            await writer.drain()
        else:
            await write_frame(
                writer,
                SessionErrorMessage(
                    code=record.code,
                    detail=record.detail,
                    trace_pointer=record.trace_pointer,
                ),
            )

    async def _answer_query(
        self, writer: asyncio.StreamWriter, query: QueryRequestMessage
    ) -> None:
        """Serve a QueryRequest: state frame, then the journaled result."""
        self.stats.queries += 1
        if self.journal is None:
            raise _Reject(
                "config",
                "session queries require --session-journal on the daemon",
            )
        record = self.journal.lookup(query.session_id)
        if query.session_id in self._active_tokens:
            state = "in-flight"
            record = None  # executing right now; no terminal frames to send
        elif record is None:
            state = "unknown"
        else:
            state = record.state
        await write_frame(
            writer,
            QueryResponseMessage(session_id=query.session_id, state=state),
        )
        if record is not None and record.state in ("completed", "failed"):
            await self._replay_terminal(writer, record)

    async def _journal_call(self, method, *args, **kwargs) -> None:
        """Run one journal append off-loop (fsync) on the serial executor."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._journal_executor, lambda: method(*args, **kwargs)
        )

    async def _execute(self, opened: OpenSessionMessage, ids: Tuple[int, ...]):
        """Run the closed session off-loop; map failures to typed rejects."""
        request = SessionRequest(
            ids=ids,
            algorithm=opened.algorithm,
            t=opened.t,
            attack=opened.attack,
            seed=opened.seed,
            engine=self.engine,
        )
        loop = asyncio.get_running_loop()
        try:
            if self.budget is not None:
                return await loop.run_in_executor(
                    self._executor,
                    lambda: execute_session_isolated(request, self.budget),
                )
            return await loop.run_in_executor(
                self._executor, lambda: execute_session(request)
            )
        except ConfigurationError as exc:
            raise _Reject("config", str(exc)) from None
        except SafetyViolation as exc:
            raise _Reject(
                "safety-violation",
                str(exc),
                trace_pointer=exc.trace_pointer if exc.trace_pointer is not None else -1,
            ) from None
        except ResourceBudgetExceeded as exc:
            code = "rss-budget" if exc.violated == "rss-budget" else "wall-budget"
            raise _Reject(code, str(exc)) from None
        except ServiceInfraError as exc:
            self.stats.infra += 1
            raise _Reject("infra", str(exc)) from None

    # ------------------------------------------------------------------ #
    # plumbing                                                           #
    # ------------------------------------------------------------------ #

    async def _send_best_effort(self, writer: asyncio.StreamWriter, message) -> None:
        try:
            await write_frame(writer, message)
        except (ConnectionError, OSError, WireError):
            pass

    async def _close(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
