"""Length-prefixed framing for the session protocol.

One frame = a 4-byte big-endian payload length followed by exactly one
:mod:`repro.wire` encoding. The layer is deliberately hostile-input-first:

* a declared length above the cap is rejected **from the header alone** —
  the body is never read, so an attacker cannot make the server buffer
  megabytes by promising them;
* a zero-length frame is rejected (no message encodes to zero bytes);
* payload garbage is whatever :func:`repro.wire.decode_message` says it
  is — always a typed :class:`~repro.wire.WireError`;
* a connection that ends mid-frame is detectable
  (:meth:`FrameDecoder.eof`).

Every failure is a typed :class:`FrameError`/:class:`~repro.wire.WireError`
— never a hang, never a bare ``struct.error``, never an allocation bomb.
``tests/test_service_frames.py`` fuzzes exactly this contract.
"""

from __future__ import annotations

import asyncio
import struct
from typing import List, Optional

from ..sim.messages import Message
from ..wire import WireError, decode_message, encode_message

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "HEADER_BYTES",
    "FrameDecoder",
    "FrameError",
    "encode_frame",
    "read_frame",
    "write_frame",
]

#: Frame header: big-endian u32 payload length.
HEADER_BYTES = 4

#: Hard cap on one frame's payload. A session frame is a handful of ids or
#: names (kilobytes at most); anything larger is an attack or a bug.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024


class FrameError(WireError):
    """A frame violated the layer's contract (oversized, empty, truncated).

    Subclasses :class:`~repro.wire.WireError` so callers have one exception
    type for "the byte stream is garbage", whichever layer noticed."""


def encode_frame(
    message: Message, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Serialise ``message`` as one length-prefixed frame."""
    payload = encode_message(message)
    if len(payload) > max_frame_bytes:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds cap "
            f"{max_frame_bytes}"
        )
    return struct.pack(">I", len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser for a byte stream fed in arbitrary chunks.

    :meth:`feed` buffers input and returns every complete message; a
    contract violation raises :class:`FrameError` (or the payload's own
    :class:`~repro.wire.WireError`) and poisons the decoder — a transport
    that sent garbage once is closed, not resynchronised.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending(self) -> int:
        """Bytes buffered without forming a complete frame yet."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Message]:
        """Buffer ``data``; return every message completed by it."""
        if self._poisoned:
            raise FrameError("decoder already rejected this stream")
        self._buffer.extend(data)
        out: List[Message] = []
        while len(self._buffer) >= HEADER_BYTES:
            (length,) = struct.unpack_from(">I", self._buffer)
            if length == 0:
                self._poisoned = True
                raise FrameError("zero-length frame")
            if length > self.max_frame_bytes:
                self._poisoned = True
                raise FrameError(
                    f"frame declares {length} bytes, cap is "
                    f"{self.max_frame_bytes}"
                )
            if len(self._buffer) - HEADER_BYTES < length:
                break
            payload = bytes(self._buffer[HEADER_BYTES:HEADER_BYTES + length])
            del self._buffer[:HEADER_BYTES + length]
            try:
                out.append(decode_message(payload))
            except WireError:
                self._poisoned = True
                raise
        return out

    def eof(self) -> None:
        """Assert the stream ended at a frame boundary."""
        if self._buffer:
            raise FrameError(
                f"stream ended mid-frame with {len(self._buffer)} buffered "
                f"byte(s)"
            )


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Optional[Message]:
    """Read one frame; ``None`` on EOF (clean or mid-frame — either way the
    peer is gone and nothing can be sent back).

    Raises :class:`FrameError` on an oversized/empty header — *before*
    reading the body — and :class:`~repro.wire.WireError` on payload
    garbage.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = struct.unpack(">I", header)
    if length == 0:
        raise FrameError("zero-length frame")
    if length > max_frame_bytes:
        raise FrameError(
            f"frame declares {length} bytes, cap is {max_frame_bytes}"
        )
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return decode_message(payload)


async def write_frame(
    writer: asyncio.StreamWriter,
    message: Message,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(message, max_frame_bytes=max_frame_bytes))
    await writer.drain()
