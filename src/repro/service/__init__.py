"""Renaming-as-a-service: the long-lived session daemon and its clients.

* :mod:`repro.service.messages` — the session protocol's wire messages
  (registered in :mod:`repro.wire` as tags 22+);
* :mod:`repro.service.frames` — the length-prefixed frame layer with a
  hard size cap and typed rejection;
* :mod:`repro.service.session` — session execution: algorithm selection
  via :class:`repro.core.params.SystemParams`, monitored runs, budget
  isolation, the property certificate;
* :mod:`repro.service.server` — the asyncio daemon
  (``repro-renaming serve``): bounded admission with explicit
  backpressure, per-read idle deadlines, session deadlines, crash
  containment, graceful drain;
* :mod:`repro.service.load` — the load generator and client library
  (``repro-renaming load`` / ``query``): concurrent sessions, client-side
  re-validation, latency percentiles, idempotent retries;
* :mod:`repro.service.journal` — the durable session journal
  (``--session-journal``): checksummed append-only idempotency ledger,
  crash-recoverable byte-identical replay;
* :mod:`repro.service.proxy` — the seeded network-fault chaos proxy
  (``repro-renaming proxy``): resets, truncation, corruption, stalls,
  duplicate delivery between client and daemon.

Attribute access is lazy: :mod:`repro.wire` imports the leaf
``service.messages`` module while *it* is still initialising, so this
package must not pull the frame layer (which imports ``repro.wire`` back)
at import time.
"""

from __future__ import annotations

from .messages import (  # noqa: F401 — the leaf module, always safe
    ERROR_CODES,
    SESSION_STATES,
    CertificateMessage,
    CloseSessionMessage,
    NamesAssignedMessage,
    OpenSessionMessage,
    QueryRequestMessage,
    QueryResponseMessage,
    RegisterIdsMessage,
    ServerBusyMessage,
    SessionErrorMessage,
    SessionWelcomeMessage,
)

_LAZY = {
    "FrameDecoder": "frames",
    "FrameError": "frames",
    "DEFAULT_MAX_FRAME_BYTES": "frames",
    "encode_frame": "frames",
    "read_frame": "frames",
    "write_frame": "frames",
    "SessionRequest": "session",
    "execute_session": "session",
    "select_algorithm": "session",
    "RenamingService": "server",
    "ServiceStats": "server",
    "LoadReport": "load",
    "QueryOutcome": "load",
    "run_load": "load",
    "run_query": "load",
    "run_query_with_retry": "load",
    "run_session": "load",
    "run_session_with_retry": "load",
    "validate_names": "load",
    "SessionJournal": "journal",
    "SessionJournalState": "journal",
    "SessionRecord": "journal",
    "scan_session_journal": "journal",
    "request_fingerprint": "journal",
    "ChaosProxy": "proxy",
    "ProxyFaults": "proxy",
    "ProxyStats": "proxy",
}

__all__ = sorted(
    [
        "ERROR_CODES",
        "SESSION_STATES",
        "CertificateMessage",
        "CloseSessionMessage",
        "NamesAssignedMessage",
        "OpenSessionMessage",
        "QueryRequestMessage",
        "QueryResponseMessage",
        "RegisterIdsMessage",
        "ServerBusyMessage",
        "SessionErrorMessage",
        "SessionWelcomeMessage",
    ]
    + list(_LAZY)
)


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
