"""Session execution: from registered ids to a certified assignment.

The daemon hands a closed session to :func:`execute_session`, which

1. selects the algorithm — an explicit registered name, or ``"auto"``,
   which picks the cheapest regime :class:`repro.core.params.SystemParams`
   admits for ``(n, t)`` (Alg. 4's two rounds when ``N > 2t² + t``, the
   constant-time Alg. 1 when ``N > t² + 2t``, plain Alg. 1 when
   ``N > 3t``);
2. runs it under the in-run safety monitor
   (:class:`repro.sim.monitor.SafetyPolicy` — validity, uniqueness, and
   the proven round budget), so a property violation aborts as a typed
   :class:`~repro.sim.errors.SafetyViolation` instead of returning
   garbage;
3. re-validates the finished assignment with
   :func:`repro.analysis.properties.check_renaming` and builds the
   property certificate the client receives.

With a :class:`~repro.analysis.supervisor.CellBudget`,
:func:`execute_session_isolated` runs the same function in a disposable
child process policed by the same
:func:`~repro.analysis.supervisor.budget_breach` decision the sweep
supervisor and the fabric workers use — a wall/RSS breach SIGKILLs the
child and surfaces as a typed
:class:`~repro.sim.errors.ResourceBudgetExceeded`, never as a wedged
server.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..adversary import adversary_names, make_adversary
from ..analysis.experiments import ALGORITHMS
from ..analysis.properties import check_renaming
from ..analysis.supervisor import CellBudget, budget_breach
from ..core import SystemParams
from ..sim import (
    DEFAULT_ENGINE,
    ConfigurationError,
    ResourceBudgetExceeded,
    SafetyPolicy,
    run_protocol,
)

__all__ = [
    "ServiceInfraError",
    "SessionRequest",
    "execute_session",
    "execute_session_isolated",
    "select_algorithm",
]

#: Upper bound on rounds for any service run — the monitor's round budget
#: fires far earlier for every registered algorithm; this is the backstop
#: so a service run can never spin unbounded.
SERVICE_MAX_ROUNDS = 256


class ServiceInfraError(RuntimeError):
    """The session runner failed for reasons unrelated to the session
    itself (child process died, result channel broke)."""


@dataclass(frozen=True)
class SessionRequest:
    """One closed session, ready to execute (picklable for isolation)."""

    ids: Tuple[int, ...]
    algorithm: str = "auto"
    t: int = 0
    attack: str = "silent"
    seed: int = 0
    engine: str = DEFAULT_ENGINE


@dataclass(frozen=True)
class SessionResult:
    """The certified assignment (everything the response frames carry)."""

    algorithm: str
    rounds: int
    namespace: int
    names: Tuple[Tuple[int, int], ...]
    ok: bool
    checked: Tuple[str, ...]
    violations: Tuple[str, ...] = field(default=())


def select_algorithm(params: SystemParams) -> str:
    """The cheapest registered algorithm whose regime admits ``params``."""
    if params.in_fast_regime:
        return "alg4"
    if params.in_constant_time_regime:
        return "alg1-constant"
    if params.tolerates_byzantine:
        return "alg1"
    raise ConfigurationError(
        f"no algorithm serves n={params.n}, t={params.t}: Byzantine "
        f"renaming needs N > 3t"
    )


def execute_session(request: SessionRequest) -> SessionResult:
    """Run one session and certify the result.

    Raises :class:`~repro.sim.errors.ConfigurationError` for unusable
    parameters and :class:`~repro.sim.errors.SafetyViolation` when the
    in-run monitor aborts; anything else is a server-side bug the daemon
    reports as infra.
    """
    n = len(request.ids)
    try:
        params = SystemParams(n, request.t)
    except ValueError as exc:
        raise ConfigurationError(str(exc)) from None
    name = request.algorithm
    if name == "auto":
        name = select_algorithm(params)
    spec = ALGORITHMS.get(name)
    if spec is None:
        known = ", ".join(sorted(ALGORITHMS))
        raise ConfigurationError(
            f"unknown algorithm {request.algorithm!r}; known: auto, {known}"
        )
    if request.attack not in spec.attacks:
        raise ConfigurationError(
            f"attack {request.attack!r} is not meaningful against {name!r}; "
            f"valid attacks: {', '.join(spec.attacks)}"
        )
    if not spec.regime(params):
        raise ConfigurationError(
            f"{name!r} is outside its proven resilience regime at "
            f"n={n}, t={request.t}"
        )
    factory = spec.build_factory(n, request.t, request.ids, request.seed)
    adversary = make_adversary(request.attack) if request.t > 0 else None
    bound = spec.namespace(params)
    round_budget = (
        spec.round_budget(params) if spec.round_budget is not None else None
    )
    result = run_protocol(
        factory,
        n=n,
        t=request.t,
        ids=request.ids,
        adversary=adversary,
        seed=request.seed,
        max_rounds=SERVICE_MAX_ROUNDS,
        engine=request.engine,
        safety=SafetyPolicy(namespace=bound, round_budget=round_budget),
    )
    report = check_renaming(result, bound)
    checked = ["validity", "termination", "uniqueness"]
    if spec.order_preserving:
        checked.append("order_preservation")
        ok = report.ok
    else:
        ok = report.ok_without_order()
    return SessionResult(
        algorithm=name,
        rounds=result.metrics.round_count,
        namespace=bound,
        names=tuple(sorted(report.names.items())),
        ok=ok,
        checked=tuple(checked),
        violations=tuple(report.violations),
    )


def _session_cell_main(request: SessionRequest, result_q) -> None:
    """Child-process body for budget-isolated session execution."""
    try:
        result_q.put(("done", execute_session(request)))
    except BaseException as exc:  # noqa: BLE001 — relayed, not hidden
        try:
            result_q.put(("raised", exc))
        except Exception:  # unpicklable exception — degrade to its text
            result_q.put(("error", f"{type(exc).__name__}: {exc}"))


def execute_session_isolated(
    request: SessionRequest,
    budget: CellBudget,
    *,
    poll_s: float = 0.05,
) -> SessionResult:
    """One disposable child process, policed by :func:`budget_breach`.

    A wall/RSS breach SIGKILLs the child and raises the typed
    :class:`~repro.sim.errors.ResourceBudgetExceeded`; typed errors raised
    *inside* the child (``SafetyViolation``, ``ConfigurationError``) are
    re-raised here identically, so callers cannot tell isolation from
    inline execution except by the budget actually being enforced.
    """
    result_q: multiprocessing.Queue = multiprocessing.Queue()
    process = multiprocessing.Process(
        target=_session_cell_main, args=(request, result_q), daemon=True
    )
    process.start()
    started = time.monotonic()
    try:
        while True:
            process.join(timeout=poll_s)
            if not process.is_alive():
                break
            breach = budget_breach(budget, started_at=started, pid=process.pid)
            if breach is not None:
                process.kill()
                process.join(timeout=2.0)
                raise ResourceBudgetExceeded(breach[1], violated=breach[0])
        try:
            kind, payload = result_q.get(timeout=1.0)
        except queue.Empty:
            raise ServiceInfraError(
                f"session runner died mid-run (exit code {process.exitcode})"
            ) from None
        if kind == "done":
            return payload
        if kind == "raised":
            raise payload
        raise ServiceInfraError(payload)
    finally:
        result_q.close()
        result_q.cancel_join_thread()


def supported_attacks() -> Sequence[str]:
    """Attack names a session may request (the adversary registry)."""
    return adversary_names()


def result_expected_names(request: SessionRequest) -> int:
    """How many names a completed session returns: the correct slots."""
    return len(request.ids) - request.t


def namespace_for(
    algorithm: str, n: int, t: int
) -> Optional[int]:
    """The promised namespace bound, or ``None`` for unknown algorithms."""
    spec = ALGORITHMS.get(algorithm)
    if spec is None:
        return None
    return spec.namespace(SystemParams(n, t))
