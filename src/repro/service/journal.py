"""Durable session journal: the daemon's crash-recoverable memory.

The PR 5 run journal made long sweeps survive a SIGKILL by journaling
progress *before* acting on it; this module applies the identical record
discipline — append-only JSONL, one checksummed record per line, fsync'd
before the caller proceeds, torn tail dropped, mid-file corruption a typed
:class:`~repro.sim.errors.JournalError` — to the renaming daemon's
sessions, so a restarted ``repro-renaming serve --session-journal`` can
answer "what name did session X get?" for every session it ever finished.

Record types (same ``{v, seq, type, data, crc}`` envelope as
:mod:`repro.analysis.journal`, ``crc`` a SHA-256 over the canonical body):

* ``header`` — written once at creation: ``{"kind": "service-sessions"}``.
* ``accepted`` — the daemon admitted a **tokened** quorum and is about to
  execute it: the idempotency token, the request fingerprint, and the full
  request payload. An ``accepted`` with no terminal record is a session
  that was in flight when the daemon died — the client's retry re-admits
  it (appending a second ``accepted``), and tests count exactly one
  re-admission per retried token.
* ``completed`` — terminal: the token's result left the process. Carries
  the **encoded wire frames** (NamesAssigned + Certificate, hex of the
  length-prefixed bytes), so a replay to a repeat submission or a query is
  byte-identical by construction — the daemon writes the stored bytes, it
  does not re-encode.
* ``failed`` — terminal: the session failed *deterministically* (config /
  safety-violation / wall-budget / rss-budget). Carries the typed error;
  replayed as the identical SessionError. Transient failures (idle
  timeout, disconnect, shutdown shed, infra) are never journaled as
  terminal — the token stays in-flight and a retry re-runs it.

Anonymous sessions (no token) are not journaled at all: the journal is an
idempotency ledger, not an access log.

Test hook: ``REPRO_SERVICE_CRASH_AFTER=<type>:<count>`` SIGKILLs the
process immediately after the ``count``-th record of ``type`` appended by
this process becomes durable — how the recovery suite and
``make recovery-smoke`` produce deterministic mid-burst crashes.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..sim.errors import JournalError

# The record envelope (canonical JSON + SHA-256 checksum) is shared with
# the PR 5 run journal — one on-disk discipline, two ledgers.
from ..analysis.journal import _canonical, _record_checksum

__all__ = [
    "SERVICE_CRASH_HOOK_ENV",
    "SESSION_JOURNAL_KIND",
    "SESSION_JOURNAL_VERSION",
    "SessionJournal",
    "SessionJournalState",
    "SessionRecord",
    "request_fingerprint",
    "scan_session_journal",
]

#: Session-journal format version; scan rejects other versions.
SESSION_JOURNAL_VERSION = 1

#: ``header.kind`` value — distinguishes a session journal from a run
#: journal at a glance (and in ``sessions list`` error messages).
SESSION_JOURNAL_KIND = "service-sessions"

#: Record types a session journal may contain (scan rejects others).
RECORD_TYPES = ("header", "accepted", "completed", "failed")

#: Environment variable for the deterministic crash hook (tests/CI only).
SERVICE_CRASH_HOOK_ENV = "REPRO_SERVICE_CRASH_AFTER"


def request_fingerprint(request: dict) -> str:
    """SHA-256 over the canonical request payload.

    An idempotency token must name *one* request: re-submitting a token
    with different parameters or ids is a client bug, detected by
    comparing this fingerprint — not by trusting the token alone.
    """
    return hashlib.sha256(_canonical(request).encode("utf-8")).hexdigest()


@dataclass
class SessionRecord:
    """Everything the journal knows about one idempotency token."""

    session_id: str
    #: "in-flight" | "completed" | "failed"
    state: str = "in-flight"
    fingerprint: str = ""
    request: dict = field(default_factory=dict)
    #: Times an ``accepted`` record was written for this token — 1 for a
    #: normal run, 2 for a crash-interrupted session re-admitted once.
    accepted: int = 0
    #: completed: hex of the encoded NamesAssigned / Certificate frames.
    names_hex: str = ""
    certificate_hex: str = ""
    ok: bool = False
    #: failed: the typed error.
    code: str = ""
    detail: str = ""
    trace_pointer: int = -1


@dataclass
class SessionJournalState:
    """The replayed content of one session journal."""

    path: Path
    header: Optional[dict] = None
    #: token -> record, in first-acceptance order.
    sessions: Dict[str, SessionRecord] = field(default_factory=dict)
    records: int = 0
    #: Byte offset of the end of the last good record (torn-tail repair
    #: truncates the file to this length).
    good_bytes: int = 0
    #: True when the final line was torn (dropped, not an error).
    torn: bool = False

    def in_flight(self) -> List[str]:
        """Tokens accepted but never finished — the crash set."""
        return [
            token for token, record in self.sessions.items()
            if record.state == "in-flight"
        ]


def _parse_record(line: bytes, lineno: int, path: Path) -> dict:
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise JournalError(
            f"{path.name}:{lineno}: unparseable record ({exc})"
        ) from None
    if not isinstance(record, dict):
        raise JournalError(f"{path.name}:{lineno}: record is not an object")
    for key in ("v", "seq", "type", "data", "crc"):
        if key not in record:
            raise JournalError(f"{path.name}:{lineno}: missing field {key!r}")
    if record["type"] not in RECORD_TYPES:
        raise JournalError(
            f"{path.name}:{lineno}: unknown record type {record['type']!r}"
        )
    expected = _record_checksum(
        record["v"], record["seq"], record["type"], record["data"]
    )
    if record["crc"] != expected:
        raise JournalError(f"{path.name}:{lineno}: checksum mismatch")
    return record


def scan_session_journal(path: Union[str, Path]) -> SessionJournalState:
    """Replay ``path`` into a :class:`SessionJournalState`.

    The final line is allowed to be torn (crash mid-append): it is dropped
    and ``state.torn`` is set — by fsync ordering nothing ever acted on it.
    A bad record *before* the last line, a sequence gap, a wrong version,
    a wrong kind or a missing header raise
    :class:`~repro.sim.errors.JournalError`.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read session journal {path}: {exc}") from None
    state = SessionJournalState(path=path)
    lines = raw.split(b"\n")
    trailing = lines.pop() if lines else b""
    offset = 0
    for lineno, line in enumerate(lines, start=1):
        is_last = lineno == len(lines) and not trailing
        try:
            record = _parse_record(line, lineno, path)
        except JournalError:
            if is_last:
                state.torn = True
                return state
            raise
        if record["v"] != SESSION_JOURNAL_VERSION:
            raise JournalError(
                f"{path.name}:{lineno}: session journal version "
                f"{record['v']} (this build reads {SESSION_JOURNAL_VERSION})"
            )
        if record["seq"] != state.records:
            raise JournalError(
                f"{path.name}:{lineno}: sequence gap (expected "
                f"{state.records}, found {record['seq']})"
            )
        _apply(state, record, lineno)
        state.records += 1
        offset += len(line) + 1
        state.good_bytes = offset
    if trailing:
        state.torn = True
    return state


def _apply(state: SessionJournalState, record: dict, lineno: int) -> None:
    type_, data = record["type"], record["data"]
    if type_ == "header":
        if state.header is not None:
            raise JournalError(f"{state.path.name}:{lineno}: duplicate header")
        if data.get("kind") != SESSION_JOURNAL_KIND:
            raise JournalError(
                f"{state.path.name}:{lineno}: not a session journal "
                f"(kind {data.get('kind')!r})"
            )
        state.header = data
        return
    if state.header is None:
        raise JournalError(
            f"{state.path.name}:{lineno}: {type_!r} record before header"
        )
    token = data["session_id"]
    entry = state.sessions.get(token)
    if entry is None:
        entry = state.sessions[token] = SessionRecord(session_id=token)
    if type_ == "accepted":
        entry.accepted += 1
        entry.fingerprint = data["fingerprint"]
        entry.request = data.get("request", {})
        return
    # Terminal records: the first one wins (a correct daemon never writes
    # a second, but the replay must be deterministic regardless).
    if entry.state != "in-flight":
        return
    entry.fingerprint = data.get("fingerprint", entry.fingerprint)
    if type_ == "completed":
        entry.state = "completed"
        entry.names_hex = data["names_hex"]
        entry.certificate_hex = data["certificate_hex"]
        entry.ok = bool(data["ok"])
    elif type_ == "failed":
        entry.state = "failed"
        entry.code = data["code"]
        entry.detail = data["detail"]
        entry.trace_pointer = int(data.get("trace_pointer", -1))


def _parse_crash_hook() -> Optional[Tuple[str, int]]:
    spec = os.environ.get(SERVICE_CRASH_HOOK_ENV)
    if not spec:
        return None
    try:
        type_, count = spec.split(":")
        return type_, int(count)
    except ValueError:
        raise JournalError(
            f"bad {SERVICE_CRASH_HOOK_ENV}={spec!r} (expected '<type>:<count>')"
        ) from None


class SessionJournal:
    """The daemon's append-only, fsync'd, checksummed session ledger.

    :meth:`open_or_create` replays an existing journal (truncating a torn
    tail) or starts a fresh one with a durable header. Every append is
    flushed and fsync'd before it returns — the daemon only sends a result
    frame *after* the matching record is durable, so a record lost to a
    crash (the torn tail) was never answered, and an answered session is
    never lost.
    """

    def __init__(self, path: Path, state: SessionJournalState, handle) -> None:
        self.path = path
        self.state = state
        self._handle = handle
        self._seq = state.records
        self._crash_hook = _parse_crash_hook()
        self._crash_counts: Dict[str, int] = {}

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def open_or_create(cls, path: Union[str, Path]) -> "SessionJournal":
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists() and path.stat().st_size > 0:
            state = scan_session_journal(path)
            if state.header is None:
                raise JournalError(
                    f"session journal {path} has no intact header record"
                )
            handle = open(path, "ab")
            if state.torn:
                handle.truncate(state.good_bytes)
            return cls(path, state, handle)
        handle = open(path, "ab")
        journal = cls(path, SessionJournalState(path=path), handle)
        journal.append("header", kind=SESSION_JOURNAL_KIND)
        return journal

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SessionJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- writing

    def append(self, type_: str, **data) -> None:
        """Durably append one record (write + flush + fsync)."""
        if type_ not in RECORD_TYPES:
            raise JournalError(f"unknown record type {type_!r}")
        record = {
            "v": SESSION_JOURNAL_VERSION,
            "seq": self._seq,
            "type": type_,
            "data": data,
            "crc": _record_checksum(
                SESSION_JOURNAL_VERSION, self._seq, type_, data
            ),
        }
        line = (_canonical(record) + "\n").encode("utf-8")
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._seq += 1
        _apply(self.state, record, self._seq)
        self.state.records = self._seq
        self._maybe_crash(type_)

    def accepted(self, session_id: str, fingerprint: str, request: dict) -> None:
        self.append(
            "accepted",
            session_id=session_id,
            fingerprint=fingerprint,
            request=request,
        )

    def completed(
        self,
        session_id: str,
        fingerprint: str,
        *,
        names_hex: str,
        certificate_hex: str,
        ok: bool,
    ) -> None:
        self.append(
            "completed",
            session_id=session_id,
            fingerprint=fingerprint,
            names_hex=names_hex,
            certificate_hex=certificate_hex,
            ok=ok,
        )

    def failed(
        self,
        session_id: str,
        fingerprint: str,
        *,
        code: str,
        detail: str,
        trace_pointer: int = -1,
    ) -> None:
        self.append(
            "failed",
            session_id=session_id,
            fingerprint=fingerprint,
            code=code,
            detail=detail,
            trace_pointer=trace_pointer,
        )

    # -------------------------------------------------------------- reading

    def lookup(self, session_id: str) -> Optional[SessionRecord]:
        """The journaled record for a token, or ``None`` if never seen."""
        return self.state.sessions.get(session_id)

    # ------------------------------------------------------------ crash hook

    def _maybe_crash(self, type_: str) -> None:
        """The deterministic SIGKILL test hook (see module docstring)."""
        if self._crash_hook is None:
            return
        hook_type, hook_count = self._crash_hook
        if type_ != hook_type:
            return
        count = self._crash_counts.get(type_, 0) + 1
        self._crash_counts[type_] = count
        if count >= hook_count:
            os.kill(os.getpid(), signal.SIGKILL)
