"""Wire messages of the renaming-session protocol (`repro-renaming serve`).

A *session* is one client connection to the renaming daemon: the client
opens it, registers original ids (possibly across several frames), and
closes the quorum; the server runs the selected algorithm over the
registered ids and streams back the assignment plus a property
certificate. Every frame on the socket is one of the dataclasses below —
they are ordinary :class:`~repro.sim.messages.Message` subclasses, encoded
with the same :mod:`repro.wire` codec as the protocol traffic (tags 22+)
and carried inside the length-prefixed frame layer of
:mod:`repro.service.frames`.

Service frames are control-plane traffic; they do not participate in the
paper's bit-complexity accounting (experiment E6), so the default
:meth:`~repro.sim.messages.Message.bit_size` estimate is left untouched.

The module is deliberately a leaf (it imports only the message base class)
so :mod:`repro.wire` can register the codecs without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..sim.messages import Message

__all__ = [
    "ERROR_CODES",
    "SESSION_STATES",
    "CertificateMessage",
    "CloseSessionMessage",
    "NamesAssignedMessage",
    "OpenSessionMessage",
    "QueryRequestMessage",
    "QueryResponseMessage",
    "RegisterIdsMessage",
    "ServerBusyMessage",
    "SessionErrorMessage",
    "SessionWelcomeMessage",
]

#: Every ``code`` a :class:`SessionErrorMessage` may carry. Append-only —
#: clients branch on these (documented in docs/robustness.md).
ERROR_CODES = (
    "wire",              # malformed/oversized frame (typed WireError)
    "protocol",          # well-formed frame at the wrong point in the session
    "config",            # unusable session parameters (bad algorithm/ids/t)
    "idle-timeout",      # no frame within the per-read idle deadline
    "deadline",          # session deadline expired before any id registered
    "safety-violation",  # the in-run monitor aborted the run (typed)
    "property-violation",  # post-run certificate check failed
    "wall-budget",       # per-session wall-clock budget breached
    "rss-budget",        # per-session RSS budget breached
    "shutdown",          # session shed during graceful drain
    "infra",             # server-side failure unrelated to the session
    "duplicate-session",   # idempotency token already executing right now
)

#: Every ``state`` a :class:`QueryResponseMessage` may carry.
SESSION_STATES = (
    "completed",   # terminal; the journaled NamesAssigned + Certificate follow
    "failed",      # terminal; the journaled SessionError follows
    "in-flight",   # accepted (possibly before a crash) but not yet terminal
    "unknown",     # the journal has never seen this token
)


@dataclass(frozen=True)
class OpenSessionMessage(Message):
    """Client → server: session parameters. Must be the first client frame.

    ``algorithm`` is a registered algorithm name or ``"auto"`` (the server
    selects the cheapest applicable regime via
    :class:`repro.core.params.SystemParams`). ``t`` is the fault tolerance
    the algorithm is configured for; with ``t > 0`` the run simulates
    ``t`` faulty slots driven by ``attack``, so only the correct slots'
    names come back (exactly the simulator's contract).

    ``session_id`` is an optional client-supplied **idempotency token**.
    Against a daemon running with ``--session-journal``, a token makes the
    submission durable and repeatable: re-submitting the same token (same
    parameters, same ids) after a crash or disconnect replays the journaled
    result byte-for-byte instead of re-running, and
    :class:`QueryRequestMessage` can ask for the outcome later. Empty means
    anonymous (pre-journal behaviour, nothing recorded).
    """

    algorithm: str = "auto"
    t: int = 0
    attack: str = "silent"
    seed: int = 0
    session_id: str = ""


@dataclass(frozen=True)
class RegisterIdsMessage(Message):
    """Client → server: original ids joining the session (repeatable)."""

    ids: Tuple[int, ...]

    @classmethod
    def from_ids(cls, ids) -> "RegisterIdsMessage":
        return cls(ids=tuple(int(identifier) for identifier in ids))


@dataclass(frozen=True)
class CloseSessionMessage(Message):
    """Client → server: the quorum is complete — run the algorithm."""


@dataclass(frozen=True)
class SessionWelcomeMessage(Message):
    """Server → client: the session is admitted.

    ``deadline_ms`` is the wall budget after which the server closes the
    quorum on its own (runs if ids were registered, rejects otherwise).
    """

    session_id: int
    max_ids: int
    deadline_ms: int


@dataclass(frozen=True)
class ServerBusyMessage(Message):
    """Server → client: explicit backpressure — no session slot is free
    (or the server is draining). Never a silent drop; retry later."""

    active: int
    limit: int


@dataclass(frozen=True)
class NamesAssignedMessage(Message):
    """Server → client: the assignment, as sorted (original, name) pairs."""

    entries: Tuple[Tuple[int, int], ...]
    algorithm: str
    rounds: int

    def names(self) -> dict:
        return {original: name for original, name in self.entries}


@dataclass(frozen=True)
class CertificateMessage(Message):
    """Server → client: the property certificate for the assignment.

    Produced by running the assignment through
    :func:`repro.analysis.properties.check_renaming` *server-side* before
    the response leaves the process. ``checked`` names the properties the
    certificate covers (order preservation only for algorithms that
    promise it); ``violations`` is empty iff ``ok``.
    """

    namespace: int
    ok: bool
    checked: Tuple[str, ...]
    violations: Tuple[str, ...]


@dataclass(frozen=True)
class QueryRequestMessage(Message):
    """Client → server: what happened to idempotency token ``session_id``?

    Must be the first (and only) client frame of its connection; only
    meaningful against a daemon running with ``--session-journal``.
    """

    session_id: str


@dataclass(frozen=True)
class QueryResponseMessage(Message):
    """Server → client: the journaled state of a queried token.

    ``state`` is one of :data:`SESSION_STATES`. For ``completed`` the
    journaled :class:`NamesAssignedMessage` + :class:`CertificateMessage`
    frames follow on the same connection, byte-identical to the ones the
    original submission received; for ``failed`` the journaled
    :class:`SessionErrorMessage` follows.
    """

    session_id: str
    state: str


@dataclass(frozen=True)
class SessionErrorMessage(Message):
    """Server → client: typed session failure (one of :data:`ERROR_CODES`).

    ``trace_pointer`` locates the failure in a server-side trace when one
    exists (from :class:`~repro.sim.errors.SafetyViolation`); ``-1`` means
    no pointer.
    """

    code: str
    detail: str
    trace_pointer: int = -1
