"""Original-id workload generators.

The renaming problem starts from unique ids drawn from a huge namespace
``[1..N_max]`` (``N_max ≫ M``); how those ids are laid out changes nothing
about correctness but stresses different code paths — gap structure affects
where forged ids can interleave, magnitude affects message-size accounting.
All generators are deterministic in ``(kind, n, seed)``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..sim.rng import derive_rng

#: Default size of the original namespace (``N_max`` in the paper).
DEFAULT_NAMESPACE = 2**20


def uniform_ids(n: int, seed: int = 0, namespace: int = DEFAULT_NAMESPACE) -> List[int]:
    """``n`` distinct ids drawn uniformly from ``[1..namespace]``."""
    rng = derive_rng(seed, "workload", "uniform", n)
    return sorted(rng.sample(range(1, namespace + 1), n))


def dense_ids(n: int, seed: int = 0, namespace: int = DEFAULT_NAMESPACE) -> List[int]:
    """Consecutive ids ``start..start+n−1`` — no gaps for forged ids to use."""
    rng = derive_rng(seed, "workload", "dense", n)
    start = rng.randint(1, max(1, namespace - n))
    return list(range(start, start + n))


def clustered_ids(n: int, seed: int = 0, namespace: int = DEFAULT_NAMESPACE) -> List[int]:
    """Two tight clusters separated by a huge gap — the layout where
    interleaved forged ids distort rank geometry the most."""
    rng = derive_rng(seed, "workload", "clustered", n)
    low_count = n // 2
    low_start = rng.randint(1, namespace // 4)
    high_start = rng.randint(namespace // 2, namespace - n)
    low = list(range(low_start, low_start + low_count))
    high = list(range(high_start, high_start + (n - low_count)))
    return low + high


def extreme_ids(n: int, seed: int = 0, namespace: int = DEFAULT_NAMESPACE) -> List[int]:
    """Ids hugging both ends of the namespace (max/min magnitudes)."""
    half = n // 2
    low = list(range(1, half + 1))
    high = list(range(namespace - (n - half) + 1, namespace + 1))
    return low + high


_GENERATORS: Dict[str, Callable[..., List[int]]] = {
    "uniform": uniform_ids,
    "dense": dense_ids,
    "clustered": clustered_ids,
    "extreme": extreme_ids,
}


def make_ids(kind: str, n: int, seed: int = 0, namespace: int = DEFAULT_NAMESPACE) -> List[int]:
    """Dispatch to a named generator."""
    try:
        generator = _GENERATORS[kind]
    except KeyError:
        known = ", ".join(sorted(_GENERATORS))
        raise KeyError(f"unknown workload {kind!r}; known: {known}") from None
    ids = generator(n, seed=seed, namespace=namespace)
    if len(set(ids)) != n:
        raise AssertionError(f"workload {kind} produced duplicate ids")
    return ids


def workload_names() -> List[str]:
    """All registered workload kinds."""
    return sorted(_GENERATORS)
