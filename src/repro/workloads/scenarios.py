"""Canned end-to-end scenarios: (workload, size, attack, model) bundles.

Examples and integration tests reference scenarios by name so that "the
saturation worst case" or "the crash-heavy run" means the same configuration
everywhere. ``model`` is a :func:`repro.sim.parse_model` spec string
(``"classic"`` for the paper's model — the default); scenarios carry the
spec rather than a :class:`~repro.sim.SystemModel` so the table stays a
plain-string artifact (CLI help, docs, JSON) and parsing stays in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Scenario:
    """A named, fully-specified experiment setup."""

    name: str
    description: str
    n: int
    t: int
    workload: str
    attack: str
    #: System-model spec (see :func:`repro.sim.parse_model`).
    model: str = "classic"

    @property
    def size(self) -> Tuple[int, int]:
        return self.n, self.t


_SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            name="fault-free",
            description="No faults at all; the trivial sanity anchor.",
            n=8,
            t=0,
            workload="uniform",
            attack="silent",
        ),
        Scenario(
            name="silent-minority",
            description="t slots crash before sending anything (pure omission).",
            n=7,
            t=2,
            workload="uniform",
            attack="silent",
        ),
        Scenario(
            name="saturation",
            description=(
                "Colluding id forging drives |accepted| to the Lemma IV.3 "
                "maximum at every correct process."
            ),
            n=7,
            t=2,
            workload="dense",
            attack="id-forging",
        ),
        Scenario(
            name="divergent-views",
            description=(
                "Asymmetric forging gives t victim processes accepted sets "
                "nobody else has — the overlapping-AA-ranges hazard."
            ),
            n=10,
            t=3,
            workload="clustered",
            attack="divergence",
        ),
        Scenario(
            name="vote-poisoning",
            description="Valid-but-extreme AA votes (equivocating skew).",
            n=13,
            t=4,
            workload="uniform",
            attack="rank-skew",
        ),
        Scenario(
            name="crash-storm",
            description="Crash faults spread across the whole run.",
            n=10,
            t=3,
            workload="uniform",
            attack="crash",
        ),
        Scenario(
            name="fast-echo-attack",
            description=(
                "Selective MultiEcho against Alg. 4 — the Lemma VI.1 worst "
                "case (Δ = 2t²)."
            ),
            n=11,
            t=2,
            workload="uniform",
            attack="selective-echo",
        ),
        Scenario(
            name="fuzzed",
            description=(
                "Seeded random composition of Byzantine behaviour atoms "
                "(the coverage-widening adversary)."
            ),
            n=10,
            t=3,
            workload="clustered",
            attack="fuzz",
        ),
        Scenario(
            name="forged-senders",
            description=(
                "Okun-style impersonation: an external adversary injects 2 "
                "forged-sender frames per round through the real codec, "
                "without corrupting any process."
            ),
            n=7,
            t=2,
            workload="uniform",
            attack="silent",
            model="impersonation:k=2",
        ),
        Scenario(
            name="lossy-rounds",
            description=(
                "Partial synchrony: each network transmission is "
                "independently delayed up to 2 rounds (or lost at run end) "
                "with probability 0.05."
            ),
            n=7,
            t=2,
            workload="uniform",
            attack="silent",
            model="partial-synchrony:rate=0.05,delay=2",
        ),
        Scenario(
            name="sustained-divergence",
            description=(
                "Valid-vote divergence sustained through the voting phase — "
                "the slowest-converging traffic the isValid filter admits."
            ),
            n=13,
            t=4,
            workload="uniform",
            attack="divergence-valid",
        ),
    ]
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def scenario_names() -> List[str]:
    """All scenario names, sorted."""
    return sorted(_SCENARIOS)


def all_scenarios() -> List[Scenario]:
    """Every scenario, sorted by name."""
    return [_SCENARIOS[name] for name in scenario_names()]
