"""Workloads: original-id generators and canned fault scenarios."""

from .ids import (
    DEFAULT_NAMESPACE,
    clustered_ids,
    dense_ids,
    extreme_ids,
    make_ids,
    uniform_ids,
    workload_names,
)
from .scenarios import Scenario, all_scenarios, get_scenario, scenario_names

__all__ = [
    "DEFAULT_NAMESPACE",
    "Scenario",
    "all_scenarios",
    "clustered_ids",
    "dense_ids",
    "extreme_ids",
    "get_scenario",
    "make_ids",
    "scenario_names",
    "uniform_ids",
    "workload_names",
]
