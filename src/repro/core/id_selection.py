"""The 4-step id-selection phase of Algorithm 1 (Steps 1–4, Section IV-A).

This phase bounds how many identifiers Byzantine processes can inject before
the rank-approximation phase runs. It is a 4-step cousin of Bracha's
Echo/Ready reliable broadcast, adapted to the setting where sender identities
are unknown (only link labels are observable). It guarantees, at every
correct process ``p`` (Lemmas IV.1–IV.3):

* ``timely_p`` contains every correct id;
* ``accepted_p ⊇ ⋃_{q correct} timely_q``;
* ``|accepted_p| ≤ N + ⌊t²/(N−2t)⌋``  (``≤ N + t − 1`` when ``N > 3t``).

The class is a :class:`~repro.sim.compose.Phase`: :meth:`messages_for_step`
says what to broadcast and :meth:`deliver_step` consumes an inbox, so the
same object composes into Alg. 1's :class:`~repro.sim.compose.PhaseSequence`,
into the translated-Byzantine baseline's, and into unit tests that drive it
with hand-crafted message patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from ..sim.compose import Phase
from ..sim.process import Inbox, iter_inbox, ordered_links
from .messages import EchoMessage, IdMessage, Message, ReadyMessage
from .validation import is_sound_id

#: Number of communication steps this phase takes.
ID_SELECTION_STEPS = 4


@dataclass(frozen=True)
class IdSelectionResult:
    """Completion result of the id-selection phase (Lemmas IV.1–IV.3).

    ``ordered`` is ``accepted`` sorted ascending (line 26's ``sort``) — the
    basis for initial ranks in Alg. 1 and for the namespace split in the
    translated baseline.
    """

    timely: FrozenSet[int]
    accepted: FrozenSet[int]
    ordered: Tuple[int, ...]


class IdSelectionPhase(Phase):
    """State machine for Steps 1–4 of Algorithm 1.

    Drive it with ``messages_for_step(s)`` / ``deliver_step(s, inbox)`` for
    ``s = 1..4``; afterwards read :attr:`timely`, :attr:`accepted`,
    :meth:`sorted_accepted` — or :meth:`result` for the packaged
    :class:`IdSelectionResult` when composing.
    """

    steps = ID_SELECTION_STEPS

    def __init__(self, n: int, t: int, my_id: int) -> None:
        self.n = n
        self.t = t
        self.my_id = my_id
        #: ids carried forward to the next step ("Ids" in the pseudo-code).
        self._pending: Set[int] = set()
        #: id -> links that echoed it (Step 2).
        self._echo_links: Dict[int, Set[int]] = {}
        #: id -> links that sent READY for it (cumulative over Steps 3 and 4).
        self._ready_links: Dict[int, Set[int]] = {}
        #: ids this process has already broadcast READY for.
        self._readied: Set[int] = set()
        self.timely: FrozenSet[int] = frozenset()
        self.accepted: FrozenSet[int] = frozenset()

    # ------------------------------------------------------------------ sends

    def messages_for_step(self, step: int) -> List[Message]:
        """Messages to broadcast at the start of phase-step ``step`` (1-based)."""
        if step == 1:
            return [IdMessage(self.my_id)]
        if step == 2:
            return [EchoMessage(identifier) for identifier in sorted(self._pending)]
        if step in (3, 4):
            messages: List[Message] = []
            for identifier in sorted(self._pending):
                self._readied.add(identifier)
                messages.append(ReadyMessage(identifier))
            return messages
        raise ValueError(f"id selection has steps 1..4, got {step}")

    # --------------------------------------------------------------- receives

    def deliver_step(self, step: int, inbox: Inbox) -> None:
        """Consume the inbox of phase-step ``step`` and update state."""
        if step == 1:
            self._deliver_ids(inbox)
        elif step == 2:
            self._deliver_echoes(inbox)
        elif step == 3:
            self._deliver_readies(inbox)
            self._close_step3()
        elif step == 4:
            self._deliver_readies(inbox)
            self._close_step4()
        else:
            raise ValueError(f"id selection has steps 1..4, got {step}")

    def _deliver_ids(self, inbox: Inbox) -> None:
        # Step 1: "foreach id: <Id, id> received from a distinct link".
        # A faulty link may announce several ids; only its first announcement
        # counts as *its* id here (one id per link), which is the strongest
        # reading — extra announcements on the same link are ignored.
        for link in ordered_links(inbox):
            for message in inbox[link]:
                if isinstance(message, IdMessage) and is_sound_id(message.id):
                    self._pending.add(message.id)
                    break

    def _deliver_echoes(self, inbox: Inbox) -> None:
        # Step 2: keep ids echoed on at least N−t distinct links.
        for link, message in iter_inbox(inbox):
            if isinstance(message, EchoMessage) and is_sound_id(message.id):
                self._echo_links.setdefault(message.id, set()).add(link)
        self._pending = {
            identifier
            for identifier, links in self._echo_links.items()
            if len(links) >= self.n - self.t
        }

    def _deliver_readies(self, inbox: Inbox) -> None:
        # Steps 3 and 4 accumulate READY support per distinct link; a link
        # confirming the same id in both steps counts once.
        for link, message in iter_inbox(inbox):
            if isinstance(message, ReadyMessage) and is_sound_id(message.id):
                self._ready_links.setdefault(message.id, set()).add(link)

    def _close_step3(self) -> None:
        # timely: ids with >= N−t READY links after step 3 (line 17-18).
        self.timely = frozenset(
            identifier
            for identifier, links in self._ready_links.items()
            if len(links) >= self.n - self.t
        )
        # amplification: ids with >= N−2t READY links that we have not yet
        # confirmed get a READY from us in step 4 (lines 19-20).
        self._pending = {
            identifier
            for identifier, links in self._ready_links.items()
            if len(links) >= self.n - 2 * self.t and identifier not in self._readied
        }

    def _close_step4(self) -> None:
        # accepted: ids with >= N−t READY links over steps 3 and 4 (lines 24-25).
        self.accepted = frozenset(
            identifier
            for identifier, links in self._ready_links.items()
            if len(links) >= self.n - self.t
        )

    # ----------------------------------------------------------------- output

    def sorted_accepted(self) -> Tuple[int, ...]:
        """The accepted ids in ascending order (line 26's ``sort``)."""
        return tuple(sorted(self.accepted))

    def result(self) -> IdSelectionResult:
        """Package the phase outcome for the next phase in a sequence."""
        return IdSelectionResult(
            timely=self.timely,
            accepted=self.accepted,
            ordered=self.sorted_accepted(),
        )

    def rank_of(self, identifier: int) -> int:
        """1-based position of ``identifier`` in the sorted accepted set."""
        ordered = self.sorted_accepted()
        return ordered.index(identifier) + 1
