"""Algorithm 1 — order-preserving Byzantine renaming for ``N > 3t``.

The paper's main contribution, expressed as a
:class:`~repro.sim.compose.PhaseSequence` of its two phases:

1. **Id selection** (rounds 1–4, :class:`~repro.core.id_selection.IdSelectionPhase`):
   bound the identifiers Byzantine processes can inject and compute initial
   ranks — each accepted id's 1-based position in the sorted accepted set,
   stretched by ``δ = 1 + 1/(3(N+t))``.
2. **Rank approximation** (rounds 5 to ``3⌈log₂ t⌉ + 7``,
   :class:`VotingPhase`): coordinated Byzantine approximate agreement on the
   ranks. Incoming votes are filtered by ``isValid``
   (:mod:`repro.core.validation`) so the agreement can only converge
   order-consistently, then folded by ``approximate``
   (:mod:`repro.core.approximation`).

The final name is the nearest integer to the converged rank of the process's
own id. Guarantees (Theorem IV.10): validity in ``[1..N+t−1]``, termination
in ``3⌈log₂ t⌉ + 7`` rounds, uniqueness, and order preservation.

``RenamingOptions`` exposes the ablation switches used by experiment E9 —
they exist to *demonstrate the attacks the design defends against* and are
never on in normal use.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Set

from ..sim.compose import Phase, PhaseContext, PhaseSequence
from ..sim.errors import SafetyViolation
from ..sim.process import Inbox, ProcessContext, ordered_links
from .approximation import approximate, nearest_int
from .id_selection import ID_SELECTION_STEPS, IdSelectionPhase, IdSelectionResult
from .messages import Message, Rank, RanksMessage
from .params import SystemParams
from .validation import is_sound_vote, is_valid_ranks

#: Spacing tolerance used by ``isValid`` in float mode (see validation docs).
FLOAT_TOLERANCE = 1e-9

#: Consecutive all-votes-agree voting rounds before the early-deciding
#: extension freezes (2 = one round to reach the common value, one to
#: observe that everyone did).
STABILITY_ROUNDS = 2


@dataclass(frozen=True)
class RenamingOptions:
    """Tuning and ablation switches for Algorithm 1.

    * ``voting_rounds`` — override the scheduled approximation rounds
      (``None`` = the paper's ``3⌈log₂ t⌉ + 3``; the constant-time variant of
      Section V passes 4).
    * ``exact_arithmetic`` — ``True`` (default) runs ranks as
      :class:`fractions.Fraction`, matching the paper's exact analysis;
      ``False`` uses floats with an epsilon-tolerant validity check.
    * ``validate_votes`` — ablation E9a: ``False`` disables ``isValid`` and
      lets the divergence attack break uniqueness/order.
    * ``stretch`` — ablation E9d: ``False`` sets ``δ = 1``, collapsing the
      analytic rounding margin ``(δ−1)/2`` to zero (no attack in the library
      exploits it at laptop scale — finding F4 in EXPERIMENTS.md).
    * ``enforce_resilience`` — raise at construction unless ``N > 3t``.
    * ``early_deciding`` — enable the early-freezing extension (the
      direction of Alistarh et al. [1], which made the crash algorithm
      early-deciding). A process *freezes* its ranks once every valid vote
      it received agreed with its own ranks (restricted to its accepted
      ids) for :data:`STABILITY_ROUNDS` consecutive voting rounds, and
      keeps broadcasting the frozen vote until the scheduled final round.

      Why freezing is safe: correct votes always arrive and always pass
      ``isValid`` (Lemma IV.4), so "all valid votes agree with mine"
      implies *every correct process* holds identical ranks. That state is
      a fixed point of the trimmed fold — with ``N − t`` identical correct
      votes, trimming ``t`` extremes leaves only copies of the common value
      whatever the ``t`` Byzantine votes were — so the frozen value equals
      everyone's final value. Byzantine processes can at most *delay*
      freezing (a liveness attack degrades to the scheduled rounds), never
      corrupt it. Halting early, by contrast, would starve the remaining
      processes' ``N − t`` vote threshold, which is why the extension
      freezes-and-keeps-sending: the win is decision latency (traced as
      ``early_frozen``), not message count.
    """

    voting_rounds: Optional[int] = None
    exact_arithmetic: bool = True
    validate_votes: bool = True
    stretch: bool = True
    enforce_resilience: bool = True
    early_deciding: bool = False


class VotingPhase(Phase):
    """Rank approximation (lines 26–37) as a reusable phase.

    Construction performs lines 26–28 (sort accepted, rank every id, stretch
    by δ) from the preceding :class:`IdSelectionResult`; each step then
    broadcasts the current ranks and folds valid incoming votes
    (lines 30–35); the final step decides (lines 36–37). Trace events land
    on global rounds via the :class:`~repro.sim.compose.PhaseContext`, so
    the phase behaves identically at any offset in any pipeline.
    """

    def __init__(
        self,
        ctx: PhaseContext,
        selection: IdSelectionResult,
        *,
        delta: Rank,
        voting_rounds: int,
        options: RenamingOptions = RenamingOptions(),
        tolerance: float = 0.0,
    ) -> None:
        self.steps = voting_rounds
        self._ctx = ctx
        self.options = options
        self.delta = delta
        self._tolerance = tolerance
        self.timely = selection.timely
        self.accepted: Set[int] = set(selection.accepted)
        if ctx.my_id not in self.accepted:
            # Impossible for a correct process when N > 3t (Lemma IV.2);
            # reachable only when the model is violated, so fail loudly
            # and typed.
            raise SafetyViolation(
                f"correct id {ctx.my_id} missing from accepted set "
                f"(n={ctx.n}, t={ctx.t})",
                violated="invariant",
                ids=(ctx.my_id,),
            )
        self.ranks: Dict[int, Rank] = {
            identifier: position * self.delta
            for position, identifier in enumerate(selection.ordered, start=1)
        }
        ctx.log(0, "timely", frozenset(selection.timely))
        ctx.log(0, "accepted", selection.ordered)
        ctx.log(0, "ranks", dict(self.ranks))
        self._stable_rounds = 0
        #: Global round at which the early-deciding extension froze the
        #: ranks (None when it never triggered or is disabled).
        self.frozen_at: Optional[int] = None
        self._name: Optional[int] = None

    # ------------------------------------------------------------------ rounds

    def messages_for_step(self, step: int) -> List[Message]:
        return [RanksMessage.from_dict(self.ranks)]

    def deliver_step(self, step: int, inbox: Inbox) -> None:
        self._voting_step(step, inbox)
        if step == self.steps:
            self._decide()

    # ------------------------------------------------------------- phase logic

    def _voting_step(self, step: int, inbox: Inbox) -> None:
        """Lines 30–35: collect votes, filter with isValid, approximate."""
        votes: List[Mapping[int, Rank]] = []
        for link in ordered_links(inbox):
            vote = self._first_vote(inbox[link])
            if vote is None:
                continue
            if not self.options.validate_votes or is_valid_ranks(
                self.timely, vote, self.delta, self._tolerance
            ):
                votes.append(vote)
        if self.frozen_at is not None:
            return  # frozen: keep broadcasting, stop approximating
        if self.options.early_deciding:
            self._track_stability(step, votes)
            if self.frozen_at is not None:
                return
        self.ranks, self.accepted = approximate(
            self.ranks, self.accepted, votes, self._ctx.n, self._ctx.t
        )
        self._ctx.log(step, "ranks", dict(self.ranks))

    def _track_stability(self, step: int, votes: List[Mapping[int, Rank]]) -> None:
        """Early-deciding extension: freeze on STABILITY_ROUNDS unanimous
        rounds (see RenamingOptions.early_deciding for the safety argument)."""
        unanimous = len(votes) >= self._ctx.n - self._ctx.t and all(
            all(
                identifier in vote and vote[identifier] == rank
                for identifier, rank in self.ranks.items()
                if identifier in self.accepted
            )
            for vote in votes
        )
        if unanimous:
            self._stable_rounds += 1
        else:
            self._stable_rounds = 0
        if self._stable_rounds >= STABILITY_ROUNDS:
            self.frozen_at = self._ctx.global_round(step)
            self._ctx.log(step, "early_frozen", dict(self.ranks))

    @staticmethod
    def _first_vote(messages) -> Optional[Dict[int, Rank]]:
        """First AA vote on a link this round; extras on the same link are
        Byzantine double-voting and are ignored. Structurally unsound votes
        (non-int ids, NaN/inf ranks) are dropped before any arithmetic —
        hygiene, not semantics; ``isValid`` cannot be trusted to catch NaN
        because NaN defeats every comparison."""
        for message in messages:
            if isinstance(message, RanksMessage):
                vote = message.as_dict()
                return vote if is_sound_vote(vote) else None
        return None

    def _decide(self) -> None:
        """Line 36–37: output the rounded rank of the own id."""
        if self._ctx.my_id not in self.ranks:
            raise SafetyViolation(
                f"rank for own id {self._ctx.my_id} was discarded — "
                "cannot happen for a correct process when N > 3t",
                violated="invariant",
                ids=(self._ctx.my_id,),
            )
        self._name = nearest_int(self.ranks[self._ctx.my_id])
        self._ctx.log(self.steps, "decided", self._name)

    def result(self) -> int:
        return self._name


class OrderPreservingRenaming(PhaseSequence):
    """A correct process running Algorithm 1.

    ``PhaseSequence(IdSelectionPhase, VotingPhase)`` — the legacy monolithic
    round bookkeeping is gone; the sequence translates global rounds into
    each phase's local steps and threads the :class:`IdSelectionResult` into
    the voting phase's construction. Pre-refactor attributes (``.ranks``,
    ``.accepted``, ``.frozen_at``) delegate to the live voting phase so
    adversaries and analytics introspect the process unchanged.
    """

    def __init__(
        self, ctx: ProcessContext, options: RenamingOptions = RenamingOptions()
    ) -> None:
        self.options = options
        self.params = SystemParams(ctx.n, ctx.t)
        if options.enforce_resilience:
            self.params.require_byzantine_resilience()
        delta = self.params.delta if options.stretch else Fraction(1)
        self.delta: Rank = delta if options.exact_arithmetic else float(delta)
        self._tolerance = 0.0 if options.exact_arithmetic else FLOAT_TOLERANCE
        voting = options.voting_rounds
        self.voting_rounds = self.params.voting_rounds if voting is None else voting
        if self.voting_rounds < 1:
            raise ValueError(f"need at least one voting round, got {self.voting_rounds}")
        self.total_rounds = ID_SELECTION_STEPS + self.voting_rounds
        self.selection = IdSelectionPhase(ctx.n, ctx.t, ctx.my_id)
        self._voting: Optional[VotingPhase] = None
        super().__init__(ctx, [self._selection_phase, self._voting_phase])

    def _selection_phase(self, ctx: PhaseContext, _: object) -> IdSelectionPhase:
        return self.selection

    def _voting_phase(self, ctx: PhaseContext, outcome: object) -> VotingPhase:
        assert isinstance(outcome, IdSelectionResult)
        self._voting = VotingPhase(
            ctx,
            outcome,
            delta=self.delta,
            voting_rounds=self.voting_rounds,
            options=self.options,
            tolerance=self._tolerance,
        )
        return self._voting

    # ------------------------------------------------- pre-refactor attributes

    @property
    def ranks(self) -> Dict[int, Rank]:
        """Current rank estimates (empty until id selection completes)."""
        return self._voting.ranks if self._voting is not None else {}

    @property
    def accepted(self) -> Set[int]:
        """Accepted-id working set (empty until id selection completes)."""
        return self._voting.accepted if self._voting is not None else set()

    @property
    def frozen_at(self) -> Optional[int]:
        """Round at which early-deciding froze the ranks (None otherwise)."""
        return self._voting.frozen_at if self._voting is not None else None
