"""The paper's contribution: order-preserving Byzantine renaming.

* :class:`OrderPreservingRenaming` — Algorithm 1 (``N > 3t``, namespace
  ``N+t−1``, ``3⌈log₂ t⌉+7`` rounds).
* :class:`ConstantTimeRenaming` — Section V variant (``N > t²+2t``, namespace
  ``N``, 8 rounds).
* :class:`TwoStepRenaming` — Algorithm 4 (``N > 2t²+t``, namespace ``N²``,
  2 rounds).
* :class:`SystemParams` — every closed-form bound from the analysis.
* Building blocks: :class:`IdSelectionPhase`, :func:`is_valid_ranks`,
  :func:`approximate`, :func:`select_every_t`, :func:`trim_extremes`.
"""

from .approximation import (
    approximate,
    average,
    nearest_int,
    select_every_t,
    trim_extremes,
)
from .constant import ConstantTimeRenaming
from .fast import TWO_STEP_ROUNDS, TwoStepOptions, TwoStepPhase, TwoStepRenaming
from .id_selection import ID_SELECTION_STEPS, IdSelectionPhase, IdSelectionResult
from .messages import (
    EchoMessage,
    IdMessage,
    MultiEchoMessage,
    Rank,
    RanksMessage,
    ReadyMessage,
)
from .params import SystemParams
from .renaming import (
    FLOAT_TOLERANCE,
    STABILITY_ROUNDS,
    OrderPreservingRenaming,
    RenamingOptions,
    VotingPhase,
)
from .validation import is_sound_id, is_sound_rank, is_sound_vote, is_valid_ranks

__all__ = [
    "ConstantTimeRenaming",
    "EchoMessage",
    "FLOAT_TOLERANCE",
    "ID_SELECTION_STEPS",
    "IdMessage",
    "IdSelectionPhase",
    "IdSelectionResult",
    "MultiEchoMessage",
    "OrderPreservingRenaming",
    "Rank",
    "RanksMessage",
    "ReadyMessage",
    "RenamingOptions",
    "STABILITY_ROUNDS",
    "SystemParams",
    "TWO_STEP_ROUNDS",
    "TwoStepOptions",
    "TwoStepPhase",
    "TwoStepRenaming",
    "VotingPhase",
    "approximate",
    "average",
    "is_sound_id",
    "is_sound_rank",
    "is_sound_vote",
    "is_valid_ranks",
    "nearest_int",
    "select_every_t",
    "trim_extremes",
]
