"""Wire messages of Algorithms 1 and 4.

Frozen dataclasses so broadcast delivery can alias objects safely, with
explicit ``bit_size`` models matching the paper's message-size analysis:

* Alg. 1 control messages (``Id``/``Echo``/``Ready``) carry one id each;
* Alg. 1 ``Ranks`` messages carry up to ``N+t−1`` (id, rank) pairs —
  ``O((N+t−1)(log N_max + log N))`` bits (Section IV-D);
* Alg. 4 ``MultiEcho`` messages carry up to ``N`` ids — ``O(N log N_max)``
  bits (Section VI-B).

Ranks travel as sorted tuples of pairs because dataclass fields must be
hashable; :meth:`RanksMessage.as_dict` restores mapping form. Rank values are
``Fraction`` in exact mode or ``float`` in float mode — the wire format is
agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Rational
from typing import Dict, Mapping, Tuple, Union

from ..sim.messages import KIND_BITS, Message, RANK_FRACTION_BITS

Rank = Union[Rational, float]


@dataclass(frozen=True)
class IdMessage(Message):
    """Step-1 announcement ``⟨ID, my_id⟩``."""

    id: int

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + id_bits


@dataclass(frozen=True)
class EchoMessage(Message):
    """Step-2 echo ``⟨ECHO, id⟩``."""

    id: int

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + id_bits


@dataclass(frozen=True)
class ReadyMessage(Message):
    """Step-3/4 confirmation ``⟨READY, id⟩``."""

    id: int

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + id_bits


@dataclass(frozen=True)
class RanksMessage(Message):
    """Voting-phase vote ``⟨AA, ranks⟩``: the sender's full ranks array."""

    entries: Tuple[Tuple[int, Rank], ...]

    @classmethod
    def from_dict(cls, ranks: Mapping[int, Rank]) -> "RanksMessage":
        """Build from a ``{id: rank}`` mapping (canonically sorted by id)."""
        return cls(entries=tuple(sorted(ranks.items())))

    def as_dict(self) -> Dict[int, Rank]:
        """The ranks array as a mapping."""
        return dict(self.entries)

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        per_entry = id_bits + rank_bits + RANK_FRACTION_BITS
        return KIND_BITS + per_entry * len(self.entries)


@dataclass(frozen=True)
class MultiEchoMessage(Message):
    """Alg. 4 step-2 echo ``⟨MULTIECHO, ids⟩``: every id seen in step 1."""

    ids: Tuple[int, ...]

    @classmethod
    def from_ids(cls, ids) -> "MultiEchoMessage":
        """Build from any iterable of ids (canonically sorted, deduplicated)."""
        return cls(ids=tuple(sorted(set(ids))))

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + id_bits * len(self.ids)
