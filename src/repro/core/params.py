"""System parameters and every closed-form bound the paper proves.

All constants of Algorithms 1–4 and all quantities appearing in Lemmas
IV.3–IV.9, V.1–V.2, VI.1–VI.2 and Theorems IV.10, V.3, VI.3 are centralised
here, as exact rational arithmetic wherever the paper's analysis is exact.
Experiments compare *measured* behaviour against these methods, so keeping
them in one audited module prevents bound drift between tests, benchmarks and
documentation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from ..sim.errors import ConfigurationError


@dataclass(frozen=True)
class SystemParams:
    """A system size ``n`` together with a fault bound ``t``.

    Instances are cheap, immutable and hashable; all derived quantities are
    computed on demand.
    """

    n: int
    t: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be positive, got {self.n}")
        if not 0 <= self.t < self.n:
            raise ValueError(f"t must satisfy 0 <= t < n, got t={self.t}, n={self.n}")

    # ----------------------------------------------------------------- regimes

    @property
    def tolerates_byzantine(self) -> bool:
        """``N > 3t`` — the optimal resilience of Alg. 1 (Theorem IV.10)."""
        return self.n > 3 * self.t

    @property
    def in_constant_time_regime(self) -> bool:
        """``N > t² + 2t`` — Alg. 1 runs in 8 rounds with namespace N (Thm V.3)."""
        return self.n > self.t * self.t + 2 * self.t

    @property
    def in_fast_regime(self) -> bool:
        """``N > 2t² + t`` — Alg. 4 solves renaming in 2 rounds (Thm VI.3)."""
        return self.n > 2 * self.t * self.t + self.t

    # ------------------------------------------------------------ Alg. 1 knobs

    @property
    def delta(self) -> Fraction:
        """Stretch factor ``δ = 1 + 1/(3(N+t))`` (Alg. 1, line 02)."""
        return 1 + Fraction(1, 3 * (self.n + self.t))

    @property
    def sigma(self) -> int:
        """Per-voting-round convergence rate ``σ_t = ⌊(N−2t)/t⌋ + 1``.

        This is the *paper's* formula (Section IV-B). For ``t = 0`` a single
        exchange already equalises all correct ranks, so we report the
        natural "converges immediately" stand-in ``n + 1``.

        Reproduction finding: the formula overstates the achievable rate by
        one exactly when ``t`` divides ``N − 2t`` — ``select_t`` over the
        ``N − 2t`` trimmed votes can only return
        ``⌊(N−2t−1)/t⌋ + 1`` elements (the paper's own index set
        ``0 ≤ i < ⌊|set|/t⌋`` agrees), and the contraction factor equals the
        selected count. Use :attr:`realized_sigma` for guarantees the
        implementation actually delivers; E3/E4 measure the difference.
        """
        if self.t == 0:
            return self.n + 1
        return (self.n - 2 * self.t) // self.t + 1

    @property
    def realized_sigma(self) -> int:
        """The contraction rate the select/average fold actually achieves:
        the number of elements ``select_t`` returns, ``⌊(N−2t−1)/t⌋ + 1``.

        Equals :attr:`sigma` except when ``t`` divides ``N − 2t``, where it
        is one less. The worst case is realised by the rushing value-split
        adversary (measured in E3)."""
        if self.t == 0:
            return self.n + 1
        return (self.n - 2 * self.t - 1) // self.t + 1

    @property
    def rounding_safety_bound(self) -> Fraction:
        """The spread that still guarantees distinct rounded names: ``δ − 1``.

        Theorem IV.10's proof targets the stricter ``(δ−1)/2``
        (:attr:`convergence_target`), but adjacent correct ranks are spaced
        ``≥ δ`` at every process (Corollary IV.6), so any cross-process
        spread ``≤ δ − 1`` keeps ``rank(b) − rank(a) ≥ 1`` and rounded names
        distinct. E4 records configurations where the measured spread meets
        this bound but not the paper's tighter target."""
        return self.delta - 1

    @property
    def voting_rounds(self) -> int:
        """Scheduled approximation rounds: ``3⌈log₂ t⌉ + 3`` (Alg. 1, line 29).

        Defined via ``max(t, 1)`` so the formula extends to ``t ∈ {0, 1}``
        (three voting rounds), matching the paper for every ``t ≥ 1``.
        """
        return 3 * math.ceil(math.log2(max(self.t, 1))) + 3

    @property
    def total_rounds(self) -> int:
        """Alg. 1's total step complexity ``3⌈log₂ t⌉ + 7`` (Theorem IV.10)."""
        return self.voting_rounds + 4

    @property
    def constant_time_voting_rounds(self) -> int:
        """Voting rounds of the constant-time variant: 4 (Lemma V.2)."""
        return 4

    @property
    def constant_time_total_rounds(self) -> int:
        """Total rounds of the constant-time variant: 8 (Section VI intro)."""
        return self.constant_time_voting_rounds + 4

    # ------------------------------------------------------------------ bounds

    @property
    def accepted_bound(self) -> int:
        """Lemma IV.3: ``|accepted| ≤ N + ⌊t²/(N−2t)⌋`` at every correct process."""
        if self.n <= 2 * self.t:
            raise ValueError(f"accepted bound needs N > 2t (n={self.n}, t={self.t})")
        return self.n + (self.t * self.t) // (self.n - 2 * self.t)

    @property
    def namespace_bound(self) -> int:
        """Theorem IV.10's target namespace for Alg. 1: ``N + t − 1``.

        In the constant-time regime Lemma V.1 tightens this to exactly ``N``;
        :attr:`accepted_bound` already computes the tight value, and for
        ``N > 3t`` it never exceeds ``N + t − 1`` (except the fault-free case,
        where it is ``N``).
        """
        if self.t == 0:
            return self.n
        return self.n + self.t - 1

    @property
    def strong_namespace(self) -> int:
        """Lemma V.1: namespace ``N`` whenever ``N > t² + 2t``."""
        return self.n

    @property
    def fast_namespace_bound(self) -> int:
        """Theorem VI.3: Alg. 4's target namespace ``N²``."""
        return self.n * self.n

    @property
    def initial_spread_bound(self) -> Fraction:
        """Lemma IV.7: initial per-id rank discrepancy ``≤ (t + ⌊t²/(N−2t)⌋)·δ``."""
        return (self.t + (self.t * self.t) // (self.n - 2 * self.t)) * self.delta

    @property
    def convergence_target(self) -> Fraction:
        """Lemma IV.9's safe final spread ``(δ−1)/2 = 1/(6(N+t))``.

        Once the correct ranks for each timely id lie within this distance,
        rounding cannot break order preservation (proof of Theorem IV.10).
        """
        return (self.delta - 1) / 2

    @property
    def fast_discrepancy_bound(self) -> int:
        """Lemma VI.1: Alg. 4 name discrepancy ``Δ ≤ 2t²`` for a correct id."""
        return 2 * self.t * self.t

    @property
    def fast_min_gap(self) -> int:
        """Lemma VI.2: gap ``≥ N − t`` between consecutive correct new names."""
        return self.n - self.t

    # -------------------------------------------------------------- validation

    def require_byzantine_resilience(self) -> None:
        """Raise unless ``N > 3t`` (Alg. 1's requirement)."""
        if not self.tolerates_byzantine:
            raise ConfigurationError(
                f"Alg. 1 requires N > 3t, got N={self.n}, t={self.t}"
            )

    def require_constant_time_regime(self) -> None:
        """Raise unless ``N > t² + 2t`` (constant-time variant's requirement)."""
        if not self.in_constant_time_regime:
            raise ConfigurationError(
                f"constant-time renaming requires N > t^2 + 2t, got N={self.n}, t={self.t}"
            )

    def require_fast_regime(self) -> None:
        """Raise unless ``N > 2t² + t`` (Alg. 4's requirement)."""
        if not self.in_fast_regime:
            raise ConfigurationError(
                f"2-step renaming requires N > 2t^2 + t, got N={self.n}, t={self.t}"
            )
