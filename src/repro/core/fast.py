"""Algorithm 4 — 2-step order-preserving renaming for ``N > 2t² + t``.

No iterative agreement at all: announce, echo, count.

* **Round 1**: broadcast the own id; remember, per link, the id announced on
  it (``linkid``) and collect all announced ids into ``timely``.
* **Round 2**: broadcast ``timely`` as one ``MultiEcho``; accept incoming
  MultiEchoes that pass the validity filter (sender announced an id in round
  1, carries at most ``N`` ids, and overlaps the local ``timely`` in at least
  ``N − t`` ids), count echoes per id.
* **Naming**: sort the accepted ids; walk them accumulating the offset
  ``min(counter[id], N − t)``; the new name is the accumulated offset at the
  own id.

The ``min(·, N − t)`` clamp is the load-bearing trick: it makes the offset of
every *correct* id identical at all correct processes, so the only
disagreement left is the ``≤ 2t²`` echoes Byzantine processes can steer
(Lemma VI.1), which the ``N − t`` inter-name gap (Lemma VI.2) absorbs when
``N > 2t² + t`` (Theorem VI.3). Namespace ``[1..N²]``.

The whole algorithm is one :class:`TwoStepPhase`;
:class:`TwoStepRenaming` is the single-phase
:class:`~repro.sim.compose.PhaseSequence` running it (so the 2-step
namer slots into larger pipelines unchanged).

``clamp_offsets=False`` is ablation E9b: without the clamp the adversary's
selective echoing inflates Δ linearly in ``N`` and order preservation breaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..sim.compose import Phase, PhaseContext, PhaseSequence
from ..sim.errors import SafetyViolation
from ..sim.process import Inbox, ProcessContext, ordered_links
from .messages import IdMessage, Message, MultiEchoMessage
from .params import SystemParams
from .validation import is_sound_id

#: Alg. 4's round count.
TWO_STEP_ROUNDS = 2


@dataclass(frozen=True)
class TwoStepOptions:
    """Switches for Algorithm 4 (defaults = the paper's algorithm)."""

    clamp_offsets: bool = True
    enforce_resilience: bool = True


class TwoStepPhase(Phase):
    """Announce-echo-count (Alg. 4 lines 01–23) as a 2-step phase."""

    steps = TWO_STEP_ROUNDS

    def __init__(
        self, ctx: PhaseContext, options: TwoStepOptions = TwoStepOptions()
    ) -> None:
        self._ctx = ctx
        self.options = options
        self.link_id: Dict[int, int] = {}  # link -> id announced on it (line 02/09)
        self.timely: set = set()
        self.counter: Dict[int, int] = {}
        self.new_names: Dict[int, int] = {}
        self._name: Optional[int] = None

    # ------------------------------------------------------------------ rounds

    def messages_for_step(self, step: int) -> List[Message]:
        if step == 1:
            return [IdMessage(self._ctx.my_id)]
        return [MultiEchoMessage.from_ids(self.timely)]

    def deliver_step(self, step: int, inbox: Inbox) -> None:
        if step == 1:
            self._deliver_announcements(inbox)
        else:
            self._deliver_echoes(inbox)
            self._choose_names()

    # ------------------------------------------------------------- phase logic

    def _deliver_announcements(self, inbox: Inbox) -> None:
        """Round 1, lines 08–10: one id per link; extras on a link ignored."""
        for link in ordered_links(inbox):
            for message in inbox[link]:
                if isinstance(message, IdMessage) and is_sound_id(message.id):
                    self.link_id[link] = message.id
                    self.timely.add(message.id)
                    break

    def _deliver_echoes(self, inbox: Inbox) -> None:
        """Round 2, lines 13–17: count echoes from valid MultiEchoes."""
        for link in ordered_links(inbox):
            echo = self._first_multiecho(inbox[link])
            if echo is None or not self._is_valid(link, echo.ids):
                continue
            for identifier in set(echo.ids):
                self.counter[identifier] = self.counter.get(identifier, 0) + 1
        self._ctx.log(TWO_STEP_ROUNDS, "counters", dict(self.counter))

    @staticmethod
    def _first_multiecho(messages) -> Optional[MultiEchoMessage]:
        """First MultiEcho on a link; Byzantine duplicates are ignored so a
        single link can never contribute more than one echo per id."""
        for message in messages:
            if isinstance(message, MultiEchoMessage):
                return message
        return None

    def _is_valid(self, link: int, ids: Iterable[int]) -> bool:
        """Alg. 4's isValid: announced sender, ≤ N well-typed ids, ≥ N−t
        overlap. Structurally unsound ids anywhere in the echo condemn the
        whole message — an honest sender never produces them."""
        id_set = set(ids)
        return (
            link in self.link_id
            and len(id_set) <= self._ctx.n
            and all(is_sound_id(identifier) for identifier in id_set)
            and len(self.timely & id_set) >= self._ctx.n - self._ctx.t
        )

    def _choose_names(self) -> None:
        """Lines 18–23: accumulate clamped offsets over the sorted accepted ids."""
        cap = self._ctx.n - self._ctx.t
        accumulated = 0
        for identifier in sorted(self.counter):
            offset = self.counter[identifier]
            if self.options.clamp_offsets:
                offset = min(offset, cap)
            accumulated += offset
            self.new_names[identifier] = accumulated
        if self._ctx.my_id not in self.new_names:
            raise SafetyViolation(
                f"own id {self._ctx.my_id} received no echoes — impossible for "
                f"a correct process when N > 2t² + t",
                violated="invariant",
                ids=(self._ctx.my_id,),
            )
        self._name = self.new_names[self._ctx.my_id]
        self._ctx.log(TWO_STEP_ROUNDS, "decided", self._name)

    def result(self) -> int:
        return self._name


class TwoStepRenaming(PhaseSequence):
    """A correct process running Algorithm 4 (a one-phase sequence).

    Pre-refactor attributes (``.link_id``, ``.timely``, ``.counter``,
    ``.new_names``) delegate to the phase so analytics and tests introspect
    the process unchanged.
    """

    def __init__(
        self, ctx: ProcessContext, options: TwoStepOptions = TwoStepOptions()
    ) -> None:
        self.options = options
        self.params = SystemParams(ctx.n, ctx.t)
        if options.enforce_resilience:
            self.params.require_fast_regime()
        super().__init__(ctx, [self._two_step_phase])

    def _two_step_phase(self, ctx: PhaseContext, _: object) -> TwoStepPhase:
        self._phase = TwoStepPhase(ctx, self.options)
        return self._phase

    # ------------------------------------------------- pre-refactor attributes

    @property
    def link_id(self) -> Dict[int, int]:
        return self._phase.link_id

    @property
    def timely(self) -> set:
        return self._phase.timely

    @property
    def counter(self) -> Dict[int, int]:
        return self._phase.counter

    @property
    def new_names(self) -> Dict[int, int]:
        return self._phase.new_names
