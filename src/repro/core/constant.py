"""Section V — constant-time strong renaming for ``N > t² + 2t``.

In this regime two things happen simultaneously (Theorem V.3):

* the id-selection bound ``N + ⌊t²/(N−2t)⌋`` collapses to exactly ``N``
  (Lemma V.1), so Byzantine processes cannot add a single extra identifier
  and the namespace is the optimal ``N`` — *strong* renaming;
* the AA convergence rate ``σ_t ≥ t + 2`` is so fast that 4 voting rounds
  bring the correct ranks within ``(δ−1)/2`` (Lemma V.2), so the whole
  algorithm takes exactly 8 rounds.

The variant *is* Algorithm 1 with the voting phase truncated to 4 rounds
(the paper: "change the code of Alg. 1 to run only 4 approximation steps").
"""

from __future__ import annotations

from dataclasses import replace

from ..sim.process import ProcessContext
from .params import SystemParams
from .renaming import OrderPreservingRenaming, RenamingOptions


class ConstantTimeRenaming(OrderPreservingRenaming):
    """Algorithm 1 truncated to 4 voting rounds; requires ``N > t² + 2t``.

    Total round count is always 8; the achieved namespace is ``[1..N]``.
    """

    def __init__(self, ctx: ProcessContext, options: RenamingOptions = RenamingOptions()) -> None:
        params = SystemParams(ctx.n, ctx.t)
        if options.enforce_resilience:
            params.require_constant_time_regime()
        options = replace(
            options, voting_rounds=params.constant_time_voting_rounds
        )
        super().__init__(ctx, options)
