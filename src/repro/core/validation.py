"""Algorithm 2 — the ``isValid`` vote filter.

The crux of order preservation (Section IV-B): plain Byzantine approximate
agreement would let the adversary push the per-id agreement instances toward
overlapping values. ``isValid`` rejects any incoming ranks array that

1. is missing a rank for some id in the *recipient's* ``timely`` set (legal
   because ``timely_p ⊆ accepted_q`` for correct ``p, q`` — Lemma IV.1), or
2. ranks two timely ids closer than ``δ`` or out of order.

Correct processes always pass the filter (Lemma IV.4), and every vote that
passes — Byzantine or not — approximates consistently with the original id
order, which is exactly what Lemma A.3 needs.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Mapping

from .messages import Rank


def is_sound_rank(value: object) -> bool:
    """True when ``value`` is a usable rank: an int/Fraction, or a *finite*
    float.

    Byzantine senders control the full payload, and ``float('nan')`` is a
    live grenade: every comparison against NaN is False, so a NaN-laden vote
    sails through the ``< δ`` rejection in ``isValid``, survives trimming
    unpredictably, and detonates at ``Round()`` — crashing a correct
    process. (Found by adversarial testing; ``test_vote_hygiene.py`` keeps
    it fixed.) Infinities are merely extreme values the trim handles, but we
    reject them too: no honest rank is ever non-finite.
    """
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, Fraction)):
        return True
    return isinstance(value, float) and math.isfinite(value)


def is_sound_id(value: object) -> bool:
    """True when ``value`` can be treated as an original id: a positive int.

    Every ingestion point filters ids through this before adding them to any
    set that will later be sorted — a Byzantine string id inside an
    otherwise well-typed message would make ``sorted()`` raise at a correct
    process (mixed-type comparison), a trivial remote crash.
    """
    return isinstance(value, int) and not isinstance(value, bool) and value >= 1


def is_sound_vote(vote: Mapping[object, object]) -> bool:
    """Structural hygiene for a ranks array: int ids, sound rank values."""
    return all(
        is_sound_id(identifier) and is_sound_rank(value)
        for identifier, value in vote.items()
    )


def is_valid_ranks(
    timely: Iterable[int],
    ranks: Mapping[int, Rank],
    delta: Rank,
    tolerance: float = 0.0,
) -> bool:
    """Algorithm 2: accept ``ranks`` only if consistent with ``timely``.

    ``tolerance`` loosens the ``≥ δ`` spacing check and is 0 in exact
    (Fraction) mode; float mode passes a small epsilon to absorb rounding in
    repeated averaging (the paper's analysis is exact arithmetic).

    Checking consecutive ids in the sorted ``timely`` set is equivalent to the
    paper's all-pairs loop: δ-spacing of consecutive pairs implies (additively
    more than) δ-spacing of all pairs.
    """
    # Keep the threshold exact when no tolerance applies: subtracting the
    # float 0.0 would coerce a Fraction delta to the nearest double, which
    # can land *above* delta and spuriously reject exactly-delta-spaced
    # honest votes.
    threshold = delta - tolerance if tolerance else delta
    ordered = sorted(set(timely))
    for identifier in ordered:
        if identifier not in ranks:
            return False
    for smaller, larger in zip(ordered, ordered[1:]):
        if ranks[larger] - ranks[smaller] < threshold:
            return False
    return True
