"""Algorithm 3 — the ``approximate`` voting step.

One voting round of the coordinated Byzantine approximate agreement at the
heart of Alg. 1. Given the local ranks array and all *validated* ranks
arrays received this round, it produces the next ranks array:

* per accepted id, gather the votes mentioning it; drop ids with fewer than
  ``N − t`` votes (never happens to an id that is timely anywhere — Cor. IV.5);
* pad the vote multiset to exactly ``N`` entries with the local rank;
* trim the ``t`` smallest and ``t`` largest votes (Byzantine values cannot
  survive at the extremes);
* average ``select_t`` of the trimmed, sorted multiset — every ``t``-th
  element starting from the smallest — which contracts the correct-value
  spread by ``σ_t = ⌊(N−2t)/t⌋ + 1`` per round (Lemma IV.8) while keeping
  the result inside the correct values' range.

Pure functions over multisets; no I/O. Ranks may be ``Fraction`` (exact
mode, the default — the paper's analysis verbatim) or ``float``.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .messages import Rank


def trim_extremes(values: Sequence[Rank], t: int) -> List[Rank]:
    """Sort ``values`` and drop the ``t`` smallest and ``t`` largest.

    Alg. 3 lines 12–15. Requires ``len(values) > 2t`` so something survives.
    """
    if len(values) <= 2 * t:
        raise ValueError(
            f"cannot trim {t} extremes from each side of {len(values)} values"
        )
    ordered = sorted(values)
    return ordered[t: len(ordered) - t] if t else ordered


def select_every_t(ordered: Sequence[Rank], t: int) -> List[Rank]:
    """``select_t``: the smallest element and every ``t``-th one after it.

    For ``t = 0`` (no faults to defend against) every element is selected,
    making the step a plain average. See DESIGN.md §8 for how this indexing
    relates to the paper's σ_t count.
    """
    if not ordered:
        raise ValueError("select_t of an empty multiset")
    if t == 0:
        return list(ordered)
    return [ordered[i] for i in range(0, len(ordered), t)]


def average(values: Sequence[Rank]) -> Rank:
    """Arithmetic mean, exact under ``Fraction`` inputs."""
    return sum(values) / len(values)


def approximate(
    my_ranks: Mapping[int, Rank],
    accepted: Set[int],
    valid_votes: Sequence[Mapping[int, Rank]],
    n: int,
    t: int,
    trim: Optional[int] = None,
) -> Tuple[Dict[int, Rank], Set[int]]:
    """One full Alg. 3 step.

    Returns ``(new_ranks, new_accepted)``; ids with insufficient vote support
    are removed from the accepted set (Alg. 3 line 08 — "updates 'accepted'
    multiset" in Alg. 1 line 35).

    ``trim`` decouples the number of extreme values removed (and the
    ``select`` stride) from the support threshold ``n − t``: the Byzantine
    algorithm trims ``t`` (the default), while the crash-fault baseline of
    Okun [14] trims nothing — every vote is honest there — and averages the
    whole multiset.
    """
    if trim is None:
        trim = t
    new_ranks: Dict[int, Rank] = {}
    new_accepted: Set[int] = set()
    for identifier in accepted:
        votes: List[Rank] = [
            vote[identifier] for vote in valid_votes if identifier in vote
        ]
        if len(votes) < n - t:
            continue  # discarded: not enough support (line 08)
        new_accepted.add(identifier)
        votes = votes[:n]  # at most one valid vote per link; defensive cap
        while len(votes) < n:  # fill with own value (lines 10-11)
            votes.append(my_ranks[identifier])
        surviving = trim_extremes(votes, trim)  # lines 12-15
        new_ranks[identifier] = average(select_every_t(surviving, trim))  # line 16
    return new_ranks, new_accepted


def nearest_int(value: Rank) -> int:
    """The paper's ``Round``: nearest integer, ties rounded up.

    Python's built-in ``round`` uses banker's rounding; a deterministic
    half-up rule keeps outputs stable across rank representations (exact
    under ``Fraction`` inputs). Exact ties cannot occur for converged Alg. 1
    ranks (the δ-margin argument in Theorem IV.10 keeps every rank strictly
    inside a half-unit window), so the tie rule only matters for ablated
    variants.
    """
    return math.floor(value + Fraction(1, 2))
