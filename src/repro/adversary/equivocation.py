"""Split-world equivocation against the id-selection phase.

Each faulty slot announces a *different* fake id to different halves of the
correct processes, then echoes/READYs each fake only toward the half that
knows it. The interesting regime is partial support around the ``N − 2t``
threshold of Lemma A.1: a fake may end up

* in nobody's ``accepted`` (support too thin),
* in everyone's ``accepted`` but only some ``timely`` sets — the exact
  situation the Step-4 amplification (lines 19–23 of Alg. 1) exists for.

Correctness requires only that the invariant ``timely_p ⊆ accepted_q`` holds
for all correct ``p, q`` and that the renaming properties survive. Both are
what the tests and E1 assert under this adversary.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..core.messages import EchoMessage, IdMessage, ReadyMessage
from ..sim.faults import Adversary
from ..sim.messages import Message
from ..sim.process import Outbox
from .base import per_link_outbox


class SplitWorldAdversary(Adversary):
    """Two fake ids per faulty slot, each shown to one half of the world.

    ``support`` controls how many correct processes see each fake in round 1:
    ``"threshold"`` gives the first fake exactly ``N − 2t`` supporters (the
    Lemma A.1 boundary) and the second the rest; ``"half"`` splits evenly.
    """

    def __init__(self, support: str = "threshold") -> None:
        if support not in ("threshold", "half"):
            raise ValueError(f"unknown support mode {support!r}")
        self._support = support

    def bind(self, ctx) -> None:
        super().bind(ctx)
        correct = list(ctx.correct)
        top = max(ctx.ids.values())
        self._fakes: Dict[int, tuple] = {}
        self._audience: Dict[int, Dict[int, List[int]]] = {}
        if self._support == "threshold":
            cut = max(ctx.n - 2 * ctx.t, 0)
        else:
            cut = len(correct) // 2
        for offset, slot in enumerate(ctx.byzantine):
            first = top + 1 + 2 * offset
            second = top + 2 + 2 * offset
            self._fakes[slot] = (first, second)
            self._audience[slot] = {
                first: correct[:cut],
                second: correct[cut:],
            }

    def send(self, round_no: int, correct_outboxes: Mapping[int, Outbox]) -> Dict[int, Outbox]:
        if round_no == 1:
            return self._per_audience(lambda fake: IdMessage(fake))
        if round_no == 2:
            return self._per_audience(lambda fake: EchoMessage(fake))
        if round_no in (3, 4):
            return self._per_audience(lambda fake: ReadyMessage(fake))
        return {}

    def _per_audience(self, make) -> Dict[int, Outbox]:
        outboxes: Dict[int, Outbox] = {}
        for slot, fakes in self._fakes.items():
            content: Dict[int, List[Message]] = {}
            for fake in fakes:
                for peer in self._audience[slot][fake]:
                    content.setdefault(peer, []).append(make(fake))
            if content:
                outboxes[slot] = per_link_outbox(
                    content, sender=slot, topology=self.ctx.topology
                )
        return outboxes
