"""Byzantine attack strategies for the fault slots of a run.

The library covers the adversarial constructions used in the paper's own
proofs (id forging for Lemma IV.3, vote skew for Lemma IV.8, selective
echoing for Lemma VI.1), the benign anchors (silent, conforming, crash), and
generic robustness noise. Use :func:`make_adversary` / the name lists for
sweeps.
"""

from .aa_attacks import ValueSplitAdversary
from .base import ConformingAdversary, ProtocolDrivenAdversary, per_link_outbox
from .divergence import AsymmetricForgingAdversary, DivergenceAdversary
from .equivocation import SplitWorldAdversary
from .fast_attacks import SelectiveEchoAdversary
from .forging import IdForgingAdversary, forge_fake_ids, plan_announcements
from .fuzz import FuzzAdversary
from .passive import CrashAdversary, MuteAfterAdversary, SilentAdversary
from .rank_attacks import (
    BoundaryVoteAdversary,
    OrderInversionAdversary,
    RankCompressionAdversary,
    RankSkewAdversary,
)
from .registry import (
    ALG1_ATTACKS,
    ALG4_ATTACKS,
    adversary_names,
    make_adversary,
    register,
)
from .spam import RandomNoiseAdversary, ReplayAdversary

__all__ = [
    "ALG1_ATTACKS",
    "ALG4_ATTACKS",
    "AsymmetricForgingAdversary",
    "BoundaryVoteAdversary",
    "DivergenceAdversary",
    "ConformingAdversary",
    "CrashAdversary",
    "FuzzAdversary",
    "IdForgingAdversary",
    "MuteAfterAdversary",
    "OrderInversionAdversary",
    "ProtocolDrivenAdversary",
    "RandomNoiseAdversary",
    "RankCompressionAdversary",
    "RankSkewAdversary",
    "ReplayAdversary",
    "SelectiveEchoAdversary",
    "SilentAdversary",
    "SplitWorldAdversary",
    "ValueSplitAdversary",
    "adversary_names",
    "forge_fake_ids",
    "make_adversary",
    "per_link_outbox",
    "plan_announcements",
    "register",
]
