"""Shared machinery for Byzantine attack strategies.

Two recurring shapes:

* :class:`ProtocolDrivenAdversary` — strategies that run the *real* protocol
  inside each faulty slot and deviate only in what they put on the wire
  (conforming behaviour, crashes, vote skew). The runner's
  ``send``/``observe`` hooks are bridged onto the internal processes'
  ``send``/``deliver``.
* :func:`per_link_outbox` and friends — helpers for building equivocating
  outboxes (different content on different links), the core Byzantine power.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from ..sim.faults import Adversary
from ..sim.messages import Message
from ..sim.process import BROADCAST, Inbox, Outbox, Process


def per_link_outbox(content_by_peer: Mapping[int, Sequence[Message]], *, sender: int, topology) -> Outbox:
    """Build an outbox that sends ``content_by_peer[q]`` to each peer ``q``.

    Peers are addressed by *global index*; the helper translates to the
    sender's local link labels. The sender's own global index maps to its
    self-loop.
    """
    outbox: Outbox = {}
    for peer, messages in content_by_peer.items():
        if not messages:
            continue
        if peer == sender:
            link = topology.self_link
        else:
            link = topology.label_of(sender, peer)
        outbox.setdefault(link, []).extend(messages)
    return outbox


def uniform_outbox(messages: Iterable[Message]) -> Outbox:
    """An outbox broadcasting the same ``messages`` on every link."""
    return {BROADCAST: list(messages)}


class ProtocolDrivenAdversary(Adversary):
    """Runs a genuine protocol instance per faulty slot.

    Subclasses override :meth:`mutate_outbox` to distort what each slot
    transmits (default: transmit faithfully) and may override
    :meth:`mutate_inbox` to distort what the internal instance perceives.
    """

    def bind(self, ctx) -> None:
        super().bind(ctx)
        self._instances: Dict[int, Process] = {
            index: ctx.make_process(index) for index in ctx.byzantine
        }
        # Internal instances run in a hostile spot: a slot that crashed or
        # equivocated may leave its own protocol instance in a state a correct
        # process could never reach (e.g. its own id rejected). Such an
        # instance just stops being driven — the slot falls silent.
        self._wrecked: set = set()

    def instance(self, index: int) -> Process:
        """The internal protocol process driving faulty slot ``index``."""
        return self._instances[index]

    def _alive(self, index: int) -> bool:
        return index not in self._wrecked and not self._instances[index].done

    def send(self, round_no: int, correct_outboxes: Mapping[int, Outbox]) -> Dict[int, Outbox]:
        outboxes: Dict[int, Outbox] = {}
        for index, process in self._instances.items():
            if not self._alive(index):
                continue
            try:
                genuine = process.send(round_no)
            except Exception:
                self._wrecked.add(index)
                continue
            mutated = self.mutate_outbox(round_no, index, genuine, correct_outboxes)
            if mutated:
                outboxes[index] = mutated
        return outboxes

    def observe(self, round_no: int, inboxes: Mapping[int, Inbox]) -> None:
        for index, process in self._instances.items():
            if not self._alive(index):
                continue
            inbox = inboxes.get(index, {})
            try:
                process.deliver(round_no, self.mutate_inbox(round_no, index, inbox))
            except Exception:
                self._wrecked.add(index)

    # ------------------------------------------------------------------ hooks

    def mutate_outbox(
        self,
        round_no: int,
        index: int,
        genuine: Outbox,
        correct_outboxes: Mapping[int, Outbox],
    ) -> Outbox:
        """Distort slot ``index``'s genuine round outbox (default: none)."""
        return genuine

    def mutate_inbox(self, round_no: int, index: int, inbox: Inbox) -> Inbox:
        """Distort what slot ``index`` perceives (default: none)."""
        return inbox


class ConformingAdversary(ProtocolDrivenAdversary):
    """Faulty slots that behave exactly like correct processes.

    The weakest adversary: runs should be indistinguishable from fault-free
    executions with ``N`` correct processes. Used as a sanity anchor in tests
    and experiments.
    """


def expand_to_links(outbox: Outbox, n: int) -> Dict[int, List[Message]]:
    """Normalise an outbox into explicit per-link lists (BROADCAST unrolled)."""
    explicit: Dict[int, List[Message]] = {}
    for link, messages in outbox.items():
        targets = range(1, n + 1) if link == BROADCAST else (link,)
        for target in targets:
            explicit.setdefault(target, []).extend(messages)
    return explicit
