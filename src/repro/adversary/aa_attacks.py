"""Attacks on the standalone approximate-agreement primitive.

:class:`ValueSplitAdversary` is the classic rushing slow-down attack on
trimmed-mean AA: each round it reads the correct processes' outgoing values
(rushing power), takes their extremes, and reports the *maximum* to half the
peers and the *minimum* to the other half. Both values sit inside the
correct range, so trimming cannot always discard them, and the two halves
are pulled apart as hard as validity-free AA traffic allows. Lemma IV.8's
guarantee — contraction by σ_t per round regardless — is exactly what E3
measures against this adversary.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..agreement.approximate import ValueMessage
from ..sim.faults import Adversary
from ..sim.process import Outbox
from .base import per_link_outbox


class ValueSplitAdversary(Adversary):
    """Report the correct max to even peers and the correct min to odd ones."""

    def send(self, round_no: int, correct_outboxes: Mapping[int, Outbox]) -> Dict[int, Outbox]:
        values = []
        for outbox in correct_outboxes.values():
            for messages in outbox.values():
                for message in messages:
                    if isinstance(message, ValueMessage):
                        values.append(message.value)
        if not values:
            return {}
        high, low = ValueMessage(max(values)), ValueMessage(min(values))
        outboxes: Dict[int, Outbox] = {}
        for slot in self.ctx.byzantine:
            content = {
                peer: [high if peer % 2 == 0 else low]
                for peer in self.ctx.correct
            }
            outboxes[slot] = per_link_outbox(
                content, sender=slot, topology=self.ctx.topology
            )
        return outboxes
