"""Asymmetric forging: divergent ``accepted`` sets across correct processes.

The uniform forging attack (:mod:`repro.adversary.forging`) maximises the
accepted-set *size* but leaves every correct process with the same set. The
nastier situation — the one motivating the paper's coordinated validation —
is *divergence*: some correct processes accept an id that others never see,
which shifts all their initial ranks and makes the per-id AA input ranges
overlap across adjacent ids (Section IV-B's opening paragraph).

The construction threads the exact needle left by Lemmas IV.1/A.1. For a
fake id ``f`` (placed below every correct id) and a victim set ``V`` of
``v ≤ t`` correct processes:

* Step 1 — announce ``f`` to exactly ``N − 2t`` correct processes (set A);
  they all echo it.
* Step 2 — Byzantine slots echo ``f`` only to ``R ⊂ A`` with
  ``|R| = N − 2t − 1``; only R reaches the ``N − t`` echo threshold and
  broadcasts READY in step 3.
* Step 3 — Byzantine slots send READY only to ``V``. Members of ``V`` see
  ``N − t − 1`` READYs: *below* the timely threshold (so Lemma IV.1's
  amplification-to-everyone never fires) but *at* the ``N − 2t``
  amplification threshold, so V broadcasts READY in step 4.
* Step 4 — V's own READYs push exactly the members of ``V`` past ``N − t``
  cumulative READY links. ``f`` lands in ``accepted`` at ``V`` and nowhere
  else.

Every correct process still renames correctly under the full algorithm
(validation + trimming absorb the divergence — that is experiment E1). The
companion :class:`DivergenceAdversary` keeps pushing in the voting phase
with per-recipient vote equivocation; against the *ablated* algorithm
(``validate_votes=False``, experiment E9a) this breaks uniqueness/order.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.messages import EchoMessage, IdMessage, Rank, RanksMessage, ReadyMessage
from ..sim.faults import Adversary
from ..sim.messages import Message
from ..sim.process import Outbox
from .base import per_link_outbox
from .forging import forge_fake_ids


class AsymmetricForgingAdversary(Adversary):
    """Make ``v ≤ t`` victim processes accept fakes nobody else accepts."""

    def __init__(
        self,
        fake_count: int = 0,
        victim_count: int = 0,
        victim_mode: str = "top",
    ) -> None:
        """``fake_count=0`` → ``t`` fakes; ``victim_count=0`` → ``t`` victims.

        ``victim_mode``: ``"top"`` victimises the holders of the largest ids
        (uniform upward shift — stresses the namespace ceiling);
        ``"alternate"`` victimises every other process in id order, which
        interleaves shifted and unshifted neighbours — the sharpest probe
        for rounding collisions between adjacent ids.
        """
        if victim_mode not in ("top", "alternate"):
            raise ValueError(f"unknown victim mode {victim_mode!r}")
        self._fake_count = fake_count
        self._victim_count = victim_count
        self._victim_mode = victim_mode

    def bind(self, ctx) -> None:
        super().bind(ctx)
        n, t = ctx.n, ctx.t
        if t == 0:
            self.fakes: List[int] = []
            self.victims: List[int] = []
            return
        correct = sorted(ctx.correct, key=lambda i: ctx.ids[i])
        count = self._fake_count or t
        victims = self._victim_count or t
        victims = min(victims, t, len(correct))
        self.fakes = forge_fake_ids([ctx.ids[i] for i in correct], count, "below")
        # Victims' ranks for every id shift upward relative to everyone
        # else's (they accept the fakes below all correct ids).
        if self._victim_mode == "top":
            self.victims = correct[-victims:]
        else:
            self.victims = correct[1::2][:victims]
        self.receivers = correct[: max(n - 2 * t, 0)]          # A
        self.echo_targets = self.receivers[: max(n - 2 * t - 1, 0)]  # R

    def send(self, round_no: int, correct_outboxes: Mapping[int, Outbox]) -> Dict[int, Outbox]:
        if not self.fakes:
            return {}
        if round_no == 1:
            return self._announce()
        if round_no == 2:
            return self._to_peers(self.echo_targets, EchoMessage)
        if round_no == 3:
            return self._to_peers(self.victims, ReadyMessage)
        return {}

    def _announce(self) -> Dict[int, Outbox]:
        # A link carries exactly one step-1 announcement, so fake j is owned
        # by faulty slot j and announced by it alone (fake_count ≤ t keeps
        # this within budget; excess fakes are dropped by the zip).
        outboxes: Dict[int, Outbox] = {}
        for slot, fake in zip(self.ctx.byzantine, self.fakes):
            content: Dict[int, List[Message]] = {
                peer: [IdMessage(fake)] for peer in self.receivers
            }
            if content:
                outboxes[slot] = per_link_outbox(
                    content, sender=slot, topology=self.ctx.topology
                )
        return outboxes

    def _to_peers(self, peers: Sequence[int], make) -> Dict[int, Outbox]:
        outboxes: Dict[int, Outbox] = {}
        for slot in self.ctx.byzantine:
            content: Dict[int, List[Message]] = {
                peer: [make(fake) for fake in self.fakes] for peer in peers
            }
            if content:
                outboxes[slot] = per_link_outbox(
                    content, sender=slot, topology=self.ctx.topology
                )
        return outboxes


class DivergenceAdversary(AsymmetricForgingAdversary):
    """Asymmetric forging plus voting-phase zigzag votes.

    The asymmetric forging seeds divergent accepted sets: the ``t`` victims'
    ranks for every correct id sit ``k·δ`` above everyone else's (``k`` fakes
    below the smallest correct id), so the per-id AA instances receive
    *overlapping* input ranges — the exact hazard the paper's Section IV-B
    opening describes.

    During voting the slots then send, to everyone, a *zigzag* vote: ids at
    even positions (in original-id order) rated at the top of their correct
    range, ids at odd positions at the bottom. Those votes invert adjacent
    pairs, so ``isValid`` rejects every one of them and the full algorithm is
    unaffected (experiment E1). With ``validate_votes=False`` (ablation E9a)
    they survive trimming — they sit inside the correct ranges — and steer
    each adjacent pair of instances to a common point: the pair's rounded
    names collide, breaking uniqueness/order.
    """

    def __init__(
        self,
        fake_count: int = 0,
        victim_count: int = 0,
        push: Optional[Fraction] = None,
        victim_mode: str = "top",
        push_mode: str = "zigzag",
    ) -> None:
        """``push_mode``:

        * ``"zigzag"`` — per-id alternating extremes in one vote. Inverts
          adjacent pairs, hence *invalid*: ``isValid`` filters it, so it only
          bites when validation is ablated (E9a).
        * ``"valid-shift"`` — a δ-spaced layout uniformly shifted up for
          victims and unshifted for everyone else, sent per-recipient. Every
          vote passes ``isValid``; the attack *sustains* the divergence the
          forging seeded, so it bites when the voting phase is truncated
          below the Lemma IV.9 schedule (E9c) while the full schedule
          absorbs it.
        """
        if push_mode not in ("zigzag", "valid-shift"):
            raise ValueError(f"unknown push mode {push_mode!r}")
        super().__init__(fake_count, victim_count, victim_mode=victim_mode)
        self._push = push
        self._push_mode = push_mode

    def bind(self, ctx) -> None:
        super().bind(ctx)
        self._correct_ids = sorted(ctx.ids[i] for i in ctx.correct)

    def send(self, round_no: int, correct_outboxes: Mapping[int, Outbox]) -> Dict[int, Outbox]:
        if round_no <= 4:
            return super().send(round_no, correct_outboxes)
        return self._voting_push(correct_outboxes)

    def _voting_push(self, correct_outboxes: Mapping[int, Outbox]) -> Dict[int, Outbox]:
        from ..core.params import SystemParams

        params = SystemParams(self.ctx.n, self.ctx.t)
        delta = params.delta
        push = self._push if self._push is not None else Fraction(len(self.fakes))
        base: Dict[int, Rank] = {
            identifier: (position + 1) * delta
            for position, identifier in enumerate(self._correct_ids)
        }
        if self._push_mode == "zigzag":
            # Even positions pinned to the top of the spread, odd to the
            # bottom — invalid (inverts adjacent pairs), same vote for all.
            vote: Dict[int, Rank] = {
                identifier: rank + push * delta if position % 2 == 0 else rank
                for position, (identifier, rank) in enumerate(sorted(base.items()))
            }
            message = RanksMessage.from_dict(vote)
            return {
                slot: {link: [message] for link in self.ctx.topology.labels()}
                for slot in self.ctx.byzantine
            }
        # valid-shift: victims see the shifted layout, others the base one.
        high = RanksMessage.from_dict(
            {identifier: rank + push * delta for identifier, rank in base.items()}
        )
        low = RanksMessage.from_dict(base)
        victims = set(self.victims)
        outboxes: Dict[int, Outbox] = {}
        for slot in self.ctx.byzantine:
            content: Dict[int, List[Message]] = {
                peer: [high if peer in victims else low]
                for peer in self.ctx.correct
            }
            outboxes[slot] = per_link_outbox(
                content, sender=slot, topology=self.ctx.topology
            )
        return outboxes
