"""Voting-phase attacks on the rank-approximation (AA) phase of Algorithm 1.

These adversaries behave *correctly* through the id-selection phase (running
a genuine internal protocol instance), then distort the votes they emit in
rounds ≥ 5. Three families:

* :class:`RankSkewAdversary` — equivocating but *valid* votes: uniform shifts
  and spacing distortions that pass ``isValid`` (shifting a whole ranks array
  preserves δ-spacing). This is the strongest thing a Byzantine voter can do
  against the filter, and is what Lemma IV.8's trimming + ``select_t``
  analysis defends against. Expected outcome: convergence still contracts by
  ``σ_t`` per round and order is preserved.
* :class:`OrderInversionAdversary` — *invalid* votes that swap the ranks of
  adjacent timely ids. ``isValid`` must reject every one of them; with the
  validation ablated (experiment E9a) these votes drive the per-id AA
  instances into overlapping ranges and break order preservation.
* :class:`BoundaryVoteAdversary` — votes placed exactly at the trim boundary
  (just inside the correct values' range) to minimise the contraction rate;
  used by E3 to check the measured rate never falls below ``σ_t``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping

from ..core.id_selection import ID_SELECTION_STEPS
from ..core.messages import Rank, RanksMessage
from ..sim.messages import Message
from ..sim.process import Outbox
from .base import ProtocolDrivenAdversary, per_link_outbox


def shifted(ranks: Mapping[int, Rank], offset: Rank) -> Dict[int, Rank]:
    """A ranks array uniformly shifted by ``offset`` (always isValid-clean)."""
    return {identifier: rank + offset for identifier, rank in ranks.items()}


def respaced(ranks: Mapping[int, Rank], spacing: Rank, base: Rank) -> Dict[int, Rank]:
    """Ranks re-laid-out at uniform ``spacing`` starting at ``base``.

    Keeps the id order of ``ranks`` (so it passes ``isValid`` whenever
    ``spacing ≥ δ``) but discards all positional information — an attempt to
    drag every AA instance toward an adversary-chosen layout.
    """
    ordered = sorted(ranks, key=lambda identifier: (ranks[identifier], identifier))
    return {
        identifier: base + position * spacing
        for position, identifier in enumerate(ordered)
    }


class _VotingPhaseAdversary(ProtocolDrivenAdversary):
    """Shared plumbing: faithful until round 4, forged votes afterwards."""

    def mutate_outbox(self, round_no, index, genuine: Outbox, correct_outboxes) -> Outbox:
        if round_no <= ID_SELECTION_STEPS:
            return genuine
        process = self.instance(index)
        # Duck-typed: anything exposing ranks/delta/params quacks like
        # Alg. 1 (incl. the frozen pre-refactor reference copies the
        # differential tests run) — forging only needs those attributes.
        ranks = getattr(process, "ranks", None)
        if not ranks or not hasattr(process, "delta"):
            return genuine
        content: Dict[int, List[Message]] = {}
        for position, peer in enumerate(range(self.ctx.n)):
            vote = self.forge_vote(round_no, index, position, peer, process)
            content[peer] = [RanksMessage.from_dict(vote)]
        return per_link_outbox(content, sender=index, topology=self.ctx.topology)

    def forge_vote(
        self,
        round_no: int,
        index: int,
        position: int,
        peer: int,
        process,
    ) -> Dict[int, Rank]:
        raise NotImplementedError


class RankSkewAdversary(_VotingPhaseAdversary):
    """Valid-but-equivocating votes: half the peers see the genuine ranks
    shifted up by ``magnitude`` name-slots, the other half shifted down.

    ``magnitude`` defaults to ``t`` slots — about the largest initial
    disagreement honest executions produce (Lemma IV.7) — but any value is
    valid on the wire; trimming is what keeps large values harmless.
    """

    def __init__(self, magnitude: Fraction = None) -> None:
        self._magnitude = magnitude

    def forge_vote(self, round_no, index, position, peer, process):
        magnitude = self._magnitude
        if magnitude is None:
            magnitude = Fraction(max(self.ctx.t, 1)) * process.delta
        sign = 1 if peer % 2 == 0 else -1
        return shifted(process.ranks, sign * magnitude)


class RankCompressionAdversary(_VotingPhaseAdversary):
    """Half the peers get minimal δ-spaced ranks, half get doubly-stretched.

    Both variants are valid; the attack tries to squeeze the safety margins
    between adjacent ids from opposite directions at different processes.
    """

    def forge_vote(self, round_no, index, position, peer, process):
        delta = process.delta
        if peer % 2 == 0:
            return respaced(process.ranks, delta, delta)
        return respaced(process.ranks, 2 * delta, delta)


class OrderInversionAdversary(_VotingPhaseAdversary):
    """Invalid votes: the ranks of each adjacent pair of ids are swapped.

    Every correct process must reject these via ``isValid``; with
    ``validate_votes=False`` (ablation E9a) they poison the approximation.
    """

    def forge_vote(self, round_no, index, position, peer, process):
        ordered = sorted(process.ranks)
        forged = dict(process.ranks)
        for low, high in zip(ordered[::2], ordered[1::2]):
            forged[low], forged[high] = forged[high], forged[low]
        return forged


class BoundaryVoteAdversary(_VotingPhaseAdversary):
    """Votes pinned to an extreme of the genuine ranks' plausible range.

    Each faulty slot sends, to every peer, the genuine ranks shifted to sit
    just inside where the correct values plausibly end (±the initial spread
    bound). Since the shift is uniform the votes are valid, and because they
    sit at the boundary they survive trimming as often as possible — the
    slowest-convergence needle E3 probes with.
    """

    def forge_vote(self, round_no, index, position, peer, process):
        spread = process.params.initial_spread_bound
        sign = 1 if index % 2 == 0 else -1
        return shifted(process.ranks, sign * spread)
