"""Colluding id forging — the Lemma IV.3 / A.1 saturation attack.

Lemma A.1: an id enters some correct ``accepted`` set only if at least
``N − 2t`` correct processes received it in Step 1. Each Byzantine slot can
announce one id per link, i.e. ``N − t`` announcements toward correct
processes, so the collusion can sustain at most

    ⌊ t(N−t) / (N−2t) ⌋  =  t + ⌊ t² / (N−2t) ⌋

distinct forged ids — precisely the slack in Lemma IV.3. This adversary
*constructs* that worst case:

* it fabricates the maximum number of fake ids (placement configurable:
  interleaved between correct ids, all below, or all above);
* round 1: each fake id is announced to ``N − 2t`` distinct correct
  processes, the announcements packed disjointly across the ``t × (N−t)``
  (slot, peer) budget;
* round 2: every faulty slot echoes *all* fake ids and all correct ids;
* rounds 3–4: READY for everything.

Every fake id then clears the ``N − t`` echo and READY thresholds at every
correct process, so it lands in ``timely`` and ``accepted`` everywhere —
the accepted set reaches ``N + ⌊t²/(N−2t)⌋`` exactly. During the voting
phase the slots stay silent (the damage is already done; correct processes
still receive ``N − t`` valid votes from each other).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from ..core.messages import EchoMessage, IdMessage, ReadyMessage
from ..sim.faults import Adversary
from ..sim.messages import Message
from ..sim.process import Outbox
from .base import per_link_outbox


def forge_fake_ids(correct_ids: Sequence[int], count: int, placement: str) -> List[int]:
    """Fabricate ``count`` fresh ids positioned relative to the correct ones.

    ``placement``:
      * ``"between"`` — squeezed into the gaps of the sorted correct ids
        (worst case for rank geometry; falls back to above when gaps run out);
      * ``"below"`` — all smaller than every correct id (shifts every rank);
      * ``"above"`` — all larger (stresses the namespace ceiling).
    """
    taken: Set[int] = set(correct_ids)
    ordered = sorted(taken)
    fakes: List[int] = []

    def take(value: int) -> bool:
        if value >= 1 and value not in taken:
            taken.add(value)
            fakes.append(value)
            return True
        return False

    if placement == "below":
        candidate = min(ordered) - 1
        while len(fakes) < count and candidate >= 1:
            take(candidate)
            candidate -= 1
    elif placement == "between":
        for low, high in zip(ordered, ordered[1:]):
            candidate = low + 1
            while candidate < high and len(fakes) < count:
                take(candidate)
                candidate += 1
            if len(fakes) >= count:
                break
    elif placement != "above":
        raise ValueError(f"unknown placement {placement!r}")
    candidate = max(ordered) + 1
    while len(fakes) < count:
        take(candidate)
        candidate += 1
    return fakes


def plan_announcements(
    fakes: Sequence[int],
    byzantine: Sequence[int],
    correct: Sequence[int],
    quota: int,
) -> Dict[Tuple[int, int], int]:
    """Assign each fake id to ``quota`` (slot, correct-peer) announcement pairs.

    Constraints: the peers backing one fake id are distinct (Step-1 support
    counts distinct correct *receivers*), and each (slot, peer) pair carries
    at most one fake (one ID message counts per link). Greedy by remaining
    peer capacity; raises if the caller over-asks, which would mean the
    Lemma IV.3 budget arithmetic is wrong.
    """
    capacity: Dict[int, List[int]] = {peer: list(byzantine) for peer in correct}
    assignment: Dict[Tuple[int, int], int] = {}
    for fake in fakes:
        peers = sorted(capacity, key=lambda p: len(capacity[p]), reverse=True)[:quota]
        if len(peers) < quota or any(not capacity[p] for p in peers):
            raise RuntimeError(
                f"announcement budget exhausted for fake id {fake} "
                f"(needs {quota} distinct peers)"
            )
        for peer in peers:
            slot = capacity[peer].pop()
            assignment[(slot, peer)] = fake
    return assignment


class IdForgingAdversary(Adversary):
    """Drive ``|accepted|`` to its proven maximum at every correct process."""

    def __init__(self, placement: str = "between", count: int = 0) -> None:
        """``count=0`` means "the maximum the budget allows"."""
        self._placement = placement
        self._requested = count

    def bind(self, ctx) -> None:
        super().bind(ctx)
        n, t = ctx.n, ctx.t
        correct = list(ctx.correct)
        correct_ids = [ctx.ids[i] for i in correct]
        quota = n - 2 * t
        budget = (t * (n - t)) // quota if quota > 0 else 0
        count = budget if self._requested == 0 else min(self._requested, budget)
        self.fakes = forge_fake_ids(correct_ids, count, self._placement)
        self._assignment = plan_announcements(self.fakes, ctx.byzantine, correct, quota)
        self._all_ids = sorted(set(correct_ids) | set(self.fakes))

    def send(self, round_no: int, correct_outboxes: Mapping[int, Outbox]) -> Dict[int, Outbox]:
        if round_no == 1:
            return self._announce()
        if round_no == 2:
            return self._flood([EchoMessage(i) for i in self._all_ids])
        if round_no in (3, 4):
            return self._flood([ReadyMessage(i) for i in self._all_ids])
        return {}

    def _announce(self) -> Dict[int, Outbox]:
        outboxes: Dict[int, Outbox] = {}
        for slot in self.ctx.byzantine:
            content: Dict[int, List[Message]] = {}
            for (assigned_slot, peer), fake in self._assignment.items():
                if assigned_slot == slot:
                    content[peer] = [IdMessage(fake)]
            if content:
                outboxes[slot] = per_link_outbox(
                    content, sender=slot, topology=self.ctx.topology
                )
        return outboxes

    def _flood(self, messages: List[Message]) -> Dict[int, Outbox]:
        return {
            slot: {link: list(messages) for link in self.ctx.topology.labels()}
            for slot in self.ctx.byzantine
        }
