"""Passive / benign-ish fault strategies: silence and crashes.

These model the *crash-fault* world inside the Byzantine framework, which is
what lets the crash baselines of experiment E8 and the Byzantine algorithms
share one simulator. A crash in the synchronous model is "stop mid-round":
the crashing process's final round delivers an arbitrary subset of its
messages (here: a seeded random subset of links), and nothing afterwards.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..sim.faults import Adversary, NullAdversary
from ..sim.process import Outbox
from .base import ProtocolDrivenAdversary, expand_to_links


class SilentAdversary(NullAdversary):
    """Faulty slots that never transmit — total omission from round 1."""


class CrashAdversary(ProtocolDrivenAdversary):
    """Faulty slots run the real protocol, then crash.

    Each slot gets a crash round drawn uniformly from ``1..horizon`` (or a
    fixed schedule via ``crash_rounds``). In its crash round the slot's
    outbox reaches only a random subset of links; afterwards it is silent.
    A slot may also crash "cleanly before sending" when the subset is empty.
    """

    def __init__(
        self,
        horizon: int = 8,
        crash_rounds: Optional[Mapping[int, int]] = None,
    ) -> None:
        self._horizon = horizon
        self._fixed = dict(crash_rounds or {})
        self._schedule: Dict[int, int] = {}

    def bind(self, ctx) -> None:
        super().bind(ctx)
        for index in ctx.byzantine:
            if index in self._fixed:
                self._schedule[index] = self._fixed[index]
            else:
                self._schedule[index] = ctx.rng.randint(1, max(1, self._horizon))

    def mutate_outbox(self, round_no, index, genuine: Outbox, correct_outboxes) -> Outbox:
        crash_round = self._schedule[index]
        if round_no > crash_round:
            return {}
        if round_no < crash_round:
            return genuine
        # Crash mid-send: deliver on a random subset of links only.
        explicit = expand_to_links(genuine, self.ctx.n)
        links = sorted(explicit)
        keep = {link for link in links if self.ctx.rng.random() < 0.5}
        return {link: msgs for link, msgs in explicit.items() if link in keep}

    def crash_round_of(self, index: int) -> int:
        """The scheduled crash round of faulty slot ``index`` (for tests)."""
        return self._schedule[index]


class MuteAfterAdversary(ProtocolDrivenAdversary):
    """Run the real protocol, then go permanently silent after a fixed round.

    Unlike :class:`CrashAdversary` the cut is deterministic and clean — handy
    for pinpointing which phase of an algorithm tolerates omissions.
    """

    def __init__(self, last_active_round: int) -> None:
        self._last = last_active_round

    def mutate_outbox(self, round_no, index, genuine: Outbox, correct_outboxes) -> Outbox:
        return genuine if round_no <= self._last else {}
