"""Noise strategies: protocol-shaped garbage at full volume.

These do not implement a clever attack; they stress the *robustness* of the
message-handling paths — duplicate messages on one link, unknown ids, ranks
with absurd magnitudes, wrong message kinds for the current round. A correct
implementation shrugs all of it off; a sloppy one crashes or miscounts.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping

from ..sim.faults import Adversary
from ..sim.messages import Message
from ..sim.process import Outbox
from ..core.messages import (
    EchoMessage,
    IdMessage,
    MultiEchoMessage,
    RanksMessage,
    ReadyMessage,
)
from .base import per_link_outbox


class RandomNoiseAdversary(Adversary):
    """Every faulty slot floods every link with random protocol messages.

    ``intensity`` is the number of messages per link per round. Ids are drawn
    from a window around the real id range so some collide with real ids and
    some are fresh garbage.
    """

    def __init__(self, intensity: int = 3) -> None:
        self._intensity = intensity

    def _random_id(self) -> int:
        ids = list(self.ctx.ids.values())
        return self.ctx.rng.randint(1, max(ids) + 10)

    def _random_message(self) -> Message:
        rng = self.ctx.rng
        choice = rng.randrange(5)
        if choice == 0:
            return IdMessage(self._random_id())
        if choice == 1:
            return EchoMessage(self._random_id())
        if choice == 2:
            return ReadyMessage(self._random_id())
        if choice == 3:
            count = rng.randint(0, self.ctx.n)
            entries = tuple(
                (self._random_id(), Fraction(rng.randint(-10 * self.ctx.n, 10 * self.ctx.n), rng.randint(1, 7)))
                for _ in range(count)
            )
            return RanksMessage(entries=entries)
        return MultiEchoMessage.from_ids(
            self._random_id() for _ in range(rng.randint(0, self.ctx.n))
        )

    def send(self, round_no: int, correct_outboxes: Mapping[int, Outbox]) -> Dict[int, Outbox]:
        outboxes: Dict[int, Outbox] = {}
        for index in self.ctx.byzantine:
            content: Dict[int, List[Message]] = {}
            for peer in range(self.ctx.n):
                content[peer] = [self._random_message() for _ in range(self._intensity)]
            outboxes[index] = per_link_outbox(
                content, sender=index, topology=self.ctx.topology
            )
        return outboxes


class ReplayAdversary(Adversary):
    """Copies correct messages seen this round back out on every link.

    A rushing mirror: whatever some correct process just said, the faulty
    slots repeat verbatim to everyone. Checks that support counting is by
    *distinct links*, not by message volume — replayed duplicates must not
    inflate any threshold past what the ``t`` faulty links legitimately add.
    """

    def send(self, round_no: int, correct_outboxes: Mapping[int, Outbox]) -> Dict[int, Outbox]:
        seen: List[Message] = []
        for outbox in correct_outboxes.values():
            for messages in outbox.values():
                seen.extend(messages)
                break  # one link's worth per correct process is plenty
        payload = seen[: 2 * self.ctx.n]
        if not payload:
            return {}
        return {
            index: {link: list(payload) for link in self.ctx.topology.labels()}
            for index in self.ctx.byzantine
        }
