"""Structured adversary fuzzing.

The hand-crafted attacks realise known worst cases; the fuzzer searches for
*unknown* ones. Per (round, slot, link) it samples one of several behaviour
atoms — silence, protocol-shaped garbage, replaying a rushing copy of a
correct message, echoing a previously seen id, forging a fresh id near the
real ones, or sending a plausible-but-skewed vote built from observed
traffic. All sampling is seeded, so a property-test failure is a replayable
counterexample (the seed is the reproducer).

Used by ``tests/test_fuzz_adversary.py`` (hypothesis drives the seeds) and
available to the CLI as ``--attack fuzz``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional

from ..core.messages import (
    EchoMessage,
    IdMessage,
    MultiEchoMessage,
    RanksMessage,
    ReadyMessage,
)
from ..sim.faults import Adversary
from ..sim.messages import Message
from ..sim.process import Inbox, Outbox

#: Behaviour atoms the fuzzer samples from, per (round, slot, link).
ATOMS = (
    "silence",
    "own-id",
    "fake-id",
    "echo-seen",
    "ready-seen",
    "replay",
    "skewed-vote",
    "multi-echo",
)


class FuzzAdversary(Adversary):
    """Seeded random composition of Byzantine behaviour atoms."""

    def __init__(self, intensity: float = 0.8) -> None:
        """``intensity`` is the probability that a (slot, link) pair acts at
        all in a given round (the rest stay silent)."""
        self._intensity = intensity

    def bind(self, ctx) -> None:
        super().bind(ctx)
        self._seen_ids: List[int] = sorted(ctx.ids.values())
        self._seen_votes: List[Mapping[int, object]] = []
        self._rushed: List[Message] = []

    # -------------------------------------------------------------- observers

    def observe(self, round_no: int, inboxes: Mapping[int, Inbox]) -> None:
        for inbox in inboxes.values():
            for messages in inbox.values():
                for message in messages:
                    if isinstance(message, (IdMessage, EchoMessage, ReadyMessage)):
                        if isinstance(message.id, int) and message.id > 0:
                            self._seen_ids.append(message.id)
                    elif isinstance(message, RanksMessage):
                        self._seen_votes.append(message.as_dict())
        if len(self._seen_ids) > 4 * self.ctx.n:
            self._seen_ids = self._seen_ids[-4 * self.ctx.n:]
        if len(self._seen_votes) > self.ctx.n:
            self._seen_votes = self._seen_votes[-self.ctx.n:]

    # ----------------------------------------------------------------- sender

    def send(self, round_no: int, correct_outboxes: Mapping[int, Outbox]) -> Dict[int, Outbox]:
        self._rushed = [
            message
            for outbox in correct_outboxes.values()
            for messages in outbox.values()
            for message in messages
        ][: 2 * self.ctx.n]
        outboxes: Dict[int, Outbox] = {}
        for slot in self.ctx.byzantine:
            outbox: Outbox = {}
            for link in self.ctx.topology.labels():
                if self.ctx.rng.random() > self._intensity:
                    continue
                message = self._emit(slot, round_no)
                if message is not None:
                    outbox[link] = [message]
            if outbox:
                outboxes[slot] = outbox
        return outboxes

    def _emit(self, slot: int, round_no: int) -> Optional[Message]:
        rng = self.ctx.rng
        atom = ATOMS[rng.randrange(len(ATOMS))]
        if atom == "silence":
            return None
        if atom == "own-id":
            return IdMessage(self.ctx.ids[slot])
        if atom == "fake-id":
            return IdMessage(max(self._seen_ids) + rng.randint(1, 50))
        if atom == "echo-seen":
            return EchoMessage(rng.choice(self._seen_ids))
        if atom == "ready-seen":
            return ReadyMessage(rng.choice(self._seen_ids))
        if atom == "replay" and self._rushed:
            return rng.choice(self._rushed)
        if atom == "skewed-vote":
            return self._skewed_vote()
        if atom == "multi-echo":
            count = rng.randint(0, self.ctx.n)
            return MultiEchoMessage.from_ids(
                rng.choice(self._seen_ids) for _ in range(count)
            )
        return None

    def _skewed_vote(self) -> Message:
        """A vote built from observed traffic: either a uniform shift of a
        real vote (valid) or a fresh δ-spaced layout over seen ids."""
        rng = self.ctx.rng
        shift = Fraction(rng.randint(-3 * self.ctx.n, 3 * self.ctx.n), 3)
        if self._seen_votes and rng.random() < 0.7:
            base = rng.choice(self._seen_votes)
            return RanksMessage.from_dict(
                {identifier: value + shift for identifier, value in base.items()}
            )
        distinct = sorted(set(self._seen_ids))[: self.ctx.n + self.ctx.t]
        spacing = 1 + Fraction(1, 3 * (self.ctx.n + self.ctx.t))
        return RanksMessage.from_dict(
            {
                identifier: shift + position * spacing
                for position, identifier in enumerate(distinct, start=1)
            }
        )
