"""Named adversary registry used by the CLI, tests and benchmarks.

Strategies are registered under short stable names so an experiment sweep can
say "run Alg. 1 against every registered attack" and stay in sync as attacks
are added. Factories take no arguments; parameterised variants register
under distinct names (e.g. ``split-world-half``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..sim.faults import Adversary
from .aa_attacks import ValueSplitAdversary
from .base import ConformingAdversary
from .divergence import AsymmetricForgingAdversary, DivergenceAdversary
from .equivocation import SplitWorldAdversary
from .fast_attacks import SelectiveEchoAdversary
from .forging import IdForgingAdversary
from .fuzz import FuzzAdversary
from .passive import CrashAdversary, SilentAdversary
from .rank_attacks import (
    BoundaryVoteAdversary,
    OrderInversionAdversary,
    RankCompressionAdversary,
    RankSkewAdversary,
)
from .spam import RandomNoiseAdversary, ReplayAdversary

AdversaryFactory = Callable[[], Adversary]

_REGISTRY: Dict[str, AdversaryFactory] = {
    "silent": SilentAdversary,
    "conforming": ConformingAdversary,
    "crash": CrashAdversary,
    "noise": RandomNoiseAdversary,
    "replay": ReplayAdversary,
    "fuzz": FuzzAdversary,
    "split-world": SplitWorldAdversary,
    "split-world-half": lambda: SplitWorldAdversary(support="half"),
    "id-forging": IdForgingAdversary,
    "id-forging-below": lambda: IdForgingAdversary(placement="below"),
    "asymmetric-forging": AsymmetricForgingAdversary,
    "divergence": DivergenceAdversary,
    "divergence-valid": lambda: DivergenceAdversary(
        victim_mode="alternate", push_mode="valid-shift"
    ),
    "rank-skew": RankSkewAdversary,
    "rank-compression": RankCompressionAdversary,
    "order-inversion": OrderInversionAdversary,
    "boundary-votes": BoundaryVoteAdversary,
    "selective-echo": SelectiveEchoAdversary,
    "selective-echo-low": lambda: SelectiveEchoAdversary(target="low-half"),
    "selective-echo-starve": lambda: SelectiveEchoAdversary(starve=True),
    "value-split": ValueSplitAdversary,
}

#: Attacks meaningful against Algorithm 1 (id selection + voting phases).
ALG1_ATTACKS: List[str] = [
    "silent",
    "conforming",
    "crash",
    "noise",
    "replay",
    "fuzz",
    "split-world",
    "split-world-half",
    "id-forging",
    "id-forging-below",
    "asymmetric-forging",
    "divergence",
    "divergence-valid",
    "rank-skew",
    "rank-compression",
    "order-inversion",
    "boundary-votes",
]

#: Attacks meaningful against Algorithm 4 (2 rounds, echo counting).
ALG4_ATTACKS: List[str] = [
    "silent",
    "conforming",
    "noise",
    "replay",
    "fuzz",
    "selective-echo",
    "selective-echo-low",
    "selective-echo-starve",
]


def register(name: str, factory: AdversaryFactory) -> None:
    """Add (or replace) a named strategy."""
    _REGISTRY[name] = factory


def make_adversary(name: str) -> Adversary:
    """Instantiate the strategy registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown adversary {name!r}; known: {known}") from None
    return factory()


def adversary_names() -> List[str]:
    """All registered strategy names, sorted."""
    return sorted(_REGISTRY)
