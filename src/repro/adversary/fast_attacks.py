"""Attacks on the 2-step algorithm (Algorithm 4).

:class:`SelectiveEchoAdversary` builds the worst case of Lemmas VI.1/VI.2:

* **Round 1** — each faulty slot announces a *private* fake id (smaller than
  every correct id) to a targeted half of the correct processes, and a
  harmless duplicate of a correct id to everyone else. Announcing something
  on every link matters: Alg. 4's ``isValid`` drops echoes from links that
  never introduced themselves.
* **Round 2** — to targeted peers each slot sends a MultiEcho containing
  ``N − 2t`` correct ids, the ``t`` private fakes (already in the target's
  ``timely``, so they count toward the overlap check) and ``t`` fresh fakes —
  exactly the "t known + t arbitrary" worst case in the proof of Lemma VI.1,
  and exactly ``N`` ids so the size check passes. Non-targets get a plain
  echo of the correct ids.

Every fake sits *below* the correct ids, so each targeted process's own new
name inflates by up to ``2t²`` while untargeted processes are unaffected —
the maximum discrepancy ``Δ``. With the paper's requirement ``N > 2t² + t``
the ``N − t`` inter-name gap (Lemma VI.2) absorbs it; run the same adversary
at ``N ≤ 2t² + t`` or with ``clamp_offsets=False`` and order preservation
visibly breaks (experiments E5/E9b).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..core.messages import IdMessage, MultiEchoMessage
from ..sim.faults import Adversary
from ..sim.messages import Message
from ..sim.process import Outbox
from .base import per_link_outbox
from .forging import forge_fake_ids


class SelectiveEchoAdversary(Adversary):
    """Maximise new-name discrepancy for targeted processes in Alg. 4."""

    def __init__(self, target: str = "alternate", starve: bool = False) -> None:
        """``target``: ``"alternate"`` (every other correct process, by id
        order — the sharpest order-inversion probe), ``"low-half"`` or
        ``"high-half"`` (processes holding the smaller/larger ids).

        ``starve=True`` switches to the counter-boosting variant aimed at the
        ``min(counter, N−t)`` clamp: targets receive an echo of *all* correct
        ids plus the private fakes (boosting every correct counter by ``t``),
        while non-targets receive no echo at all. With the clamp in place the
        boost is inert (correct counters saturate at ``N−t`` anyway); with
        ``clamp_offsets=False`` (ablation E9b) the targets' accumulated
        offsets inflate by ``t`` per correct id below them — linear in ``N``
        — and order preservation breaks.
        """
        if target not in ("alternate", "low-half", "high-half"):
            raise ValueError(f"unknown target mode {target!r}")
        self._target_mode = target
        self._starve = starve

    def bind(self, ctx) -> None:
        super().bind(ctx)
        by_id = sorted(ctx.correct, key=lambda i: ctx.ids[i])
        if self._target_mode == "alternate":
            self.targets = set(by_id[::2])
        elif self._target_mode == "low-half":
            self.targets = set(by_id[: len(by_id) // 2])
        else:
            self.targets = set(by_id[len(by_id) // 2:])
        correct_ids = sorted(ctx.ids[i] for i in ctx.correct)
        self._correct_ids = correct_ids
        # t private fakes (one per slot, announced in round 1) and t fresh
        # fakes (appearing only inside round-2 echoes), preferentially below
        # every correct id so they displace every correct name upward.
        slots = list(ctx.byzantine)
        fakes = forge_fake_ids(correct_ids, len(slots) + ctx.t, "below")
        self.private_fake = dict(zip(slots, fakes[: len(slots)]))
        self.fresh_fakes = fakes[len(slots):]

    def send(self, round_no: int, correct_outboxes: Mapping[int, Outbox]) -> Dict[int, Outbox]:
        if round_no == 1:
            return self._announce()
        if round_no == 2:
            return self._echo()
        return {}

    def _announce(self) -> Dict[int, Outbox]:
        outboxes: Dict[int, Outbox] = {}
        decoy = self._correct_ids[0]
        for slot in self.ctx.byzantine:
            content: Dict[int, List[Message]] = {}
            for peer in self.ctx.correct:
                announced = self.private_fake[slot] if peer in self.targets else decoy
                content[peer] = [IdMessage(announced)]
            outboxes[slot] = per_link_outbox(
                content, sender=slot, topology=self.ctx.topology
            )
        return outboxes

    def _echo(self) -> Dict[int, Outbox]:
        n, t = self.ctx.n, self.ctx.t
        plain: Optional[MultiEchoMessage] = MultiEchoMessage.from_ids(self._correct_ids)
        if self._starve:
            # Boost every correct counter at targets; nothing to non-targets.
            poisoned = MultiEchoMessage.from_ids(
                self._correct_ids + list(self.private_fake.values())[: n - len(self._correct_ids)]
            )
            plain = None
        else:
            # N−2t correct ids + t private fakes + t fresh fakes = N ids;
            # overlap with a target's timely ≥ (N−2t) + t = N−t. Valid.
            poisoned = MultiEchoMessage.from_ids(
                self._correct_ids[: max(n - 2 * t, 0)]
                + list(self.private_fake.values())
                + self.fresh_fakes
            )
        outboxes: Dict[int, Outbox] = {}
        for slot in self.ctx.byzantine:
            content: Dict[int, List[Message]] = {}
            for peer in self.ctx.correct:
                if peer in self.targets:
                    content[peer] = [poisoned]
                elif plain is not None:
                    content[peer] = [plain]
            outboxes[slot] = per_link_outbox(
                content, sender=slot, topology=self.ctx.topology
            )
        return outboxes
