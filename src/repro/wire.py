"""Binary wire codec for every message type in the library.

The simulator passes Python objects, so a codec is not needed to *run*
anything — it exists to keep the bit-accounting model honest (experiment
E6) and to make the library usable over a real transport: every message
class round-trips through a compact, self-describing binary encoding, and
``tests/test_wire.py`` checks that the ``bit_size`` model tracks the real
encoded size.

Format: one tag byte per message, then type-specific fields encoded with
LEB128 varints (zigzag for signed values). Ranks are exact: a ``Fraction``
travels as (zigzag numerator, varint denominator); floats are encoded as
their exact ``Fraction`` equivalent (``float.as_integer_ratio``), so the
codec never loses precision.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Tuple, Type, Union

from .agreement.approximate import ValueMessage
from .agreement.eig import RelayMessage
from .agreement.phase_king import KingMessage, PhaseValueMessage
from .baselines.splitting import ClaimMessage
from .broadcast.bracha import (
    EchoValueMessage,
    InitialMessage,
    ReadyValueMessage,
)
from .core.messages import (
    EchoMessage,
    IdMessage,
    MultiEchoMessage,
    RanksMessage,
    ReadyMessage,
)
from .service.messages import (
    CertificateMessage,
    CloseSessionMessage,
    NamesAssignedMessage,
    OpenSessionMessage,
    QueryRequestMessage,
    QueryResponseMessage,
    RegisterIdsMessage,
    ServerBusyMessage,
    SessionErrorMessage,
    SessionWelcomeMessage,
)
from .sim.compose import EnvelopeMessage
from .sim.messages import Message


class WireError(ValueError):
    """Raised on any malformed encoding."""


# ----------------------------------------------------------------- varints


def write_varint(value: int, out: bytearray) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise WireError(f"varint needs a non-negative value, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Returns (value, new_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WireError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 127:
            raise WireError("varint too long")


def _write_signed(value: int, out: bytearray) -> None:
    """Zigzag + varint: 0, -1, 1, -2, 2 … encode as 0, 1, 2, 3, 4 …"""
    encoded = (value << 1) if value >= 0 else ((-value << 1) - 1)
    write_varint(encoded, out)


def _read_signed(data: bytes, offset: int) -> Tuple[int, int]:
    encoded, offset = read_varint(data, offset)
    value = encoded >> 1
    return (-value - 1 if encoded & 1 else value), offset


# ------------------------------------------------------------------- ranks

Rank = Union[int, float, Fraction]


def _write_rank(value: Rank, out: bytearray) -> None:
    if isinstance(value, float):
        # floats are exact binary fractions; as_integer_ratio is lossless.
        fraction = Fraction(*value.as_integer_ratio())
    else:
        fraction = Fraction(value)
    _write_signed(fraction.numerator, out)
    write_varint(fraction.denominator, out)


def _read_rank(data: bytes, offset: int) -> Tuple[Fraction, int]:
    numerator, offset = _read_signed(data, offset)
    denominator, offset = read_varint(data, offset)
    if denominator == 0:
        raise WireError("zero denominator")
    return Fraction(numerator, denominator), offset


# -------------------------------------------------------------------- text

#: Hard cap on one encoded string field. Service frames carry short
#: algorithm names and error details; a varint length claiming megabytes
#: is an allocation bomb, not a message.
MAX_TEXT_BYTES = 4096


def _write_text(value: str, out: bytearray) -> None:
    data = value.encode("utf-8")
    if len(data) > MAX_TEXT_BYTES:
        raise WireError(
            f"text field of {len(data)} bytes exceeds cap {MAX_TEXT_BYTES}"
        )
    write_varint(len(data), out)
    out.extend(data)


def _read_text(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = read_varint(data, offset)
    if length > MAX_TEXT_BYTES:
        raise WireError(
            f"text field of {length} bytes exceeds cap {MAX_TEXT_BYTES}"
        )
    if offset + length > len(data):
        raise WireError("truncated text field")
    try:
        value = data[offset:offset + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"text field is not valid UTF-8: {exc}") from exc
    return value, offset + length


# ------------------------------------------------------------ per-type codecs

Encoder = Callable[[Message, bytearray], None]
Decoder = Callable[[bytes, int], Tuple[Message, int]]

_SINGLE_ID_TYPES: List[Type[Message]] = [
    IdMessage,
    EchoMessage,
    ReadyMessage,
]
_SINGLE_VALUE_TYPES: List[Type[Message]] = [
    InitialMessage,
    EchoValueMessage,
    ReadyValueMessage,
    PhaseValueMessage,
    KingMessage,
]


def _encode_single_id(message, out: bytearray) -> None:
    write_varint(message.id, out)


def _encode_single_value(message, out: bytearray) -> None:
    _write_signed(message.value, out)


def _encode_ranks(message: RanksMessage, out: bytearray) -> None:
    write_varint(len(message.entries), out)
    for identifier, rank in message.entries:
        write_varint(identifier, out)
        _write_rank(rank, out)


def _encode_multiecho(message: MultiEchoMessage, out: bytearray) -> None:
    write_varint(len(message.ids), out)
    for identifier in message.ids:
        write_varint(identifier, out)


def _encode_value(message: ValueMessage, out: bytearray) -> None:
    _write_rank(message.value, out)


def _encode_claim(message: ClaimMessage, out: bytearray) -> None:
    write_varint(message.id, out)
    write_varint(message.lo, out)
    write_varint(message.hi, out)


def _encode_relay(message: RelayMessage, out: bytearray) -> None:
    write_varint(len(message.entries), out)
    for path, value in message.entries:
        write_varint(len(path), out)
        for hop in path:
            write_varint(hop, out)
        _write_signed(value, out)


def _decode_ranks(data: bytes, offset: int):
    count, offset = read_varint(data, offset)
    entries = []
    for _ in range(count):
        identifier, offset = read_varint(data, offset)
        rank, offset = _read_rank(data, offset)
        entries.append((identifier, rank))
    return RanksMessage(entries=tuple(entries)), offset


def _decode_multiecho(data: bytes, offset: int):
    count, offset = read_varint(data, offset)
    ids = []
    for _ in range(count):
        identifier, offset = read_varint(data, offset)
        ids.append(identifier)
    return MultiEchoMessage(ids=tuple(ids)), offset


def _decode_value(data: bytes, offset: int):
    rank, offset = _read_rank(data, offset)
    return ValueMessage(rank), offset


def _decode_claim(data: bytes, offset: int):
    identifier, offset = read_varint(data, offset)
    lo, offset = read_varint(data, offset)
    hi, offset = read_varint(data, offset)
    return ClaimMessage(identifier, lo, hi), offset


def _decode_relay(data: bytes, offset: int):
    count, offset = read_varint(data, offset)
    entries = []
    for _ in range(count):
        length, offset = read_varint(data, offset)
        path = []
        for _ in range(length):
            hop, offset = read_varint(data, offset)
            path.append(hop)
        value, offset = _read_signed(data, offset)
        entries.append((tuple(path), value))
    return RelayMessage(entries=tuple(entries)), offset


def _encode_envelope(message: EnvelopeMessage, out: bytearray) -> None:
    # Instance tag, then the payload's own full encoding (tag byte included)
    # — decoding is sequential, so no length prefix is needed.
    write_varint(message.tag, out)
    try:
        inner_tag, encoder, _ = _CODECS[type(message.payload)]
    except KeyError:
        raise WireError(
            f"no codec registered for envelope payload "
            f"{type(message.payload).__name__}"
        )
    out.append(inner_tag)
    encoder(message.payload, out)


#: Maximum envelope-in-envelope nesting the decoder accepts. Honest runs
#: nest at most a handful of multiplexer layers; a crafted byte stream of
#: back-to-back envelope tags would otherwise recurse once per byte and
#: escape as ``RecursionError`` instead of a typed :class:`WireError`.
MAX_ENVELOPE_DEPTH = 32

_envelope_depth = 0


def _decode_envelope(data: bytes, offset: int):
    global _envelope_depth
    if _envelope_depth >= MAX_ENVELOPE_DEPTH:
        raise WireError(f"envelope nesting deeper than {MAX_ENVELOPE_DEPTH}")
    tag, offset = read_varint(data, offset)
    if offset >= len(data):
        raise WireError("truncated envelope payload")
    inner_tag = data[offset]
    try:
        _cls, decoder = _BY_TAG[inner_tag]
    except KeyError:
        raise WireError(f"unknown wire tag {inner_tag} inside envelope")
    _envelope_depth += 1
    try:
        payload, offset = decoder(data, offset + 1)
    finally:
        _envelope_depth -= 1
    return EnvelopeMessage(tag=tag, payload=payload), offset


# ------------------------------------------------- service-session frames
#
# Tags 22+ carry the renaming-session protocol of `repro-renaming serve`
# (:mod:`repro.service`). They ride the same codec so the frame layer has
# exactly one payload format — but they are control-plane traffic and never
# appear in simulated protocol rounds.


def _encode_open_session(message: OpenSessionMessage, out: bytearray) -> None:
    _write_text(message.algorithm, out)
    write_varint(message.t, out)
    _write_text(message.attack, out)
    write_varint(message.seed, out)
    _write_text(message.session_id, out)


def _decode_open_session(data: bytes, offset: int):
    algorithm, offset = _read_text(data, offset)
    t, offset = read_varint(data, offset)
    attack, offset = _read_text(data, offset)
    seed, offset = read_varint(data, offset)
    session_id, offset = _read_text(data, offset)
    return (
        OpenSessionMessage(
            algorithm=algorithm, t=t, attack=attack, seed=seed,
            session_id=session_id,
        ),
        offset,
    )


def _encode_register_ids(message: RegisterIdsMessage, out: bytearray) -> None:
    write_varint(len(message.ids), out)
    for identifier in message.ids:
        write_varint(identifier, out)


def _decode_register_ids(data: bytes, offset: int):
    count, offset = read_varint(data, offset)
    ids = []
    for _ in range(count):
        identifier, offset = read_varint(data, offset)
        ids.append(identifier)
    return RegisterIdsMessage(ids=tuple(ids)), offset


def _encode_close_session(message: CloseSessionMessage, out: bytearray) -> None:
    pass  # no fields — the tag byte is the whole message


def _decode_close_session(data: bytes, offset: int):
    return CloseSessionMessage(), offset


def _encode_welcome(message: SessionWelcomeMessage, out: bytearray) -> None:
    write_varint(message.session_id, out)
    write_varint(message.max_ids, out)
    write_varint(message.deadline_ms, out)


def _decode_welcome(data: bytes, offset: int):
    session_id, offset = read_varint(data, offset)
    max_ids, offset = read_varint(data, offset)
    deadline_ms, offset = read_varint(data, offset)
    return (
        SessionWelcomeMessage(
            session_id=session_id, max_ids=max_ids, deadline_ms=deadline_ms
        ),
        offset,
    )


def _encode_busy(message: ServerBusyMessage, out: bytearray) -> None:
    write_varint(message.active, out)
    write_varint(message.limit, out)


def _decode_busy(data: bytes, offset: int):
    active, offset = read_varint(data, offset)
    limit, offset = read_varint(data, offset)
    return ServerBusyMessage(active=active, limit=limit), offset


def _encode_names(message: NamesAssignedMessage, out: bytearray) -> None:
    write_varint(len(message.entries), out)
    for original, name in message.entries:
        write_varint(original, out)
        write_varint(name, out)
    _write_text(message.algorithm, out)
    write_varint(message.rounds, out)


def _decode_names(data: bytes, offset: int):
    count, offset = read_varint(data, offset)
    entries = []
    for _ in range(count):
        original, offset = read_varint(data, offset)
        name, offset = read_varint(data, offset)
        entries.append((original, name))
    algorithm, offset = _read_text(data, offset)
    rounds, offset = read_varint(data, offset)
    return (
        NamesAssignedMessage(
            entries=tuple(entries), algorithm=algorithm, rounds=rounds
        ),
        offset,
    )


def _encode_text_tuple(values: Tuple[str, ...], out: bytearray) -> None:
    write_varint(len(values), out)
    for value in values:
        _write_text(value, out)


def _decode_text_tuple(data: bytes, offset: int) -> Tuple[Tuple[str, ...], int]:
    count, offset = read_varint(data, offset)
    values = []
    for _ in range(count):
        value, offset = _read_text(data, offset)
        values.append(value)
    return tuple(values), offset


def _encode_certificate(message: CertificateMessage, out: bytearray) -> None:
    write_varint(message.namespace, out)
    out.append(1 if message.ok else 0)
    _encode_text_tuple(message.checked, out)
    _encode_text_tuple(message.violations, out)


def _decode_certificate(data: bytes, offset: int):
    namespace, offset = read_varint(data, offset)
    if offset >= len(data):
        raise WireError("truncated certificate verdict")
    ok = bool(data[offset])
    offset += 1
    checked, offset = _decode_text_tuple(data, offset)
    violations, offset = _decode_text_tuple(data, offset)
    return (
        CertificateMessage(
            namespace=namespace, ok=ok, checked=checked, violations=violations
        ),
        offset,
    )


def _encode_session_error(message: SessionErrorMessage, out: bytearray) -> None:
    _write_text(message.code, out)
    _write_text(message.detail, out)
    _write_signed(message.trace_pointer, out)


def _decode_session_error(data: bytes, offset: int):
    code, offset = _read_text(data, offset)
    detail, offset = _read_text(data, offset)
    trace_pointer, offset = _read_signed(data, offset)
    return (
        SessionErrorMessage(
            code=code, detail=detail, trace_pointer=trace_pointer
        ),
        offset,
    )


def _encode_query_request(message: QueryRequestMessage, out: bytearray) -> None:
    _write_text(message.session_id, out)


def _decode_query_request(data: bytes, offset: int):
    session_id, offset = _read_text(data, offset)
    return QueryRequestMessage(session_id=session_id), offset


def _encode_query_response(message: QueryResponseMessage, out: bytearray) -> None:
    _write_text(message.session_id, out)
    _write_text(message.state, out)


def _decode_query_response(data: bytes, offset: int):
    session_id, offset = _read_text(data, offset)
    state, offset = _read_text(data, offset)
    return QueryResponseMessage(session_id=session_id, state=state), offset


def _single_id_decoder(cls: Type[Message]) -> Decoder:
    def decode(data: bytes, offset: int):
        identifier, offset = read_varint(data, offset)
        return cls(identifier), offset

    return decode


def _single_value_decoder(cls: Type[Message]) -> Decoder:
    def decode(data: bytes, offset: int):
        value, offset = _read_signed(data, offset)
        return cls(value), offset

    return decode


_CODECS: Dict[Type[Message], Tuple[int, Encoder, Decoder]] = {}


def _register(cls: Type[Message], tag: int, encoder: Encoder, decoder: Decoder) -> None:
    if any(existing_tag == tag for existing_tag, _, _ in _CODECS.values()):
        raise WireError(f"duplicate wire tag {tag}")
    _CODECS[cls] = (tag, encoder, decoder)


for _index, _cls in enumerate(_SINGLE_ID_TYPES):
    _register(_cls, _index, _encode_single_id, _single_id_decoder(_cls))
for _index, _cls in enumerate(_SINGLE_VALUE_TYPES, start=len(_SINGLE_ID_TYPES)):
    _register(_cls, _index, _encode_single_value, _single_value_decoder(_cls))
_register(RanksMessage, 16, _encode_ranks, _decode_ranks)
_register(MultiEchoMessage, 17, _encode_multiecho, _decode_multiecho)
_register(ValueMessage, 18, _encode_value, _decode_value)
_register(ClaimMessage, 19, _encode_claim, _decode_claim)
_register(RelayMessage, 20, _encode_relay, _decode_relay)
_register(EnvelopeMessage, 21, _encode_envelope, _decode_envelope)
_register(OpenSessionMessage, 22, _encode_open_session, _decode_open_session)
_register(RegisterIdsMessage, 23, _encode_register_ids, _decode_register_ids)
_register(CloseSessionMessage, 24, _encode_close_session, _decode_close_session)
_register(SessionWelcomeMessage, 25, _encode_welcome, _decode_welcome)
_register(ServerBusyMessage, 26, _encode_busy, _decode_busy)
_register(NamesAssignedMessage, 27, _encode_names, _decode_names)
_register(CertificateMessage, 28, _encode_certificate, _decode_certificate)
_register(SessionErrorMessage, 29, _encode_session_error, _decode_session_error)
_register(QueryRequestMessage, 30, _encode_query_request, _decode_query_request)
_register(QueryResponseMessage, 31, _encode_query_response, _decode_query_response)

_BY_TAG: Dict[int, Tuple[Type[Message], Decoder]] = {
    tag: (cls, decoder) for cls, (tag, _, decoder) in _CODECS.items()
}


# ------------------------------------------------------------------ public


def encode_message(message: Message) -> bytes:
    """Serialise any registered message to bytes."""
    try:
        tag, encoder, _ = _CODECS[type(message)]
    except KeyError:
        raise WireError(f"no codec registered for {type(message).__name__}")
    out = bytearray([tag])
    encoder(message, out)
    return bytes(out)


def decode_message(data: bytes) -> Message:
    """Deserialise one message; raises :class:`WireError` on any garbage.

    *Any* garbage: per-type decoders and message constructors may reject a
    crafted buffer with their own ``ValueError``/``TypeError``/etc. — those
    are wrapped here so a caller only ever has one exception type to catch
    for a malformed byte stream.
    """
    if not data:
        raise WireError("empty buffer")
    tag = data[0]
    try:
        _cls, decoder = _BY_TAG[tag]
    except KeyError:
        raise WireError(f"unknown wire tag {tag}") from None
    try:
        message, offset = decoder(data, 1)
    except WireError:
        raise
    except (
        ValueError,
        TypeError,
        KeyError,
        IndexError,
        OverflowError,
        RecursionError,
    ) as exc:
        raise WireError(
            f"malformed {_cls.__name__} encoding: {type(exc).__name__}: {exc}"
        ) from exc
    if offset != len(data):
        raise WireError(f"{len(data) - offset} trailing bytes")
    return message


def encoded_bits(message: Message) -> int:
    """Actual wire size of a message, in bits."""
    return 8 * len(encode_message(message))


def wire_types() -> List[Type[Message]]:
    """All message classes the codec covers."""
    return sorted(_CODECS, key=lambda cls: cls.__name__)
