"""Terminal-friendly charts for experiment outputs.

The paper has no figures (it is a theory paper), but several of its claims
are inherently *curves* — spread vs. round (Lemma IV.8's geometric
contraction), order-violation rate vs. N (Theorem VI.3's regime crossover).
These renderers draw them as ASCII so the benchmark harness can put the
figure next to the table, in the same text artifact, with no plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence, Union

Number = Union[int, float]

#: Glyph used for bar charts.
BAR = "█"
HALF_BAR = "▌"


def bar_chart(
    data: Mapping[object, Number],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one row per key, magnitude-scaled bars.

    Keys render in insertion order; values must be non-negative.
    """
    if not data:
        raise ValueError("cannot chart an empty mapping")
    if any(value < 0 for value in data.values()):
        raise ValueError("bar_chart values must be non-negative")
    peak = max(data.values()) or 1
    label_width = max(len(str(key)) for key in data)
    lines = []
    for key, value in data.items():
        filled = value / peak * width
        bar = BAR * int(filled)
        if filled - int(filled) >= 0.5:
            bar += HALF_BAR
        lines.append(
            f"{str(key):>{label_width}} | {bar} {value:g}{unit}"
        )
    return "\n".join(lines)


def log_curve(
    series: Mapping[object, Number],
    width: int = 40,
    floor: Optional[float] = None,
) -> str:
    """Log-scale decay curve: one row per x, bar length ∝ log of the value.

    Made for geometric-contraction data (spread per round): a straight
    linear staircase in this rendering *is* the claimed geometric decay.
    Zero values render as ``0 (exact)``. ``floor`` pins the log scale's
    bottom (defaults to the smallest positive value).
    """
    if not series:
        raise ValueError("cannot chart an empty series")
    positive = [float(v) for v in series.values() if v > 0]
    if not positive:
        return "\n".join(f"{key}: 0 (exact)" for key in series)
    low = math.log(min(positive) if floor is None else floor)
    high = math.log(max(positive))
    span = (high - low) or 1.0
    label_width = max(len(str(key)) for key in series)
    lines = []
    for key, value in series.items():
        if value <= 0:
            lines.append(f"{str(key):>{label_width}} | 0 (exact)")
            continue
        filled = int((math.log(float(value)) - low) / span * width) + 1
        lines.append(
            f"{str(key):>{label_width}} | {BAR * filled} {float(value):.3e}"
        )
    return "\n".join(lines)


def step_curve(
    series: Mapping[object, Number],
    width: int = 40,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    marker: str = "o",
) -> str:
    """Linear-scale scatter rows: one row per x, marker at the scaled value.

    Made for crossover data (violation rate vs. N): the jump is visible as
    the marker snapping from one edge to the other.
    """
    if not series:
        raise ValueError("cannot chart an empty series")
    values = [float(v) for v in series.values()]
    low = min(values) if lo is None else lo
    high = max(values) if hi is None else hi
    span = (high - low) or 1.0
    label_width = max(len(str(key)) for key in series)
    lines = []
    for key, value in series.items():
        position = int((float(value) - low) / span * (width - 1))
        row = [" "] * width
        row[max(0, min(width - 1, position))] = marker
        lines.append(f"{str(key):>{label_width}} |{''.join(row)}| {float(value):g}")
    return "\n".join(lines)


def decay_ratio(series: Sequence[Number]) -> Sequence[float]:
    """Per-step contraction ratios of a decreasing series (for assertions)."""
    ratios = []
    for previous, current in zip(series, series[1:]):
        if current == 0:
            ratios.append(math.inf)
        else:
            ratios.append(float(previous) / float(current))
    return ratios
