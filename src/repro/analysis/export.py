"""CSV export of experiment sweeps.

The benchmark harness prints ASCII tables; downstream users who want to
plot or post-process sweep results get a stable CSV schema instead. One row
per run, flat columns, loadable by pandas/R/spreadsheets without adapters.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Iterable, List, Union

from .executor import ExperimentSummary
from .experiments import ExperimentRecord

#: Row types the exporter accepts: the slim transferable summary (what
#: ``run_sweep`` returns) or the full in-process record — the schema reads
#: only the fields the two share.
RecordLike = Union[ExperimentRecord, ExperimentSummary]

#: Column order of the CSV schema (stable; append-only by policy).
CSV_FIELDS: List[str] = [
    "algorithm",
    "n",
    "t",
    "attack",
    "seed",
    "rounds",
    "correct_messages",
    "correct_bits",
    "peak_message_bits",
    "max_name",
    "validity",
    "termination",
    "uniqueness",
    "order_preservation",
    "violations",
]


def record_row(record: RecordLike) -> List[object]:
    """Flatten one experiment record into the CSV schema."""
    report = record.report
    return [
        record.algorithm,
        record.n,
        record.t,
        record.attack,
        record.seed,
        record.rounds,
        record.correct_messages,
        record.correct_bits,
        record.peak_message_bits,
        record.max_name,
        int(report.validity),
        int(report.termination),
        int(report.uniqueness),
        int(report.order_preservation),
        "; ".join(report.violations),
    ]


def export_csv(
    records: Iterable[RecordLike], path: Union[str, Path]
) -> Path:
    """Write records to ``path`` as CSV; returns the path written.

    The write is atomic (temp file in the target directory, fsync, then
    ``os.replace`` — the same discipline as the result cache and the run
    journal): a killed export leaves either the previous file or the
    complete new one, never a torn CSV that a downstream plot would
    silently truncate.

    ``records`` is consumed lazily, one row at a time, straight into the
    temp file — exporting a streamed fabric sweep holds O(1) rows in
    memory no matter how many cells the grid has.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_FIELDS)
        for record in records:
            writer.writerow(record_row(record))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path
