"""The coordinator half of the sweep fabric: seed, police, stream.

A :class:`Coordinator` owns the *run*, never the execution: it expands a
grid into fingerprinted cells, seeds them into a
:class:`~repro.analysis.store.ResultStore`, and then consumes terminal
records **in cell order** as they land — whoever produced them. Execution
comes from :class:`~repro.analysis.worker.Worker` loops, in one of three
arrangements:

* ``workers=1`` (default): one in-process worker runs the store dry before
  streaming — byte-for-byte the single-host behavior, no subprocesses.
* ``workers=N``: the coordinator spawns ``N`` ``repro-renaming worker``
  subprocesses against the store and streams while they execute, respawning
  any that die before the store is complete.
* ``coordinator_only=True``: the coordinator seeds and streams but spawns
  nothing — workers are started elsewhere (other shells, other machines
  with the store on shared storage) and the coordinator just waits for
  their results.

While streaming, the coordinator *polices* the fabric: expired leases are
reclaimed (a dead worker costs one lease window, not the run), the store's
event log is drained for accounting (retries, reclaims), and — when a
:class:`~repro.analysis.journal.RunJournal` is attached — claim/reclaim
events are mirrored into the journal as ``leased``/``reclaimed`` records so
``runs doctor`` sees fabric runs too.

:meth:`Coordinator.stream` is a generator and holds **O(1)** row state: one
decoded row is yielded at a time and nothing is retained, so aggregating a
50k-cell sweep needs memory for the cell *list*, not the result set.
:meth:`Coordinator.run` is the convenience wrapper that collects the rows
into the ordered list the legacy executor returns.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Set

from ..sim.errors import StoreError
from .executor import ResultCache, logger
from .journal import RunJournal
from .store import DEFAULT_LEASE_S, ResultStore, open_store
from .supervisor import CellBudget
from .worker import RUNNERS, Worker

__all__ = ["Coordinator", "CoordinatorStats"]


@dataclass
class CoordinatorStats:
    """Accounting for one :meth:`Coordinator.run` / fully-drained stream."""

    cells: int = 0
    #: Cells actually executed by workers this run (neither restored from
    #: the store nor prefilled from the result cache).
    executed: int = 0
    from_cache: int = 0
    #: Cells already terminal in the store when we seeded (resume).
    restored: int = 0
    failed: int = 0
    retried: int = 0
    budget_kills: int = 0
    #: Expired leases released by coordinator policing.
    reclaimed: int = 0
    #: Dead subprocess workers replaced mid-run.
    worker_restarts: int = 0
    elapsed_s: float = 0.0


class Coordinator:
    """Seed a cell grid into a store and stream the results back in order.

    ``store`` is a store URL or a :class:`ResultStore`; ``cache`` a
    directory / :class:`~repro.analysis.executor.ResultCache` used both to
    prefill the store with already-memoised sweep cells and to memoise
    freshly finished ones. ``budget``/``retries``/``run_hook`` carry the
    executor's knobs through to the workers this coordinator runs or
    spawns (externally started workers bring their own).
    """

    def __init__(
        self,
        store,
        *,
        workers: int = 1,
        cache=None,
        run_hook=None,
        budget: Optional[CellBudget] = None,
        retries: int = 1,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = 0.1,
        journal: Optional[RunJournal] = None,
        coordinator_only: bool = False,
    ) -> None:
        self.store: ResultStore = open_store(store)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.run_hook = run_hook
        self.budget = budget
        self.retries = retries
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.journal = journal
        self.coordinator_only = coordinator_only
        self.stats = CoordinatorStats()
        self._event_cursor = None

    # ------------------------------------------------------------------ API

    def run(
        self, kind: str, cells: List[dict], *, fingerprint: str,
        run_id: str = "fabric", config: Optional[dict] = None,
    ) -> list:
        """Drain the whole grid and return the ordered row list."""
        return list(
            self.stream(
                kind, cells, fingerprint=fingerprint, run_id=run_id,
                config=config,
            )
        )

    def stream(
        self, kind: str, cells: List[dict], *, fingerprint: str,
        run_id: str = "fabric", config: Optional[dict] = None,
    ) -> Iterator[object]:
        """Yield one decoded row per cell, in cell order, as results land.

        Seeds the store (idempotent — re-running against a part-finished
        store is a resume), prefills memoised sweep cells from the result
        cache, arranges execution per the constructor's knobs, and then
        streams: each ``next()`` blocks until the next cell in order has a
        terminal record, polices the fabric while waiting, and yields the
        decoded row without retaining it.
        """
        start = time.perf_counter()
        try:
            runner = RUNNERS[kind]
        except KeyError:
            raise StoreError(
                f"unknown run kind {kind!r}; known: {sorted(RUNNERS)}"
            ) from None
        self.stats = CoordinatorStats(cells=len(cells))
        self._event_cursor = None
        self.store.seed(
            kind=kind, run_id=run_id, fingerprint=fingerprint, cells=cells,
            config=config,
        )

        restored: Set[int] = set()
        for index in range(len(cells)):
            if self.store.terminal(index) is not None:
                restored.add(index)
        self.stats.restored = len(restored)

        prefilled: Set[int] = set()
        if self.cache is not None and kind == "sweep":
            for index in range(len(cells)):
                if index in restored:
                    continue
                task = runner.decode(cells[index])
                summary = self.cache.load(task)
                if summary is not None and self.store.write_terminal(
                    index, "finished", summary.to_dict()
                ):
                    prefilled.add(index)
            self.stats.from_cache = len(prefilled)

        procs: List[subprocess.Popen] = []
        try:
            if self.coordinator_only or self.store.complete:
                pass
            elif self.workers == 1:
                # In-process: run the store dry first, then stream — the
                # single-host arrangement, deterministic and subprocess-free.
                Worker(
                    self.store,
                    worker_id=f"{run_id}-inline",
                    budget=self.budget,
                    retries=self.retries,
                    lease_s=self.lease_s,
                    run_hook=self.run_hook,
                ).run()
            else:
                procs = [
                    self._spawn_worker(run_id, i) for i in range(self.workers)
                ]

            for index in range(len(cells)):
                record = self.store.terminal(index)
                while record is None:
                    self._police(procs)
                    time.sleep(self.poll_s)
                    record = self.store.terminal(index)
                yield self._decode_row(
                    runner, index, record,
                    restored=index in restored,
                    prefilled=index in prefilled,
                )
            self._police(procs)
        finally:
            self._stop_workers(procs)
            self.stats.executed = (
                len(cells) - len(restored) - len(prefilled)
            )
            self.stats.elapsed_s = time.perf_counter() - start

    # ------------------------------------------------------------- internals

    def _spawn_worker(self, run_id: str, index: int) -> subprocess.Popen:
        cmd = [
            sys.executable, "-m", "repro.cli", "worker",
            "--store", self.store.url,
            "--worker-id", f"{run_id}-w{index}",
            "--wait-for-store", "60",
            "--lease", str(self.lease_s),
        ]
        if self.budget is not None:
            if self.budget.wall_s is not None:
                cmd += ["--cell-wall", str(self.budget.wall_s)]
            if self.budget.rss_mb is not None:
                cmd += ["--cell-rss", str(self.budget.rss_mb)]
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
        return subprocess.Popen(cmd, env=env)

    def _police(self, procs: List[subprocess.Popen]) -> None:
        """One policing pass: reclaim leases, drain events, respawn dead."""
        self.stats.reclaimed += len(self.store.reclaim_expired())
        events, self._event_cursor = self.store.events_since(
            self._event_cursor
        )
        for event in events:
            name = event.get("event")
            if name == "retried":
                self.stats.retried += 1
            if self.journal is not None and name in ("claimed", "reclaimed"):
                record = "leased" if name == "claimed" else "reclaimed"
                self.journal.append(
                    record, cell=event.get("cell"),
                    worker=event.get("worker"),
                )
        if not procs or self.store.complete:
            return
        for i, proc in enumerate(procs):
            if proc.poll() is not None:
                logger.warning(
                    "fabric worker %d exited (code %s) with the store "
                    "incomplete; respawning", i, proc.returncode,
                )
                header = self.store.header() or {}
                procs[i] = self._spawn_worker(
                    f"{header.get('run_id', 'fabric')}-r{self.stats.worker_restarts}",
                    i,
                )
                self.stats.worker_restarts += 1

    def _decode_row(
        self, runner, index: int, record: dict, *, restored: bool,
        prefilled: bool,
    ):
        task = runner.decode(self.store.task(index))
        payload = record.get("payload")
        if payload is not None:
            row = runner.decode_row(task, payload)
        else:
            row = runner.lease_row(
                task, record.get("reason") or "lease expired"
            )
        if not restored:
            if record["state"] != "finished":
                self.stats.failed += 1
                if record["state"] == "quarantined" and record.get(
                    "reason"
                ) in ("wall-budget", "rss-budget"):
                    self.stats.budget_kills += 1
            elif getattr(row, "failed", False):
                self.stats.failed += 1
            elif (
                runner.kind == "sweep"
                and self.cache is not None
                and not prefilled
            ):
                self.cache.store(task, row)
        if prefilled and hasattr(row, "cached"):
            row.cached = True
        return row

    @staticmethod
    def _stop_workers(procs: List[subprocess.Popen]) -> None:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
