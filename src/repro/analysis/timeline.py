"""Round-by-round run inspector.

Renders a traced run as an ASCII timeline: per-round traffic, the evolution
of each correct process's protocol state (timely/accepted sizes, rank
spread, freeze/decision events). Debugging an attack or a suspected
protocol bug almost always starts here — ``repro-renaming inspect`` exposes
it from the shell.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.runner import RunResult
from .convergence import spread_series
from .tables import format_table


def _spread_by_round(result: RunResult) -> Dict[int, float]:
    """Max cross-process spread of correct ranks for correct ids per round."""
    return {
        round_no: float(spread)
        for round_no, spread in spread_series(result).items()
    }


def _events_by_round(result: RunResult, event: str) -> Dict[int, int]:
    if result.trace is None:
        return {}
    counts: Dict[int, int] = {}
    for record in result.trace.select(event=event):
        if record.process in result.correct:
            counts[record.round_no] = counts.get(record.round_no, 0) + 1
    return counts


def render_timeline(result: RunResult) -> str:
    """ASCII timeline of a traced run.

    Columns: round number, correct/Byzantine message counts, correct bits,
    rank spread (where the protocol traces ranks), and notable events
    (decisions, early freezes, settlements).
    """
    spreads = _spread_by_round(result)
    decided = _events_by_round(result, "decided")
    frozen = _events_by_round(result, "early_frozen")
    settled = _events_by_round(result, "settled")

    rows: List[List[object]] = []
    for record in result.metrics.rounds:
        round_no = record.round_no
        notes = []
        if frozen.get(round_no):
            notes.append(f"{frozen[round_no]} froze early")
        if settled.get(round_no):
            notes.append(f"{settled[round_no]} settled")
        if decided.get(round_no):
            notes.append(f"{decided[round_no]} decided")
        spread = spreads.get(round_no)
        rows.append([
            round_no,
            record.correct_messages,
            record.byzantine_messages,
            record.correct_bits,
            f"{spread:.4f}" if spread is not None else "-",
            ", ".join(notes) if notes else "",
        ])

    header = (
        f"run: n={result.n} t={result.t} "
        f"byzantine slots={list(result.byzantine)}\n"
        f"correct ids: {sorted(result.ids[i] for i in result.correct)}\n"
    )
    table = format_table(
        ["round", "correct msgs", "byz msgs", "correct bits", "rank spread",
         "events"],
        rows,
    )
    names = result.outputs_by_id()
    footer_rows = [[original, names[original]] for original in sorted(names)]
    footer = format_table(["original id", "output"], footer_rows)
    return f"{header}\n{table}\n\n{footer}"


def summarize_views(result: RunResult) -> Optional[str]:
    """Compact view-divergence report: which accepted sets exist and who
    holds each. Returns None when the run traced no accepted sets."""
    if result.trace is None:
        return None
    views: Dict[tuple, List[int]] = {}
    for event in result.trace.select(event="accepted"):
        if event.process in result.correct:
            views.setdefault(tuple(sorted(event.detail)), []).append(event.process)
    if not views:
        return None
    rows = [
        [", ".join(map(str, holders)), len(view), ", ".join(map(str, view))]
        for view, holders in sorted(views.items(), key=lambda kv: kv[1])
    ]
    return format_table(["held by processes", "size", "accepted ids"], rows)
