"""Pluggable result stores: the shared substrate of the sweep fabric.

The executor, journal and supervisor all assume one host and one process
tree. A :class:`ResultStore` removes that assumption: it is the *only*
thing a coordinator and its workers share. The coordinator seeds the store
with the fingerprinted cell list; any number of workers — in-process
threads of the coordinator, subprocesses on the same box, or processes on
another machine with the store on shared storage — pull cells through
**leases** and push back checksummed terminal records. The store owns:

* **The header** — run kind (``sweep``/``chaos``), run id, the config
  fingerprint (SHA-256 over the expanded cell list, the same function the
  journal uses) and the full task list. :meth:`ResultStore.seed` is
  idempotent: re-seeding an existing store verifies the fingerprint and
  becomes a resume; a mismatch raises
  :class:`~repro.sim.errors.StoreError` instead of splicing two runs.
* **Leases with heartbeat expiry.** :meth:`ResultStore.claim` hands out
  the lowest-indexed open cell together with a fresh random token and an
  expiry timestamp; :meth:`ResultStore.renew` pushes the expiry forward
  while the cell executes. A worker that dies stops renewing; once the
  lease expires any peer's ``claim`` (or the coordinator's
  :meth:`ResultStore.reclaim_expired`) takes the cell over with the
  attempt counter bumped. A cell whose lease expires ``max_attempts``
  times is recorded as a terminal failure — a poisoned cell must not
  wedge the fabric. Renewing or finishing through a lost lease raises
  :class:`~repro.sim.errors.LeaseLost`.
* **Terminal records** — ``finished`` / ``failed`` / ``quarantined``
  payloads in checksummed envelopes (``{"schema", "checksum", "body"}``,
  SHA-256 over canonical JSON), written with the journal's
  fsync-before-act discipline. The first durable terminal record for a
  cell wins; a late result from a taken-over worker is refused and logged
  as a ``double-execution`` event, never silently merged.
* **Memo entries** — the content-addressed summary cache.
  :class:`~repro.analysis.executor.ResultCache` delegates its storage
  here (``LocalDirStore`` with a flat memo root keeps the on-disk format
  byte-identical to the pre-fabric cache).
* **An event log** for ``runs doctor --store``: claims, reclaims, claim
  races, double executions and stale results, so the fabric's exactly-once
  discipline is assertable after the fact, not just hoped for.

Two backends ship: :class:`LocalDirStore` (one directory; leases are
``O_CREAT|O_EXCL`` files, terminals are atomic-replace JSON files — works
on any shared filesystem) and :class:`SqliteStore` (one stdlib sqlite3
database in WAL mode with ``BEGIN IMMEDIATE`` claim transactions — a
single file, safe for many processes on one host or one network
filesystem with real locking). :func:`open_store` maps store URLs
(``sqlite:PATH`` or a plain directory path) onto them.

Test hook: ``REPRO_STORE_CRASH_AFTER=<op>:<count>`` SIGKILLs the process
immediately after the ``count``-th *durable* store operation of kind
``op`` (``claim`` or ``finish``) performed by this process — the same
deterministic mid-flight-death pattern as the journal's
``REPRO_JOURNAL_CRASH_AFTER``, used by the lease-reclaim suite to kill a
worker while it holds a cell.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..sim.errors import LeaseLost, StoreError
from .journal import atomic_write_text

__all__ = [
    "Claim",
    "DEFAULT_LEASE_S",
    "DEFAULT_MAX_ATTEMPTS",
    "LocalDirStore",
    "ResultStore",
    "STORE_CRASH_HOOK_ENV",
    "SqliteStore",
    "open_store",
    "store_doctor",
]

#: Store layout version; bumped when envelope or lease formats change.
STORE_SCHEMA = 1

#: Default lease duration. Workers renew at a third of this, so a healthy
#: worker never comes close to expiry; a dead one is reclaimed within one
#: lease window.
DEFAULT_LEASE_S = 30.0

#: How many times a cell's lease may expire before the cell is recorded as
#: a terminal failure (the fabric's analogue of "budget kills are never
#: retried forever").
DEFAULT_MAX_ATTEMPTS = 3

#: Environment variable for the deterministic crash hook (tests/CI only).
STORE_CRASH_HOOK_ENV = "REPRO_STORE_CRASH_AFTER"

#: Terminal cell states (mirrors the journal's terminal record types).
TERMINAL_STATES = ("finished", "failed", "quarantined")


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(body: object) -> str:
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


def seal(body: dict, *, schema: int, body_key: str = "body") -> dict:
    """Wrap ``body`` in a checksummed envelope (the cache/terminal format)."""
    return {"schema": schema, "checksum": _checksum(body), body_key: body}


def unseal(payload: object, *, schema: int, body_key: str = "body") -> dict:
    """Verify an envelope and return its body.

    Raises ``ValueError`` naming the defect (stale schema, checksum
    mismatch, wrong shape) — callers decide whether that is a logged miss
    (memo entries, torn terminals) or an error.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"entry is {type(payload).__name__}, not an object"
        )
    found = payload.get("schema")
    if found != schema:
        raise ValueError(f"stale schema {found!r} (current {schema})")
    body = payload[body_key]
    if payload.get("checksum") != _checksum(body):
        raise ValueError("checksum mismatch (corrupt or tampered entry)")
    return body


@dataclass(frozen=True)
class Claim:
    """A worker's lease on one cell: execute it, renew it, finish it."""

    cell: int
    task: dict
    attempt: int
    worker: str
    token: str
    expires_at: float


def _parse_crash_hook() -> Optional[Tuple[str, int]]:
    spec = os.environ.get(STORE_CRASH_HOOK_ENV)
    if not spec:
        return None
    try:
        op, count = spec.split(":")
        return op, int(count)
    except ValueError:
        raise StoreError(
            f"bad {STORE_CRASH_HOOK_ENV}={spec!r} (expected '<op>:<count>')"
        ) from None


class ResultStore:
    """Backend interface; see the module docstring for the contract.

    Subclasses implement the storage primitives; the lease/terminal/claim
    *semantics* (attempt counting, exhaustion, first-terminal-wins,
    event taxonomy) are part of this interface's contract and are
    exercised identically for every backend by ``tests/test_store.py``.
    """

    #: A reconstructible address for this store (``sqlite:path`` or a
    #: directory path) — what the coordinator hands to subprocess workers.
    url: str = ""

    max_attempts: int = DEFAULT_MAX_ATTEMPTS

    def __init__(self) -> None:
        self._crash_hook = _parse_crash_hook()
        self._crash_counts: Dict[str, int] = {}

    # ----------------------------------------------------------- lifecycle

    def seed(
        self,
        *,
        kind: str,
        run_id: str,
        fingerprint: str,
        cells: List[dict],
        config: Optional[dict] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        """Publish the run into the store (idempotent).

        A fresh store records the header and the full task list. An
        already-seeded store verifies the fingerprint — matching means
        "resume: keep every terminal record", anything else raises
        :class:`~repro.sim.errors.StoreError`.
        """
        raise NotImplementedError

    def header(self) -> Optional[dict]:
        """The seeded run header, or ``None`` before :meth:`seed`."""
        raise NotImplementedError

    def wait_for_header(self, timeout_s: float, poll_s: float = 0.1) -> dict:
        """Block until the store is seeded (workers may start first)."""
        deadline = time.monotonic() + timeout_s
        while True:
            header = self.header()
            if header is not None:
                return header
            if time.monotonic() >= deadline:
                raise StoreError(
                    f"store {self.url or '?'} not seeded within "
                    f"{timeout_s:g}s — is the coordinator running?"
                )
            time.sleep(poll_s)

    def task(self, cell: int) -> dict:
        """The task dict seeded for ``cell``."""
        raise NotImplementedError

    @property
    def cells(self) -> int:
        header = self.header()
        return int(header["cells"]) if header else 0

    # -------------------------------------------------------------- leases

    def claim(
        self, worker: str, lease_s: float = DEFAULT_LEASE_S
    ) -> Optional[Claim]:
        """Lease the lowest-indexed open cell, or ``None`` if none is
        claimable right now (all cells terminal or under live leases).

        An *expired* lease is taken over here (attempt + 1, ``reclaimed``
        event); an expired lease already at ``max_attempts`` is converted
        to a terminal ``failed`` record instead (``exhausted`` event).
        """
        raise NotImplementedError

    def renew(self, claim: Claim, lease_s: float = DEFAULT_LEASE_S) -> Claim:
        """Push ``claim``'s expiry forward; raises
        :class:`~repro.sim.errors.LeaseLost` if the lease was taken over."""
        raise NotImplementedError

    # ----------------------------------------------------------- terminals

    def finish(self, claim: Claim, payload: dict) -> bool:
        """Record ``claim``'s cell as finished; first terminal wins.

        Returns ``True`` when this call wrote the terminal record,
        ``False`` when the cell already had one (recorded as a
        ``double-execution`` event — the caller's result is discarded).
        Raises :class:`~repro.sim.errors.LeaseLost` when the lease token
        is no longer ours (recorded as a ``stale-result`` event).
        """
        return self._terminal_from_claim(claim, "finished", payload, None)

    def fail(
        self, claim: Claim, payload: Optional[dict], *, reason: str = "crashed"
    ) -> bool:
        """Record a deterministic failure row (retry already exhausted)."""
        return self._terminal_from_claim(claim, "failed", payload, reason)

    def quarantine(
        self, claim: Claim, payload: Optional[dict], *, reason: str
    ) -> bool:
        """Record a budget kill / hang: triaged first by the doctor."""
        return self._terminal_from_claim(claim, "quarantined", payload, reason)

    def _terminal_from_claim(
        self, claim: Claim, state: str, payload: Optional[dict],
        reason: Optional[str],
    ) -> bool:
        raise NotImplementedError

    def write_terminal(
        self, cell: int, state: str, payload: Optional[dict],
        *, reason: Optional[str] = None, attempt: int = 0,
    ) -> bool:
        """Coordinator-side terminal write (cache prefill, exhaustion) —
        no lease involved. First terminal still wins."""
        raise NotImplementedError

    def terminal(self, cell: int) -> Optional[dict]:
        """``{"state", "reason", "payload", "attempt"}`` or ``None``.

        A present-but-corrupt terminal record (torn write on a backend
        without atomic replace, tampering) is dropped with a
        ``torn-result`` event and reported as ``None`` — the cell is
        simply re-executable, mirroring the cache's logged-miss policy.
        """
        raise NotImplementedError

    def reclaim_expired(self) -> List[int]:
        """Release every expired lease (coordinator policing); returns the
        reclaimed cell indices. Exhausted cells become terminal failures."""
        raise NotImplementedError

    def counts(self) -> Dict[str, int]:
        """Cell accounting: total/finished/failed/quarantined/leased/pending."""
        raise NotImplementedError

    @property
    def complete(self) -> bool:
        counts = self.counts()
        terminal = (
            counts["finished"] + counts["failed"] + counts["quarantined"]
        )
        return counts["cells"] > 0 and terminal >= counts["cells"]

    # ---------------------------------------------------------------- memo

    def load_memo(
        self, key: str, *, schema: int, body_key: str = "summary"
    ) -> Optional[dict]:
        """Verified memo body for ``key``; ``None`` when absent. Raises
        ``ValueError`` for a present-but-unusable entry (caller logs)."""
        raise NotImplementedError

    def store_memo(
        self, key: str, body: dict, *, schema: int, body_key: str = "summary"
    ) -> None:
        raise NotImplementedError

    # -------------------------------------------------------------- events

    def record_event(self, event: str, **data) -> None:
        raise NotImplementedError

    def events(self) -> List[dict]:
        raise NotImplementedError

    def events_since(self, cursor) -> Tuple[List[dict], object]:
        """Events appended after ``cursor`` (an opaque position from a
        previous call; ``None`` means from the start) plus the new cursor.
        The coordinator polls this instead of re-reading the whole log."""
        raise NotImplementedError

    # ----------------------------------------------------------- internals

    def _new_token(self) -> str:
        return uuid.uuid4().hex

    def _hook(self, op: str) -> None:
        """The deterministic SIGKILL test hook (see module docstring)."""
        if self._crash_hook is None:
            return
        hook_op, hook_count = self._crash_hook
        if op != hook_op:
            return
        count = self._crash_counts.get(op, 0) + 1
        self._crash_counts[op] = count
        if count >= hook_count:
            os.kill(os.getpid(), signal.SIGKILL)


# --------------------------------------------------------------------------
# Local-directory backend


class LocalDirStore(ResultStore):
    """One directory; every primitive is a POSIX filesystem operation.

    Layout::

        root/
          header.json         sealed run header (atomic replace)
          tasks.json          sealed task list (written once at seed)
          leases/<cell>.json  live leases (O_CREAT|O_EXCL, fsync'd)
          terminal/<cell>.json  sealed terminal records (atomic replace)
          events.jsonl        append-only event log (fsync'd)
          <memo keys>.json    memo entries (``memo/`` by default)

    Lease acquisition uses ``O_CREAT|O_EXCL`` — the one atomic
    test-and-set POSIX gives us — so two workers racing for the same open
    cell produce exactly one lease (the loser records a ``claim-race``
    event and moves on). Takeover of an *expired* lease writes the new
    lease beside the old one and ``os.replace``\\ s it into place, then
    re-reads to confirm its token won; the unlucky loser of a takeover
    race discovers it at renew/finish time (token mismatch →
    :class:`~repro.sim.errors.LeaseLost`) and its result is refused —
    the first durable terminal record still wins.
    """

    def __init__(
        self, root: Union[str, Path], *, memo_subdir: str = "memo"
    ) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.url = str(self.root)
        self._memo_root = self.root / memo_subdir if memo_subdir else self.root
        self._leases = self.root / "leases"
        self._terminal = self.root / "terminal"
        self._events_path = self.root / "events.jsonl"
        self._header: Optional[dict] = None
        self._tasks: Optional[List[dict]] = None
        #: Claim scan cursor: cells below it were terminal last time we
        #: looked, so claims probe O(1) files instead of O(cells).
        self._cursor = 0

    # ----------------------------------------------------------- lifecycle

    def seed(
        self, *, kind, run_id, fingerprint, cells, config=None,
        max_attempts=DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        existing = self.header()
        if existing is not None:
            if existing.get("fingerprint") != fingerprint:
                raise StoreError(
                    f"store {self.url} holds run "
                    f"{existing.get('run_id')!r} with a different config "
                    f"fingerprint — refusing to mix two runs in one store"
                )
            return
        self._leases.mkdir(exist_ok=True)
        self._terminal.mkdir(exist_ok=True)
        header = {
            "schema": STORE_SCHEMA,
            "kind": kind,
            "run_id": run_id,
            "fingerprint": fingerprint,
            "cells": len(cells),
            "config": config,
            "max_attempts": max_attempts,
        }
        # Tasks first, header last: a header implies a complete task list.
        atomic_write_text(
            self.root / "tasks.json",
            json.dumps(seal({"tasks": cells}, schema=STORE_SCHEMA)),
        )
        atomic_write_text(
            self.root / "header.json",
            json.dumps(seal(header, schema=STORE_SCHEMA)),
        )
        self._header = header
        self._tasks = list(cells)
        self.max_attempts = max_attempts

    def header(self) -> Optional[dict]:
        if self._header is not None:
            return self._header
        path = self.root / "header.json"
        try:
            payload = json.loads(path.read_text())
        except OSError:
            return None
        except ValueError as exc:
            raise StoreError(f"corrupt store header {path}: {exc}") from None
        try:
            header = unseal(payload, schema=STORE_SCHEMA)
        except (ValueError, KeyError) as exc:
            raise StoreError(f"corrupt store header {path}: {exc}") from None
        self._header = header
        self.max_attempts = int(header.get("max_attempts", DEFAULT_MAX_ATTEMPTS))
        return header

    def task(self, cell: int) -> dict:
        if self._tasks is None:
            path = self.root / "tasks.json"
            try:
                payload = json.loads(path.read_text())
                self._tasks = unseal(payload, schema=STORE_SCHEMA)["tasks"]
            except (OSError, ValueError, KeyError) as exc:
                raise StoreError(f"unreadable task list {path}: {exc}") from None
        return self._tasks[cell]

    # -------------------------------------------------------------- leases

    def _lease_path(self, cell: int) -> Path:
        return self._leases / f"{cell}.json"

    def _read_lease(self, cell: int) -> Optional[dict]:
        try:
            return json.loads(self._lease_path(cell).read_text())
        except OSError:
            return None
        except ValueError:
            # A torn lease (non-atomic create killed mid-write) is as good
            # as expired: it can never be renewed or finished through.
            return {"cell": cell, "token": None, "attempt": 0, "expires_at": 0.0,
                    "worker": "?"}

    def _write_lease_excl(self, cell: int, body: dict) -> bool:
        path = self._lease_path(cell)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(body))
            handle.flush()
            os.fsync(handle.fileno())
        return True

    def _takeover_lease(self, cell: int, body: dict) -> bool:
        """Replace an expired lease; True when our token ended up live."""
        takeover = self._lease_path(cell).with_name(
            f"{cell}.json.takeover-{body['token']}"
        )
        with open(takeover, "w") as handle:
            handle.write(json.dumps(body))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(takeover, self._lease_path(cell))
        current = self._read_lease(cell)
        return bool(current) and current.get("token") == body["token"]

    def claim(self, worker, lease_s=DEFAULT_LEASE_S):
        header = self.header()
        if header is None:
            return None
        n = int(header["cells"])
        now = time.time()
        order = list(range(self._cursor, n)) + list(range(0, self._cursor))
        for cell in order:
            if self.terminal(cell) is not None:
                if cell == self._cursor:
                    self._cursor = (cell + 1) % max(n, 1)
                continue
            lease = self._read_lease(cell)
            if lease is None:
                body = {
                    "cell": cell, "worker": worker, "attempt": 1,
                    "token": self._new_token(), "expires_at": now + lease_s,
                }
                if not self._write_lease_excl(cell, body):
                    self.record_event("claim-race", cell=cell, worker=worker)
                    continue
                claim = self._claim_from(cell, body)
                self.record_event("claimed", cell=cell, worker=worker,
                                  attempt=1)
                self._hook("claim")
                return claim
            if lease["expires_at"] > now:
                continue  # live lease held by a peer
            attempt = int(lease.get("attempt", 0))
            if attempt >= self.max_attempts:
                self._exhaust(cell, lease)
                continue
            body = {
                "cell": cell, "worker": worker, "attempt": attempt + 1,
                "token": self._new_token(), "expires_at": now + lease_s,
            }
            if not self._takeover_lease(cell, body):
                self.record_event("claim-race", cell=cell, worker=worker)
                continue
            self.record_event(
                "reclaimed", cell=cell, worker=worker,
                previous=lease.get("worker"), attempt=attempt + 1,
            )
            claim = self._claim_from(cell, body)
            self._hook("claim")
            return claim
        return None

    def _claim_from(self, cell: int, body: dict) -> Claim:
        return Claim(
            cell=cell, task=self.task(cell), attempt=body["attempt"],
            worker=body["worker"], token=body["token"],
            expires_at=body["expires_at"],
        )

    def _exhaust(self, cell: int, lease: dict) -> None:
        attempt = int(lease.get("attempt", 0))
        wrote = self.write_terminal(
            cell, "failed", None,
            reason=f"lease expired {attempt} time(s); attempts exhausted",
            attempt=attempt,
        )
        if wrote:
            self.record_event("exhausted", cell=cell, attempt=attempt)
        try:
            os.unlink(self._lease_path(cell))
        except OSError:
            pass

    def renew(self, claim, lease_s=DEFAULT_LEASE_S):
        lease = self._read_lease(claim.cell)
        if lease is None or lease.get("token") != claim.token:
            raise LeaseLost(
                f"lease on cell {claim.cell} no longer held by "
                f"{claim.worker!r} (taken over after expiry)"
            )
        body = dict(lease, expires_at=time.time() + lease_s)
        if not self._takeover_lease(claim.cell, body):
            raise LeaseLost(
                f"lease on cell {claim.cell} lost during renewal"
            )
        return Claim(
            cell=claim.cell, task=claim.task, attempt=claim.attempt,
            worker=claim.worker, token=claim.token,
            expires_at=body["expires_at"],
        )

    # ----------------------------------------------------------- terminals

    def _terminal_path(self, cell: int) -> Path:
        return self._terminal / f"{cell}.json"

    def terminal(self, cell: int) -> Optional[dict]:
        path = self._terminal_path(cell)
        try:
            payload = json.loads(path.read_text())
        except OSError:
            return None
        except ValueError:
            payload = None
        try:
            if payload is None:
                raise ValueError("unparseable JSON")
            return unseal(payload, schema=STORE_SCHEMA)
        except (ValueError, KeyError):
            self.record_event("torn-result", cell=cell)
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _terminal_from_claim(self, claim, state, payload, reason):
        lease = self._read_lease(claim.cell)
        if lease is None or lease.get("token") != claim.token:
            self.record_event(
                "stale-result", cell=claim.cell, worker=claim.worker,
                state=state,
            )
            raise LeaseLost(
                f"result for cell {claim.cell} refused: lease was taken "
                f"over (the cell will be / was re-executed elsewhere)"
            )
        wrote = self.write_terminal(
            claim.cell, state, payload, reason=reason, attempt=claim.attempt,
            worker=claim.worker,
        )
        try:
            os.unlink(self._lease_path(claim.cell))
        except OSError:
            pass
        if wrote:
            self._hook("finish")
        return wrote

    def write_terminal(
        self, cell, state, payload, *, reason=None, attempt=0, worker=None,
    ):
        if state not in TERMINAL_STATES:
            raise StoreError(f"unknown terminal state {state!r}")
        if self.terminal(cell) is not None:
            self.record_event(
                "double-execution", cell=cell, worker=worker, state=state
            )
            return False
        body = {
            "state": state, "reason": reason, "payload": payload,
            "attempt": attempt,
        }
        self._terminal.mkdir(exist_ok=True)
        atomic_write_text(
            self._terminal_path(cell),
            json.dumps(seal(body, schema=STORE_SCHEMA)),
        )
        self.record_event(state, cell=cell, worker=worker, attempt=attempt)
        return True

    def reclaim_expired(self):
        reclaimed: List[int] = []
        now = time.time()
        if not self._leases.is_dir():
            return reclaimed
        for path in sorted(self._leases.glob("*.json")):
            try:
                cell = int(path.stem)
            except ValueError:
                continue
            lease = self._read_lease(cell)
            if lease is None or lease["expires_at"] > now:
                continue
            if self.terminal(cell) is not None:
                # Orphaned lease on a terminal cell: just clean it up.
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            attempt = int(lease.get("attempt", 0))
            if attempt >= self.max_attempts:
                self._exhaust(cell, lease)
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            self.record_event(
                "reclaimed", cell=cell, worker=None,
                previous=lease.get("worker"), attempt=attempt,
            )
            reclaimed.append(cell)
        return reclaimed

    def counts(self):
        header = self.header()
        n = int(header["cells"]) if header else 0
        out = {"cells": n, "finished": 0, "failed": 0, "quarantined": 0,
               "leased": 0, "pending": 0}
        now = time.time()
        for cell in range(n):
            record = self.terminal(cell)
            if record is not None:
                out[record["state"]] += 1
                continue
            lease = self._read_lease(cell)
            if lease is not None and lease["expires_at"] > now:
                out["leased"] += 1
            else:
                out["pending"] += 1
        return out

    # ---------------------------------------------------------------- memo

    def _memo_path(self, key: str) -> Path:
        return self._memo_root / f"{key}.json"

    def load_memo(self, key, *, schema, body_key="summary"):
        try:
            text = self._memo_path(key).read_text()
        except OSError:
            return None  # plain miss: no entry
        payload = json.loads(text)  # ValueError propagates: logged by caller
        return unseal(payload, schema=schema, body_key=body_key)

    def store_memo(self, key, body, *, schema, body_key="summary"):
        self._memo_root.mkdir(parents=True, exist_ok=True)
        # Field order matches the pre-fabric ResultCache files exactly, so
        # existing caches stay byte-identical and readable both ways.
        payload = {"schema": schema, "checksum": _checksum(body),
                   body_key: body}
        atomic_write_text(self._memo_path(key), json.dumps(payload))

    # -------------------------------------------------------------- events

    def record_event(self, event, **data):
        line = _canonical({"event": event, "at": time.time(), **data})
        with open(self._events_path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def events(self):
        return self.events_since(None)[0]

    def events_since(self, cursor):
        offset = int(cursor or 0)
        try:
            with open(self._events_path, "rb") as handle:
                handle.seek(offset)
                raw = handle.read()
        except OSError:
            return [], offset
        lines = raw.split(b"\n")
        lines.pop()  # b"" when well-terminated, else a torn tail mid-append
        out = []
        consumed = 0
        for line in lines:
            try:
                out.append(json.loads(line))
            except ValueError:
                break  # unreadable record: stop; diagnostics only
            consumed += len(line) + 1
        return out, offset + consumed

    def live_leases(self) -> Iterator[dict]:
        if not self._leases.is_dir():
            return
        for path in sorted(self._leases.glob("*.json")):
            try:
                lease = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            yield lease


# --------------------------------------------------------------------------
# Sqlite backend


class SqliteStore(ResultStore):
    """One stdlib sqlite3 database; claims are ``BEGIN IMMEDIATE``
    transactions, so the test-and-set the directory backend builds from
    ``O_CREAT|O_EXCL`` comes for free from the write lock.

    WAL mode keeps readers (the coordinator streaming results) off the
    writers' lock; ``synchronous=FULL`` keeps the journal's
    durable-before-act discipline. Connections are per-thread *and*
    per-process (a worker's lease-renewal thread gets its own, and a
    connection never crosses a fork boundary); workers in other processes
    open their own instance against the same path (that is the point).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        super().__init__()
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.url = f"sqlite:{self.path}"
        self._local = threading.local()
        self._ensure_schema()

    def _connection(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None or getattr(self._local, "pid", None) != os.getpid():
            conn = sqlite3.connect(
                str(self.path), timeout=30.0, isolation_level=None
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=FULL")
            conn.execute("PRAGMA busy_timeout=30000")
            self._local.conn = conn
            self._local.pid = os.getpid()
        return conn

    def _ensure_schema(self) -> None:
        conn = self._connection()
        conn.executescript(
            """
            CREATE TABLE IF NOT EXISTS meta (
                key TEXT PRIMARY KEY, value TEXT NOT NULL);
            CREATE TABLE IF NOT EXISTS cells (
                idx INTEGER PRIMARY KEY,
                task TEXT NOT NULL,
                state TEXT NOT NULL DEFAULT 'pending',
                payload TEXT,
                reason TEXT,
                attempt INTEGER NOT NULL DEFAULT 0,
                worker TEXT,
                token TEXT,
                expires_at REAL);
            CREATE TABLE IF NOT EXISTS memo (
                key TEXT PRIMARY KEY, payload TEXT NOT NULL);
            CREATE TABLE IF NOT EXISTS events (
                seq INTEGER PRIMARY KEY AUTOINCREMENT,
                body TEXT NOT NULL);
            """
        )

    # ----------------------------------------------------------- lifecycle

    def seed(
        self, *, kind, run_id, fingerprint, cells, config=None,
        max_attempts=DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT value FROM meta WHERE key='header'"
            ).fetchone()
            if row is not None:
                existing = json.loads(row[0])
                if existing.get("fingerprint") != fingerprint:
                    raise StoreError(
                        f"store {self.url} holds run "
                        f"{existing.get('run_id')!r} with a different "
                        f"config fingerprint — refusing to mix two runs"
                    )
                conn.execute("COMMIT")
                self.max_attempts = int(
                    existing.get("max_attempts", DEFAULT_MAX_ATTEMPTS)
                )
                return
            header = {
                "schema": STORE_SCHEMA, "kind": kind, "run_id": run_id,
                "fingerprint": fingerprint, "cells": len(cells),
                "config": config, "max_attempts": max_attempts,
            }
            conn.executemany(
                "INSERT INTO cells (idx, task) VALUES (?, ?)",
                [(i, _canonical(task)) for i, task in enumerate(cells)],
            )
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('header', ?)",
                (_canonical(header),),
            )
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        self.max_attempts = max_attempts

    def header(self):
        row = self._connection().execute(
            "SELECT value FROM meta WHERE key='header'"
        ).fetchone()
        if row is None:
            return None
        header = json.loads(row[0])
        self.max_attempts = int(
            header.get("max_attempts", DEFAULT_MAX_ATTEMPTS)
        )
        return header

    def task(self, cell):
        row = self._connection().execute(
            "SELECT task FROM cells WHERE idx=?", (cell,)
        ).fetchone()
        if row is None:
            raise StoreError(f"store {self.url} has no cell {cell}")
        return json.loads(row[0])

    # -------------------------------------------------------------- leases

    def claim(self, worker, lease_s=DEFAULT_LEASE_S):
        conn = self._connection()
        while True:
            now = time.time()
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT idx, task, state, attempt, worker FROM cells "
                    "WHERE state='pending' "
                    "   OR (state='leased' AND expires_at <= ?) "
                    "ORDER BY idx LIMIT 1",
                    (now,),
                ).fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    return None
                idx, task_text, state, attempt, previous = row
                if state == "leased" and attempt >= self.max_attempts:
                    reason = (
                        f"lease expired {attempt} time(s); attempts exhausted"
                    )
                    conn.execute(
                        "UPDATE cells SET state='failed', payload=NULL, "
                        "reason=?, worker=NULL, token=NULL, expires_at=NULL "
                        "WHERE idx=?",
                        (reason, idx),
                    )
                    self._event(conn, "exhausted", cell=idx, attempt=attempt)
                    self._event(conn, "failed", cell=idx, worker=None,
                                attempt=attempt)
                    conn.execute("COMMIT")
                    continue
                token = self._new_token()
                next_attempt = attempt + 1
                conn.execute(
                    "UPDATE cells SET state='leased', worker=?, token=?, "
                    "attempt=?, expires_at=? WHERE idx=?",
                    (worker, token, next_attempt, now + lease_s, idx),
                )
                if state == "leased":
                    self._event(conn, "reclaimed", cell=idx, worker=worker,
                                previous=previous, attempt=next_attempt)
                else:
                    self._event(conn, "claimed", cell=idx, worker=worker,
                                attempt=next_attempt)
                conn.execute("COMMIT")
            except BaseException:
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                raise
            claim = Claim(
                cell=idx, task=json.loads(task_text), attempt=next_attempt,
                worker=worker, token=token, expires_at=now + lease_s,
            )
            self._hook("claim")
            return claim

    def renew(self, claim, lease_s=DEFAULT_LEASE_S):
        conn = self._connection()
        expires = time.time() + lease_s
        cursor = conn.execute(
            "UPDATE cells SET expires_at=? "
            "WHERE idx=? AND state='leased' AND token=?",
            (expires, claim.cell, claim.token),
        )
        if cursor.rowcount != 1:
            raise LeaseLost(
                f"lease on cell {claim.cell} no longer held by "
                f"{claim.worker!r} (taken over after expiry)"
            )
        return Claim(
            cell=claim.cell, task=claim.task, attempt=claim.attempt,
            worker=claim.worker, token=claim.token, expires_at=expires,
        )

    # ----------------------------------------------------------- terminals

    def _terminal_from_claim(self, claim, state, payload, reason):
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT state, token FROM cells WHERE idx=?", (claim.cell,)
            ).fetchone()
            if row is None:
                conn.execute("COMMIT")
                raise StoreError(f"store {self.url} has no cell {claim.cell}")
            current_state, token = row
            if current_state in TERMINAL_STATES:
                self._event(conn, "double-execution", cell=claim.cell,
                            worker=claim.worker, state=state)
                conn.execute("COMMIT")
                return False
            if token != claim.token:
                self._event(conn, "stale-result", cell=claim.cell,
                            worker=claim.worker, state=state)
                conn.execute("COMMIT")
                raise LeaseLost(
                    f"result for cell {claim.cell} refused: lease was "
                    f"taken over (the cell will be / was re-executed "
                    f"elsewhere)"
                )
            self._write_terminal_locked(
                conn, claim.cell, state, payload, reason, claim.attempt,
                claim.worker,
            )
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        self._hook("finish")
        return True

    def write_terminal(
        self, cell, state, payload, *, reason=None, attempt=0, worker=None,
    ):
        if state not in TERMINAL_STATES:
            raise StoreError(f"unknown terminal state {state!r}")
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT state FROM cells WHERE idx=?", (cell,)
            ).fetchone()
            if row is not None and row[0] in TERMINAL_STATES:
                self._event(conn, "double-execution", cell=cell,
                            worker=worker, state=state)
                conn.execute("COMMIT")
                return False
            self._write_terminal_locked(
                conn, cell, state, payload, reason, attempt, worker
            )
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        return True

    def _write_terminal_locked(
        self, conn, cell, state, payload, reason, attempt, worker
    ) -> None:
        sealed = (
            _canonical(seal(payload, schema=STORE_SCHEMA))
            if payload is not None else None
        )
        conn.execute(
            "UPDATE cells SET state=?, payload=?, reason=?, worker=?, "
            "token=NULL, expires_at=NULL, attempt=? WHERE idx=?",
            (state, sealed, reason, worker, attempt, cell),
        )
        self._event(conn, state, cell=cell, worker=worker, attempt=attempt)

    def terminal(self, cell):
        row = self._connection().execute(
            "SELECT state, payload, reason, attempt FROM cells WHERE idx=?",
            (cell,),
        ).fetchone()
        if row is None or row[0] not in TERMINAL_STATES:
            return None
        state, payload_text, reason, attempt = row
        payload = None
        if payload_text is not None:
            try:
                payload = unseal(
                    json.loads(payload_text), schema=STORE_SCHEMA
                )
            except (ValueError, KeyError):
                # Tampered/corrupt payload: drop the record, re-execute.
                self.record_event("torn-result", cell=cell)
                conn = self._connection()
                conn.execute(
                    "UPDATE cells SET state='pending', payload=NULL, "
                    "reason=NULL, worker=NULL, token=NULL, expires_at=NULL "
                    "WHERE idx=?",
                    (cell,),
                )
                return None
        return {"state": state, "reason": reason, "payload": payload,
                "attempt": attempt}

    def reclaim_expired(self):
        conn = self._connection()
        reclaimed: List[int] = []
        now = time.time()
        conn.execute("BEGIN IMMEDIATE")
        try:
            rows = conn.execute(
                "SELECT idx, attempt, worker FROM cells "
                "WHERE state='leased' AND expires_at <= ? ORDER BY idx",
                (now,),
            ).fetchall()
            for idx, attempt, previous in rows:
                if attempt >= self.max_attempts:
                    reason = (
                        f"lease expired {attempt} time(s); attempts exhausted"
                    )
                    conn.execute(
                        "UPDATE cells SET state='failed', payload=NULL, "
                        "reason=?, worker=NULL, token=NULL, expires_at=NULL "
                        "WHERE idx=?",
                        (reason, idx),
                    )
                    self._event(conn, "exhausted", cell=idx, attempt=attempt)
                    self._event(conn, "failed", cell=idx, worker=None,
                                attempt=attempt)
                else:
                    conn.execute(
                        "UPDATE cells SET state='pending', worker=NULL, "
                        "token=NULL, expires_at=NULL WHERE idx=?",
                        (idx,),
                    )
                    self._event(conn, "reclaimed", cell=idx, worker=None,
                                previous=previous, attempt=attempt)
                    reclaimed.append(idx)
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        return reclaimed

    def counts(self):
        conn = self._connection()
        now = time.time()
        out = {"cells": 0, "finished": 0, "failed": 0, "quarantined": 0,
               "leased": 0, "pending": 0}
        for state, live, count in conn.execute(
            "SELECT state, "
            "  CASE WHEN state='leased' AND expires_at > ? THEN 1 ELSE 0 END, "
            "  COUNT(*) FROM cells GROUP BY 1, 2",
            (now,),
        ):
            out["cells"] += count
            if state in TERMINAL_STATES:
                out[state] += count
            elif state == "leased" and live:
                out["leased"] += count
            else:
                out["pending"] += count  # pending, or leased-but-expired
        return out

    # ---------------------------------------------------------------- memo

    def load_memo(self, key, *, schema, body_key="summary"):
        row = self._connection().execute(
            "SELECT payload FROM memo WHERE key=?", (key,)
        ).fetchone()
        if row is None:
            return None
        payload = json.loads(row[0])  # ValueError propagates: caller logs
        return unseal(payload, schema=schema, body_key=body_key)

    def store_memo(self, key, body, *, schema, body_key="summary"):
        payload = {"schema": schema, "checksum": _checksum(body),
                   body_key: body}
        self._connection().execute(
            "INSERT OR REPLACE INTO memo (key, payload) VALUES (?, ?)",
            (key, json.dumps(payload)),
        )

    # -------------------------------------------------------------- events

    def _event(self, conn, event: str, **data) -> None:
        conn.execute(
            "INSERT INTO events (body) VALUES (?)",
            (_canonical({"event": event, "at": time.time(), **data}),),
        )

    def record_event(self, event, **data):
        self._event(self._connection(), event, **data)

    def events(self):
        return self.events_since(None)[0]

    def events_since(self, cursor):
        last = int(cursor or 0)
        rows = self._connection().execute(
            "SELECT seq, body FROM events WHERE seq > ? ORDER BY seq",
            (last,),
        ).fetchall()
        if rows:
            last = rows[-1][0]
        return [json.loads(body) for _, body in rows], last

    def live_leases(self) -> Iterator[dict]:
        for idx, worker, attempt, expires_at in self._connection().execute(
            "SELECT idx, worker, attempt, expires_at FROM cells "
            "WHERE state='leased' ORDER BY idx"
        ):
            yield {"cell": idx, "worker": worker, "attempt": attempt,
                   "expires_at": expires_at}

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", None) == os.getpid():
            conn.close()
        self._local.conn = None


# --------------------------------------------------------------------------
# URLs and triage


def open_store(
    spec: Union[str, Path, ResultStore], *, memo_subdir: str = "memo"
) -> ResultStore:
    """Resolve a store URL: ``sqlite:PATH`` (or a ``.sqlite``/``.db``
    path) opens a :class:`SqliteStore`; ``dir:PATH`` or any other path
    opens a :class:`LocalDirStore` on that directory."""
    if isinstance(spec, ResultStore):
        return spec
    text = str(spec)
    if text.startswith("sqlite:"):
        return SqliteStore(text[len("sqlite:"):])
    if text.startswith("dir:"):
        return LocalDirStore(text[len("dir:"):], memo_subdir=memo_subdir)
    if text.endswith((".sqlite", ".sqlite3", ".db")):
        return SqliteStore(text)
    return LocalDirStore(text, memo_subdir=memo_subdir)


def store_doctor(store: ResultStore) -> dict:
    """Triage a store: lease health plus the exactly-once invariants.

    ``double_executions`` lists cells where a *terminal* record already
    existed when a second result arrived — the invariant ``runs doctor
    --store --assert-no-reexecution`` gates on. ``stale_results`` are the
    benign sibling: a taken-over worker's result refused before any
    double-write happened. ``orphaned_claims`` are leases still on record
    for cells that already have a terminal record (a worker died between
    writing its result and releasing its lease — harmless, reclaimable).
    """
    header = store.header()
    counts = store.counts()
    now = time.time()
    expired, orphaned = [], []
    for lease in store.live_leases():
        if store.terminal(lease["cell"]) is not None:
            orphaned.append(lease["cell"])
        elif lease["expires_at"] <= now:
            expired.append(lease["cell"])
    events = store.events()
    def cells_of(kind: str) -> List[int]:
        return sorted({e["cell"] for e in events if e["event"] == kind})
    return {
        "header": header,
        "counts": counts,
        "complete": store.complete,
        "expired_leases": sorted(expired),
        "orphaned_claims": sorted(orphaned),
        "double_claims": sum(
            1 for e in events if e["event"] == "claim-race"
        ),
        "reclaims": sum(1 for e in events if e["event"] == "reclaimed"),
        "reclaimed_cells": cells_of("reclaimed"),
        "double_executions": cells_of("double-execution"),
        "stale_results": sum(
            1 for e in events if e["event"] == "stale-result"
        ),
        "exhausted_cells": cells_of("exhausted"),
        "torn_results": cells_of("torn-result"),
    }
