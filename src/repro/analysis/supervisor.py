"""Worker supervision: heartbeats, budgets, backoff restarts, preemption.

:class:`~concurrent.futures.ProcessPoolExecutor` gives fan-out but no
*supervision*: a worker that leaks memory until the OOM killer arrives, or
wedges inside a C extension, takes its pool down with no per-cell
accounting, and Ctrl-C tears through in-flight work. Durable runs (see
:mod:`repro.analysis.journal`) need the opposite: every cell's fate must be
known and recorded. :class:`WorkerSupervisor` owns that:

* **Per-slot workers.** ``workers`` long-lived subprocesses, each with its
  own depth-1 task queue, so the supervisor always knows which worker holds
  which cell (no work-stealing limbo to reconstruct after a crash).
* **Heartbeats.** Each worker runs a daemon thread stamping a shared
  monotonic timestamp every ``heartbeat_s`` and exits on its own when the
  parent disappears (``getppid`` change) — a SIGKILLed orchestrator never
  leaves orphan workers grinding on.
* **Budgets.** A cell may carry a wall-clock budget and an RSS budget
  (:class:`CellBudget`). The supervisor polls both; a breach SIGKILLs the
  worker and records a typed quarantine
  (:class:`~repro.sim.errors.ResourceBudgetExceeded` semantics) — budget
  kills are never retried, they are deterministic.
* **Backoff restarts.** A dead worker slot (crash, budget kill, external
  SIGKILL) is restarted with exponential backoff
  (``backoff_base_s * 2^deaths``, capped), reset on the next successful
  cell. The cell a worker died holding is retried up to ``retries`` times,
  then reported as crashed.
* **Graceful preemption.** On SIGINT/SIGTERM the supervisor stops
  dispatching, drains in-flight cells (up to ``drain_s``), and raises
  :class:`~repro.sim.errors.RunInterrupted`; a second signal kills
  in-flight workers immediately. Either way every completed cell was
  already delivered to the caller's callbacks — with a journal attached,
  nothing durable is lost.

The supervisor is policy-free about results: it runs ``task_runner(task)``
(a picklable module-level callable) for each ``(index, task)`` item and
reports completions and failures through callbacks; the sweep executor and
the chaos campaign translate those into their own row/outcome types.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.errors import RunInterrupted
from .executor import logger, resolve_workers

__all__ = [
    "CellBudget",
    "CellFailure",
    "SupervisorStats",
    "WorkerSupervisor",
    "budget_breach",
    "rss_mb_of",
]


@dataclass(frozen=True)
class CellBudget:
    """Per-cell resource budgets; ``None`` disables an axis."""

    wall_s: Optional[float] = None
    rss_mb: Optional[float] = None

    def __post_init__(self) -> None:
        if self.wall_s is not None and self.wall_s <= 0:
            raise ValueError(f"wall_s must be positive, got {self.wall_s}")
        if self.rss_mb is not None and self.rss_mb <= 0:
            raise ValueError(f"rss_mb must be positive, got {self.rss_mb}")


@dataclass
class CellFailure:
    """Why a cell produced no result.

    ``kind`` is one of ``"crashed"`` (the runner raised, or the worker died
    mid-cell), ``"wall-budget"`` or ``"rss-budget"`` (the supervisor killed
    the worker). ``attempts`` counts executions including the failed ones.
    """

    index: int
    task: Any
    kind: str
    detail: str
    attempts: int = 1


@dataclass
class SupervisorStats:
    """Accounting for one :meth:`WorkerSupervisor.run`."""

    completed: int = 0
    failed: int = 0
    retried: int = 0
    budget_kills: int = 0
    worker_restarts: int = 0


def rss_mb_of(pid: int) -> Optional[float]:
    """Resident set size of ``pid`` in MiB via ``/proc`` (Linux).

    Returns ``None`` where ``/proc/<pid>/statm`` is unavailable (non-Linux,
    or the process already exited) — RSS budgets degrade to unenforced
    rather than crashing the supervisor.
    """
    try:
        with open(f"/proc/{pid}/statm", "rb") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * (os.sysconf("SC_PAGE_SIZE") / (1024 * 1024))
    except (OSError, ValueError, IndexError):
        return None


def budget_breach(
    budget: Optional[CellBudget],
    *,
    started_at: float,
    pid: Optional[int] = None,
    now: Optional[float] = None,
) -> Optional[Tuple[str, str]]:
    """``(kind, detail)`` when a cell has exceeded ``budget``, else ``None``.

    The single budget-enforcement decision, shared by the in-process
    supervisor's police loop and the fabric's pull-based workers
    (:mod:`repro.analysis.worker`), so a wall/RSS breach produces the same
    typed kind (``"wall-budget"`` / ``"rss-budget"``) and the same message
    wherever the cell happens to run. ``started_at``/``now`` are
    ``time.monotonic()`` values; ``pid`` enables the RSS axis.
    """
    if budget is None:
        return None
    if now is None:
        now = time.monotonic()
    if budget.wall_s is not None and now - started_at > budget.wall_s:
        return (
            "wall-budget",
            f"ResourceBudgetExceeded: cell exceeded wall budget "
            f"({budget.wall_s:g}s)",
        )
    if budget.rss_mb is not None and pid is not None:
        rss = rss_mb_of(pid)
        if rss is not None and rss > budget.rss_mb:
            return (
                "rss-budget",
                f"ResourceBudgetExceeded: worker RSS {rss:.0f} MiB "
                f"exceeded budget ({budget.rss_mb:g} MiB)",
            )
    return None


def _worker_main(
    task_runner: Callable,
    task_q,
    result_q,
    heartbeat,
    heartbeat_s: float,
    parent_pid: int,
) -> None:
    """Worker process body: claim one cell at a time, report, heartbeat.

    SIGINT is ignored so a terminal Ctrl-C (delivered to the whole process
    group) reaches only the supervisor, which drains us gracefully instead
    of us dying mid-cell.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    def beat() -> None:
        while True:
            heartbeat.value = time.monotonic()
            if os.getppid() != parent_pid:
                os._exit(1)  # orphaned: the supervisor was SIGKILLed
            time.sleep(heartbeat_s)

    threading.Thread(target=beat, daemon=True).start()
    while True:
        try:
            item = task_q.get(timeout=0.25)
        except queue.Empty:
            if os.getppid() != parent_pid:
                os._exit(1)
            continue
        if item is None:
            return
        index, task = item
        try:
            result = task_runner(task)
        except BaseException as exc:  # noqa: BLE001 — reported, not hidden
            result_q.put(("error", index, f"{type(exc).__name__}: {exc}"))
        else:
            result_q.put(("done", index, result))


class _Slot:
    """One supervised worker seat: process + private queue + heartbeat."""

    def __init__(self, slot_id: int) -> None:
        self.slot_id = slot_id
        self.process: Optional[multiprocessing.Process] = None
        self.task_q = None
        self.heartbeat = None
        #: (index, task, attempts, start monotonic) while a cell is held.
        self.busy: Optional[Tuple[int, Any, int, float]] = None
        self.deaths = 0  # consecutive, reset on a completed cell
        self.restart_at = 0.0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerSupervisor:
    """Run ``(index, task)`` items through supervised worker processes.

    Results arrive through callbacks, in completion order (callers that
    need grid order assemble by index):

    * ``on_start(index, task)`` — the cell was handed to a worker (the
      journaling hook for ``started`` records);
    * ``on_result(index, task, result)`` — the runner returned;
    * ``on_failure(failure: CellFailure)`` — the cell is out of attempts
      or was budget-killed.

    :meth:`run` returns :class:`SupervisorStats`; it raises
    :class:`~repro.sim.errors.RunInterrupted` after a graceful drain if a
    SIGINT/SIGTERM arrived (callbacks for everything that completed during
    the drain have already fired).
    """

    def __init__(
        self,
        task_runner: Callable,
        *,
        workers: Optional[int] = None,
        budget: Optional[CellBudget] = None,
        retries: int = 1,
        heartbeat_s: float = 0.2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        drain_s: float = 30.0,
        stall_s: Optional[float] = None,
        install_signal_handlers: bool = True,
    ) -> None:
        self.task_runner = task_runner
        self.workers = resolve_workers(workers)
        self.budget = budget or CellBudget()
        self.retries = retries
        self.heartbeat_s = heartbeat_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.drain_s = drain_s
        #: A busy worker whose heartbeat is older than this is wedged
        #: (frozen process, not merely slow compute — the beat thread
        #: survives GIL-bound loops) and is killed + retried. ``None``
        #: disables the check; the wall budget usually subsumes it.
        self.stall_s = stall_s
        self.install_signal_handlers = install_signal_handlers
        self._preempted: Optional[str] = None
        self._hard_stop = False
        self._result_q = None

    # -------------------------------------------------------------- signals

    def _handle_signal(self, signum, frame) -> None:
        name = signal.Signals(signum).name
        if self._preempted is None:
            self._preempted = name
            logger.warning(
                "%s received: draining in-flight cells (repeat to abort)", name
            )
        else:
            self._hard_stop = True

    # ------------------------------------------------------------------ run

    def run(
        self,
        items: Sequence[Tuple[int, Any]],
        *,
        on_start: Optional[Callable[[int, Any], None]] = None,
        on_result: Optional[Callable[[int, Any, Any], None]] = None,
        on_failure: Optional[Callable[[CellFailure], None]] = None,
    ) -> SupervisorStats:
        stats = SupervisorStats()
        if not items:
            return stats
        pending: List[Tuple[int, Any, int]] = [
            (index, task, 0) for index, task in items
        ]
        pending.reverse()  # pop() dispatches in grid order
        outstanding = len(pending)
        result_q = multiprocessing.Queue()
        self._result_q = result_q
        slots = [_Slot(i) for i in range(min(self.workers, len(items)))]
        for slot in slots:
            self._spawn(slot, result_q)

        use_handlers = (
            self.install_signal_handlers
            and threading.current_thread() is threading.main_thread()
        )
        previous = {}
        if use_handlers:
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(signum, self._handle_signal)
        drain_deadline: Optional[float] = None
        try:
            while outstanding > 0:
                if self._preempted is not None and drain_deadline is None:
                    drain_deadline = time.monotonic() + self.drain_s
                if self._hard_stop or (
                    drain_deadline is not None
                    and time.monotonic() > drain_deadline
                ):
                    break
                if self._preempted is None:
                    self._dispatch(pending, slots, on_start)
                elif not any(slot.busy for slot in slots):
                    break  # drained: nothing in flight, dispatch stopped
                outstanding -= self._drain_results(
                    result_q, slots, pending, stats, on_result, on_failure
                )
                outstanding -= self._police(
                    slots, result_q, pending, stats, on_failure
                )
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self._shutdown(slots)
            result_q.close()
            result_q.cancel_join_thread()
        if self._preempted is not None:
            remaining = outstanding
            raise RunInterrupted(
                f"{self._preempted}: drained supervised run "
                f"({len(items) - remaining} of {len(items)} cells done, "
                f"{remaining} remaining)",
                completed=len(items) - remaining,
                remaining=remaining,
            )
        return stats

    # ------------------------------------------------------------ internals

    def _spawn(self, slot: _Slot, result_q) -> None:
        slot.task_q = multiprocessing.Queue(maxsize=1)
        slot.heartbeat = multiprocessing.Value("d", time.monotonic())
        slot.process = multiprocessing.Process(
            target=_worker_main,
            args=(
                self.task_runner, slot.task_q, result_q, slot.heartbeat,
                self.heartbeat_s, os.getpid(),
            ),
            daemon=True,
        )
        slot.process.start()

    def _dispatch(self, pending, slots, on_start) -> None:
        now = time.monotonic()
        for slot in slots:
            if not pending:
                return
            if slot.busy is not None:
                continue
            if not slot.alive:
                if now >= slot.restart_at:
                    self._restart(slot)
                continue
            index, task, attempts = pending.pop()
            slot.busy = (index, task, attempts, now)
            slot.task_q.put((index, task))
            if attempts == 0 and on_start is not None:
                on_start(index, task)

    def _restart(self, slot: _Slot) -> None:
        result_q = self._result_q
        self._reap(slot)
        self._spawn(slot, result_q)

    def _reap(self, slot: _Slot) -> None:
        if slot.process is not None:
            slot.process.join(timeout=1.0)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=1.0)
            if not slot.process.is_alive():
                slot.process.close()
            slot.process = None
        if slot.task_q is not None:
            slot.task_q.close()
            slot.task_q.cancel_join_thread()
            slot.task_q = None

    def _drain_results(
        self, result_q, slots, pending, stats, on_result, on_failure
    ) -> int:
        """Deliver every queued worker report; returns cells resolved."""
        resolved = 0
        while True:
            try:
                kind, index, payload = result_q.get(timeout=self.heartbeat_s)
            except queue.Empty:
                return resolved
            slot = next(
                (s for s in slots if s.busy and s.busy[0] == index), None
            )
            attempts = (slot.busy[2] if slot else 0) + 1
            if slot is not None:
                task = slot.busy[1]
                slot.busy = None
                slot.deaths = 0
            else:
                # The worker was killed right after queueing this report
                # (budget race); the cell was already resolved then.
                continue
            if kind == "done":
                stats.completed += 1
                resolved += 1
                if on_result is not None:
                    on_result(index, task, payload)
            else:
                resolved += self._failed_attempt(
                    CellFailure(index, task, "crashed", payload, attempts),
                    pending, stats, on_failure,
                )

    def _police(self, slots, result_q, pending, stats, on_failure) -> int:
        """Budget enforcement + dead-worker detection; returns resolved."""
        resolved = 0
        now = time.monotonic()
        for slot in slots:
            if slot.busy is None:
                if not slot.alive and slot.process is not None:
                    # Idle worker died (external kill): restart with backoff.
                    self._note_death(slot, stats)
                continue
            index, task, attempts, start = slot.busy
            failure: Optional[CellFailure] = None
            if not slot.alive:
                code = slot.process.exitcode if slot.process else None
                failure = CellFailure(
                    index, task, "crashed",
                    f"worker died mid-cell (exit code {code})", attempts + 1,
                )
            elif (
                self.stall_s is not None
                and now - slot.heartbeat.value > self.stall_s
            ):
                failure = CellFailure(
                    index, task, "crashed",
                    f"worker heartbeat stalled for more than "
                    f"{self.stall_s:g}s (wedged process)", attempts + 1,
                )
            else:
                breach = budget_breach(
                    self.budget,
                    started_at=start,
                    pid=slot.process.pid if slot.process else None,
                    now=now,
                )
                if breach is not None:
                    failure = CellFailure(
                        index, task, breach[0], breach[1], attempts + 1
                    )
            if failure is None:
                continue
            if failure.kind != "crashed":
                stats.budget_kills += 1
                if slot.process is not None:
                    slot.process.kill()
            slot.busy = None
            self._note_death(slot, stats)
            resolved += self._failed_attempt(
                failure, pending, stats, on_failure
            )
        return resolved

    def _note_death(self, slot: _Slot, stats: SupervisorStats) -> None:
        slot.deaths += 1
        stats.worker_restarts += 1
        delay = min(
            self.backoff_base_s * (2 ** (slot.deaths - 1)), self.backoff_cap_s
        )
        slot.restart_at = time.monotonic() + delay
        self._reap(slot)

    def _failed_attempt(
        self, failure: CellFailure, pending, stats, on_failure
    ) -> int:
        """Retry crashes (not budget kills); returns 1 when terminal."""
        if failure.kind == "crashed" and failure.attempts <= self.retries:
            logger.warning(
                "cell %d crashed (%s); retrying (%d/%d)",
                failure.index, failure.detail, failure.attempts, self.retries,
            )
            stats.retried += 1
            pending.append(
                (failure.index, failure.task, failure.attempts)
            )
            return 0
        stats.failed += 1
        if on_failure is not None:
            on_failure(failure)
        return 1

    def _shutdown(self, slots) -> None:
        for slot in slots:
            if slot.alive and slot.busy is None:
                try:
                    slot.task_q.put_nowait(None)
                except (queue.Full, ValueError):
                    pass
        deadline = time.monotonic() + 2.0
        for slot in slots:
            if slot.process is None:
                continue
            slot.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.kill()
            self._reap(slot)
