"""Jittered exponential backoff, shared by every retry loop in the tree.

One policy, two very different consumers:

* the fabric worker's idle poll (:mod:`repro.analysis.worker`) — a starved
  worker probing the store for claimable cells;
* the service clients (:mod:`repro.service.load`, ``repro-renaming
  query``) — retrying a connect or an idempotent re-submission against a
  daemon that is busy, restarting, or behind a flaky network.

Both want the same shape: full jitter (AWS-style) so a fleet of retriers
never hammers the shared resource in lockstep, an exponential ceiling so
persistent starvation backs off, a floor so the first retry is never more
eager than configured, and a cap so a recovered resource is noticed within
one cap window. :meth:`PollBackoff.reset` drops back to the floor on any
success (a claimed cell, an admitted session).
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["PollBackoff"]


class PollBackoff:
    """Jittered exponential backoff between retries of a shared resource.

    A fixed sleep makes every starved retrier in a fleet hammer the
    resource in lockstep; full jitter (AWS-style) spreads the probes and
    backs off exponentially while nothing succeeds. ``floor_s`` (the
    worker's old ``--poll``) stays the minimum — the first sleep is never
    shorter than before — and ``cap_s`` bounds how lazy a starved retrier
    may get, so a recovered resource is picked up within one cap window.

    :meth:`reset` (called on every success) drops back to the floor;
    ``rng`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        floor_s: float,
        cap_s: float = 5.0,
        *,
        rng: Optional[Callable[[float, float], float]] = None,
    ) -> None:
        if floor_s <= 0:
            raise ValueError(f"floor_s must be positive, got {floor_s}")
        if cap_s < floor_s:
            raise ValueError(
                f"cap_s ({cap_s}) must be at least floor_s ({floor_s})"
            )
        self.floor_s = floor_s
        self.cap_s = cap_s
        self._attempts = 0
        if rng is None:
            import random

            rng = random.uniform
        self._rng = rng

    def reset(self) -> None:
        self._attempts = 0

    def next_delay(self) -> float:
        ceiling = min(self.cap_s, self.floor_s * (2 ** self._attempts))
        self._attempts += 1
        return self._rng(self.floor_s, ceiling)
