"""Machine-checkable verdicts for the renaming properties (Section II).

Every experiment and test funnels run outputs through
:func:`check_renaming`, which evaluates the four properties of the problem
definition against a run's outputs and reports precise violations — so a
failing property names the offending ids and names instead of a bare False.

Chaos awareness: when the run carried a beyond-model fault plan
(:attr:`~repro.sim.runner.RunResult.chaos` is set and injected anything),
the report records ``beyond_model=True`` plus the injected-fault counters,
and :meth:`PropertyReport.classification` maps each broken property to the
fault families that were active — the post-hoc half of the safety story
(the in-run half is :class:`~repro.sim.monitor.SafetyMonitor`).

Model awareness: when the run executed under a non-inert
:class:`~repro.sim.model.SystemModel` (:attr:`~repro.sim.runner.RunResult
.model` carries its :class:`~repro.sim.model.ModelReport`), the report
records the model's describe string plus its injection counters (``forge``,
``omission``, ``late``) alongside any chaos counters, so
:meth:`PropertyReport.classification` names the model's fault families too.
Judging broken properties against what the model *promised* is
:meth:`repro.sim.model.ModelExpectations.classify` — expectations live with
the model registry, verdicts live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.runner import RunResult


@dataclass
class PropertyReport:
    """Outcome of checking one run against the renaming specification."""

    names: Dict[int, int]
    namespace: int
    validity: bool = True
    termination: bool = True
    uniqueness: bool = True
    order_preservation: bool = True
    violations: List[str] = field(default_factory=list)
    #: True when the checked run injected beyond-model faults (its
    #: :class:`~repro.sim.chaos.ChaosReport` recorded at least one event).
    beyond_model: bool = False
    #: Injected-fault counters from the run's chaos report (empty when the
    #: run was clean).
    injected: Dict[str, int] = field(default_factory=dict)
    #: Describe string of the run's system model (``None`` for classic /
    #: inert runs). Model injection counters merge into :attr:`injected`.
    model: Optional[str] = None

    @property
    def ok(self) -> bool:
        """All four properties hold."""
        return (
            self.validity
            and self.termination
            and self.uniqueness
            and self.order_preservation
        )

    def ok_without_order(self) -> bool:
        """The three properties every renaming algorithm must satisfy
        (baselines like [15] do not promise order preservation)."""
        return self.validity and self.termination and self.uniqueness

    @property
    def broken(self) -> Tuple[str, ...]:
        """Names of the properties that failed, in specification order."""
        out = []
        if not self.validity:
            out.append("validity")
        if not self.termination:
            out.append("termination")
        if not self.uniqueness:
            out.append("uniqueness")
        if not self.order_preservation:
            out.append("order_preservation")
        return tuple(out)

    def classification(self) -> Dict[str, Tuple[str, ...]]:
        """Post-hoc triage: each broken property → active fault families.

        For a clean run the fault-family tuple is empty — a broken property
        with no injected fault is an algorithm bug, not a chaos finding.
        """
        active = tuple(label for label, count in sorted(self.injected.items()) if count)
        return {prop: active for prop in self.broken}

    def __str__(self) -> str:
        prefix = "[beyond-model] " if self.beyond_model else ""
        if self.model is not None:
            prefix = f"[model:{self.model}] " + prefix
        if self.ok:
            return f"{prefix}OK (names in [1..{self.namespace}])"
        return prefix + "; ".join(self.violations)


def check_renaming(
    result: RunResult, namespace: int, expected_count: int = None
) -> PropertyReport:
    """Evaluate the renaming properties on a finished run.

    ``namespace`` is the target namespace size ``M`` the algorithm promises.
    ``expected_count`` defaults to the number of correct processes and exists
    for tests that deliberately run partial populations.

    Unlike :meth:`RunResult.new_names`, this never raises on malformed
    outputs: a non-integer output is a *validity* violation (the process
    emitted something that is not a name), an absent/``None`` output is a
    *termination* violation — both land in the report instead of escaping as
    ``TypeError``, so chaos campaigns can triage every run.
    """
    outputs_by_id = getattr(result, "outputs_by_id", None)
    outputs = outputs_by_id() if outputs_by_id is not None else result.new_names()
    names: Dict[int, int] = {}
    malformed: Dict[int, object] = {}
    for original, output in outputs.items():
        if output is None:
            continue  # undecided — counted by the termination check below
        if isinstance(output, bool) or not isinstance(output, int):
            malformed[original] = output
        else:
            names[original] = output

    report = PropertyReport(names=names, namespace=namespace)
    chaos = getattr(result, "chaos", None)
    if chaos is not None and chaos.injected:
        report.beyond_model = True
        counters = {
            "drop": chaos.dropped,
            "duplicate": chaos.duplicated,
            "corrupt": chaos.corrupted + chaos.corrupted_dropped,
            "crash": len(chaos.crash_engaged),
        }
        report.injected = {k: v for k, v in counters.items() if v}
    model_report = getattr(result, "model", None)
    if model_report is not None:
        report.model = model_report.model
        counters = {
            "forge": model_report.forged,
            # A frame still in flight when the run ended is an omission as
            # far as any process could tell.
            "omission": model_report.omitted + model_report.undelivered,
            "late": model_report.delivered_late,
        }
        report.injected.update(
            {k: v for k, v in counters.items() if v}
        )

    for original, output in sorted(malformed.items()):
        report.validity = False
        report.violations.append(
            f"validity: id {original} output {output!r} is not an integer name"
        )

    expected = len(result.correct) if expected_count is None else expected_count
    decided = len(names) + len(malformed)
    if decided != expected:
        report.termination = False
        report.violations.append(
            f"termination: {decided} of {expected} correct processes decided"
        )

    for original, name in sorted(names.items()):
        if not 1 <= name <= namespace:
            report.validity = False
            report.violations.append(
                f"validity: id {original} got name {name!r} outside [1..{namespace}]"
            )

    by_name: Dict[int, List[int]] = {}
    for original, name in names.items():
        by_name.setdefault(name, []).append(original)
    for name, originals in sorted(by_name.items()):
        if len(originals) > 1:
            report.uniqueness = False
            report.violations.append(
                f"uniqueness: ids {sorted(originals)} all got name {name}"
            )

    ordered = sorted(names)
    for smaller, larger in zip(ordered, ordered[1:]):
        if names[smaller] >= names[larger]:
            report.order_preservation = False
            report.violations.append(
                f"order: id {smaller} -> {names[smaller]} but id {larger} -> "
                f"{names[larger]}"
            )

    return report
