"""Machine-checkable verdicts for the renaming properties (Section II).

Every experiment and test funnels run outputs through
:func:`check_renaming`, which evaluates the four properties of the problem
definition against a run's outputs and reports precise violations — so a
failing property names the offending ids and names instead of a bare False.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..sim.runner import RunResult


@dataclass
class PropertyReport:
    """Outcome of checking one run against the renaming specification."""

    names: Dict[int, int]
    namespace: int
    validity: bool = True
    termination: bool = True
    uniqueness: bool = True
    order_preservation: bool = True
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All four properties hold."""
        return (
            self.validity
            and self.termination
            and self.uniqueness
            and self.order_preservation
        )

    def ok_without_order(self) -> bool:
        """The three properties every renaming algorithm must satisfy
        (baselines like [15] do not promise order preservation)."""
        return self.validity and self.termination and self.uniqueness

    def __str__(self) -> str:
        if self.ok:
            return f"OK (names in [1..{self.namespace}])"
        return "; ".join(self.violations)


def check_renaming(
    result: RunResult, namespace: int, expected_count: int = None
) -> PropertyReport:
    """Evaluate the renaming properties on a finished run.

    ``namespace`` is the target namespace size ``M`` the algorithm promises.
    ``expected_count`` defaults to the number of correct processes and exists
    for tests that deliberately run partial populations.
    """
    names = result.new_names()
    report = PropertyReport(names=names, namespace=namespace)

    expected = len(result.correct) if expected_count is None else expected_count
    if len(names) != expected:
        report.termination = False
        report.violations.append(
            f"termination: {len(names)} of {expected} correct processes decided"
        )

    for original, name in sorted(names.items()):
        if not isinstance(name, int) or not 1 <= name <= namespace:
            report.validity = False
            report.violations.append(
                f"validity: id {original} got name {name!r} outside [1..{namespace}]"
            )

    by_name: Dict[int, List[int]] = {}
    for original, name in names.items():
        by_name.setdefault(name, []).append(original)
    for name, originals in sorted(by_name.items()):
        if len(originals) > 1:
            report.uniqueness = False
            report.violations.append(
                f"uniqueness: ids {sorted(originals)} all got name {name}"
            )

    ordered = sorted(names)
    for smaller, larger in zip(ordered, ordered[1:]):
        if names[smaller] >= names[larger]:
            report.order_preservation = False
            report.violations.append(
                f"order: id {smaller} -> {names[smaller]} but id {larger} -> "
                f"{names[larger]}"
            )

    return report
