"""One-command reproduction verification.

``repro-renaming verify`` runs a condensed version of every experiment's
core assertion — seconds, not minutes — and prints a PASS/FAIL line per
claim. It is the "does the paper hold on my machine" entry point for
someone who just installed the package; the full evidence lives in the
test suite and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, List

from ..adversary import ALG1_ATTACKS, ALG4_ATTACKS, make_adversary
from ..core import (
    ConstantTimeRenaming,
    OrderPreservingRenaming,
    RenamingOptions,
    SystemParams,
    TwoStepOptions,
    TwoStepRenaming,
)
from ..sim import run_protocol
from ..workloads import make_ids
from .properties import check_renaming


@dataclass
class ClaimResult:
    """Outcome of verifying one claim."""

    claim: str
    passed: bool
    detail: str = ""

    def line(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        suffix = f"  ({self.detail})" if self.detail else ""
        return f"[{status}] {self.claim}{suffix}"


def _run(factory, n, t, attack, seed=0, trace=False):
    return run_protocol(
        factory,
        n=n,
        t=t,
        ids=make_ids("uniform", n, seed=seed),
        adversary=make_adversary(attack),
        seed=seed,
        collect_trace=trace,
    )


def _theorem_iv10() -> ClaimResult:
    n, t = 7, 2
    params = SystemParams(n, t)
    for attack in ALG1_ATTACKS:
        result = _run(OrderPreservingRenaming, n, t, attack)
        report = check_renaming(result, params.namespace_bound)
        if not report.ok or result.metrics.round_count != params.total_rounds:
            return ClaimResult(
                "Theorem IV.10 (Alg. 1 properties, all attacks)",
                False,
                f"attack={attack}: {report.violations or 'round count'}",
            )
    return ClaimResult(
        "Theorem IV.10 (Alg. 1 properties, all attacks)",
        True,
        f"{len(ALG1_ATTACKS)} attacks, rounds={params.total_rounds}, "
        f"names <= {params.namespace_bound}",
    )


def _lemma_iv3() -> ClaimResult:
    n, t = 7, 2
    result = _run(OrderPreservingRenaming, n, t, "id-forging", trace=True)
    bound = SystemParams(n, t).accepted_bound
    sizes = [
        len(e.detail)
        for e in result.trace.select(event="accepted")
        if e.process in result.correct
    ]
    ok = max(sizes) == bound and min(sizes) == bound
    return ClaimResult(
        "Lemma IV.3 (accepted bound, saturated by collusion)",
        ok,
        f"|accepted| = {max(sizes)} = bound",
    )


def _theorem_v3() -> ClaimResult:
    n, t = 9, 2
    for attack in ("id-forging", "divergence-valid"):
        result = _run(ConstantTimeRenaming, n, t, attack)
        report = check_renaming(result, n)
        if not report.ok or result.metrics.round_count != 8:
            return ClaimResult(
                "Theorem V.3 (strong renaming in 8 rounds)", False, attack
            )
    return ClaimResult(
        "Theorem V.3 (strong renaming in 8 rounds)", True, "namespace = N = 9"
    )


def _theorem_vi3() -> ClaimResult:
    n, t = 11, 2
    params = SystemParams(n, t)
    for attack in ALG4_ATTACKS:
        result = _run(TwoStepRenaming, n, t, attack)
        report = check_renaming(result, params.fast_namespace_bound)
        if not report.ok or result.metrics.round_count != 2:
            return ClaimResult(
                "Theorem VI.3 (2-step renaming)", False, attack
            )
    return ClaimResult(
        "Theorem VI.3 (2-step renaming)",
        True,
        f"{len(ALG4_ATTACKS)} attacks, 2 rounds",
    )


def _lemma_vi1_exact() -> ClaimResult:
    n, t = 11, 2
    result = _run(TwoStepRenaming, n, t, "selective-echo")
    top = max(result.ids[i] for i in result.correct)
    values = [result.processes[i].new_names[top] for i in result.correct]
    delta = max(values) - min(values)
    ok = delta == 2 * t * t
    return ClaimResult(
        "Lemma VI.1 (Delta = 2t^2, achieved exactly)", ok, f"Delta = {delta}"
    )


def _ablations() -> ClaimResult:
    cases = [
        (
            partial(
                OrderPreservingRenaming,
                options=RenamingOptions(validate_votes=False),
            ),
            7,
            2,
            "divergence",
            8,
            "isValid off",
        ),
        (
            partial(TwoStepRenaming, options=TwoStepOptions(clamp_offsets=False)),
            11,
            2,
            "selective-echo-starve",
            121,
            "clamp off",
        ),
    ]
    for factory, n, t, attack, namespace, label in cases:
        result = run_protocol(
            factory,
            n=n,
            t=t,
            ids=make_ids("uniform", n, seed=0),
            adversary=make_adversary(attack),
            seed=0,
        )
        report = check_renaming(result, namespace)
        if report.uniqueness and report.order_preservation:
            return ClaimResult(
                "Ablations (each defense removed fails)", False, label
            )
    return ClaimResult(
        "Ablations (each defense removed fails)", True, "E9a + E9b break on cue"
    )


def _early_deciding() -> ClaimResult:
    factory = partial(
        OrderPreservingRenaming, options=RenamingOptions(early_deciding=True)
    )
    result = _run(factory, 13, 4, "silent", trace=True)
    frozen = [
        e.round_no
        for e in result.trace.select(event="early_frozen")
        if e.process in result.correct
    ]
    deadline = SystemParams(13, 4).total_rounds
    ok = (
        len(frozen) == len(result.correct)
        and max(frozen) < deadline
        and check_renaming(result, SystemParams(13, 4).namespace_bound).ok
    )
    return ClaimResult(
        "Early-deciding extension (freeze before the deadline, safely)",
        ok,
        f"froze at round {max(frozen) if frozen else '-'} vs deadline {deadline}",
    )


CLAIMS: List[Callable[[], ClaimResult]] = [
    _theorem_iv10,
    _lemma_iv3,
    _theorem_v3,
    _theorem_vi3,
    _lemma_vi1_exact,
    _ablations,
    _early_deciding,
]


def verify_reproduction() -> List[ClaimResult]:
    """Run every condensed claim check; never raises on claim failure."""
    results = []
    for claim in CLAIMS:
        try:
            results.append(claim())
        except Exception as error:  # a crash is a FAIL, not an abort
            results.append(
                ClaimResult(claim.__name__.strip("_"), False, repr(error))
            )
    return results
