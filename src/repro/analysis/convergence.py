"""Convergence analytics: rank-spread series extracted from run traces.

Lemma IV.8's contraction claim is about the *spread* — the maximum, over
ids, of the distance between different correct processes' rank estimates.
Benches (E3/E4), the timeline renderer and several white-box tests all need
the same extraction; this module is the single implementation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..core.messages import Rank


def rank_snapshots(result, round_no: int) -> List[Dict[int, Rank]]:
    """The ``ranks`` trace events of all correct processes for one round."""
    if result.trace is None:
        return []
    return [
        event.detail
        for event in result.trace.select(event="ranks", round_no=round_no)
        if event.process in result.correct
    ]


def spread_for_ids(
    snapshots: Sequence[Dict[int, Rank]], ids: Iterable[int]
) -> Optional[Rank]:
    """Max over ``ids`` of (max − min) across snapshots; None if nothing is
    shared by at least two snapshots."""
    worst: Optional[Rank] = None
    for identifier in ids:
        values = [s[identifier] for s in snapshots if identifier in s]
        if len(values) < 2:
            continue
        spread = max(values) - min(values)
        if worst is None or spread > worst:
            worst = spread
    return worst


def spread_series(
    result, ids: Optional[Iterable[int]] = None
) -> Dict[int, Rank]:
    """Per-round worst rank spread over ``ids`` (default: the correct ids).

    Keys are round numbers that traced at least two rank snapshots sharing
    an id; the id-selection round (4) carries the initial spread, the last
    voting round the final one.
    """
    if result.trace is None:
        return {}
    if ids is None:
        ids = {result.ids[i] for i in result.correct}
    ids = set(ids)
    series: Dict[int, Rank] = {}
    for round_no in result.trace.rounds():
        snapshots = rank_snapshots(result, round_no)
        if len(snapshots) < 2:
            continue
        spread = spread_for_ids(snapshots, ids)
        if spread is not None:
            series[round_no] = spread
    return series


def contraction_factors(series: Union[Dict[int, Rank], Sequence[Rank]]) -> List[float]:
    """Round-over-round contraction factors of a spread series.

    Accepts the dict from :func:`spread_series` (ordered by round) or a
    plain sequence. A step to zero reports ``inf``.
    """
    if isinstance(series, dict):
        ordered = [series[key] for key in sorted(series)]
    else:
        ordered = list(series)
    factors: List[float] = []
    for previous, current in zip(ordered, ordered[1:]):
        if current == 0:
            factors.append(float("inf"))
        else:
            factors.append(float(previous / current))
    return factors
