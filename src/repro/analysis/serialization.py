"""Run serialization: persist results and traces as JSON for offline work.

A run is fully determined by its configuration, but re-running a large
sweep to re-inspect one trace is wasteful; `dump_run`/`load_run` archive
everything observable about a run (outputs, metrics, Byzantine slots, the
trace) in a stable JSON schema. Rank values are ``Fraction``s, which JSON
lacks — they round-trip as ``{"num": ..., "den": ...}`` objects.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, Union

from ..sim.runner import RunResult

#: Schema version written into every dump.
SCHEMA_VERSION = 1


def _encode(value: Any) -> Any:
    if isinstance(value, Fraction):
        return {"__fraction__": True, "num": value.numerator, "den": value.denominator}
    if isinstance(value, (frozenset, set, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        # JSON object keys must be strings; tag int keys for round-tripping.
        return {
            "__dict__": True,
            "items": [[_encode(k), _encode(v)] for k, v in value.items()],
        }
    if isinstance(value, list):
        return [_encode(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return {"__repr__": repr(value)}


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get("__fraction__"):
            return Fraction(value["num"], value["den"])
        if value.get("__dict__"):
            return {_decode(k): _decode(v) for k, v in value["items"]}
        if "__repr__" in value:
            return value["__repr__"]
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def run_to_dict(result: RunResult) -> Dict[str, Any]:
    """The JSON-ready representation of a finished run."""
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "n": result.n,
        "t": result.t,
        "byzantine": list(result.byzantine),
        "ids": {str(index): identifier for index, identifier in result.ids.items()},
        "outputs": {
            str(index): _encode(output) for index, output in result.outputs.items()
        },
        "metrics": {
            "id_bits": result.metrics.id_bits,
            "rank_bits": result.metrics.rank_bits,
            "peak_message_bits": result.metrics.peak_message_bits,
            "rounds": [
                {
                    "round": record.round_no,
                    "correct_messages": record.correct_messages,
                    "correct_bits": record.correct_bits,
                    "byzantine_messages": record.byzantine_messages,
                }
                for record in result.metrics.rounds
            ],
        },
    }
    if result.trace is not None:
        payload["trace"] = [
            {
                "process": event.process,
                "round": event.round_no,
                "event": event.event,
                "detail": _encode(event.detail),
            }
            for event in result.trace
        ]
    return payload


def dump_run(result: RunResult, path: Union[str, Path]) -> Path:
    """Write a run archive; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(run_to_dict(result), indent=1, sort_keys=True))
    return path


class RunArchive:
    """Read-only view over a dumped run: the subset of the
    :class:`RunResult` API that analysis code uses offline."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported archive schema {payload.get('schema')!r}"
            )
        self.n: int = payload["n"]
        self.t: int = payload["t"]
        self.byzantine = tuple(payload["byzantine"])
        self.ids = {int(k): v for k, v in payload["ids"].items()}
        self.outputs = {int(k): _decode(v) for k, v in payload["outputs"].items()}
        self.metrics = payload["metrics"]
        self.trace = [
            {
                "process": event["process"],
                "round": event["round"],
                "event": event["event"],
                "detail": _decode(event["detail"]),
            }
            for event in payload.get("trace", [])
        ]

    @property
    def correct(self):
        byz = set(self.byzantine)
        return tuple(i for i in range(self.n) if i not in byz)

    def outputs_by_id(self):
        return {self.ids[i]: self.outputs[i] for i in self.correct}

    def new_names(self):
        return {
            original: output
            for original, output in self.outputs_by_id().items()
            if isinstance(output, int)
        }

    def as_result_view(self) -> "_ArchivedResultView":
        """A live-result-compatible view for offline analysis.

        Reconstructs :class:`~repro.sim.metrics.RunMetrics` and
        :class:`~repro.sim.trace.TraceRecorder` objects from the archive so
        the timeline renderer, convergence analytics and view summaries work
        on archived runs exactly as on live ones (``repro-renaming replay``).
        """
        return _ArchivedResultView(self)


class _ArchivedResultView:
    """Duck-typed stand-in for a RunResult, backed by an archive."""

    def __init__(self, archive: "RunArchive") -> None:
        from ..sim.metrics import RoundMetrics, RunMetrics
        from ..sim.trace import TraceRecorder

        self.n = archive.n
        self.t = archive.t
        self.byzantine = archive.byzantine
        self.ids = archive.ids
        self.outputs = archive.outputs
        self.correct = archive.correct
        self.metrics = RunMetrics(
            id_bits=archive.metrics["id_bits"],
            rank_bits=archive.metrics["rank_bits"],
            peak_message_bits=archive.metrics["peak_message_bits"],
            rounds=[
                RoundMetrics(
                    round_no=record["round"],
                    correct_messages=record["correct_messages"],
                    correct_bits=record["correct_bits"],
                    byzantine_messages=record["byzantine_messages"],
                )
                for record in archive.metrics["rounds"]
            ],
        )
        self.trace = TraceRecorder() if archive.trace else None
        if self.trace is not None:
            for event in archive.trace:
                self.trace.bind(event["process"])(
                    event["round"], event["event"], event["detail"]
                )

    def outputs_by_id(self):
        return {self.ids[i]: self.outputs[i] for i in self.correct}

    def new_names(self):
        return {
            original: output
            for original, output in self.outputs_by_id().items()
            if isinstance(output, int)
        }


def load_run(path: Union[str, Path]) -> RunArchive:
    """Load a run archive written by :func:`dump_run`."""
    return RunArchive(json.loads(Path(path).read_text()))
