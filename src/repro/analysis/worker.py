"""Pull-based fabric workers: claim a lease, run the cell, push the result.

A :class:`Worker` is the execution half of the coordinator/worker split
(:mod:`repro.analysis.coordinator` is the other half). It owns no grid and
no report — it connects to a :class:`~repro.analysis.store.ResultStore`,
reads the run kind from the seeded header, and loops: claim the
lowest-indexed open cell, execute it, write the terminal record, repeat
until the store is complete. Because the store is the only shared state, a
worker can be an in-process call inside the coordinator (the default,
preserving single-host behavior exactly), a subprocess the coordinator
spawns, or a ``repro-renaming worker --store ...`` process started by hand
on another machine against shared storage.

Execution semantics mirror the single-host paths cell for cell:

* **Retry-once.** An untyped exception from the runner is retried once
  (``retries=1``); the second failure becomes a deterministic failure row
  built from the *second* error's message — exactly the serial executor's
  behavior, so fabric reports stay byte-identical to in-process ones.
* **Budgets.** With a :class:`~repro.analysis.supervisor.CellBudget`, each
  cell runs in a disposable child process policed by the same
  :func:`~repro.analysis.supervisor.budget_breach` decision the supervisor
  uses — a breach SIGKILLs the child and quarantines the cell with the
  identical typed kind and message; budget kills are never retried.
* **Heartbeats.** While a cell executes, the lease is renewed at a third
  of its duration (a daemon thread in-process, the police loop around the
  child otherwise). A worker that dies stops renewing; the lease expires
  and a peer takes the cell over. If *our* lease is taken over we drop the
  result on the floor (:class:`~repro.sim.errors.LeaseLost`): the store
  guarantees the first durable terminal record wins.

The translation between store payloads and the sweep/chaos row types lives
in the :data:`RUNNERS` registry — one :class:`CellRunner` per run kind —
which the coordinator also uses to decode terminal records back into
:class:`~repro.analysis.executor.ExperimentSummary` /
:class:`~repro.analysis.campaign.ChaosOutcome` rows. Tests and benches may
register additional kinds (e.g. synthetic no-op cells).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..sim.errors import LeaseLost, StoreError
from .backoff import PollBackoff
from .campaign import ChaosOutcome, ChaosTask, execute_chaos_task
from .executor import ExperimentSummary, RunTask, execute_task, logger
from .store import Claim, DEFAULT_LEASE_S, ResultStore, open_store
from .supervisor import CellBudget, budget_breach

__all__ = [
    "CellRunner",
    "PollBackoff",  # re-export: the class moved to repro.analysis.backoff
    "RUNNERS",
    "Worker",
    "WorkerStats",
    "default_worker_id",
]


@dataclass(frozen=True)
class CellRunner:
    """How one run kind's cells execute and (de)serialise.

    ``encode`` receives the runner's result plus the number of *failed*
    attempts that preceded it (chaos outcomes record that as ``retries``;
    sweeps ignore it). ``failure`` builds the deterministic failure payload
    after the retry is exhausted; ``budget_failure`` the quarantine payload
    for a budget kill; ``lease_row`` the row for a cell whose lease expired
    past ``max_attempts`` (a terminal record with no payload at all).
    """

    kind: str
    decode: Callable[[dict], Any]
    execute: Callable[[Any], Any]
    encode: Callable[[Any, int], dict]
    failure: Callable[[Any, str, int], dict]
    #: Terminal state for an exhausted crash retry ("failed" for sweeps —
    #: a deterministic failure row — "quarantined" for chaos, matching the
    #: journaled paths' record choice).
    failure_state: str
    budget_failure: Callable[[Any, str, str], dict]
    decode_row: Callable[[Any, dict], Any]
    lease_row: Callable[[Any, str], Any]
    set_retries: Callable[[dict, int], dict]


def _sweep_failure(task: RunTask, detail: str, attempts: int) -> dict:
    return ExperimentSummary.for_failure(task, detail).to_dict()


def _chaos_encode(outcome: ChaosOutcome, attempts: int) -> dict:
    outcome.retries = attempts
    return outcome.verdict_dict()


def _chaos_failure(task: ChaosTask, detail: str, attempts: int) -> dict:
    return ChaosOutcome(
        task=task, status="crashed", error=detail, retries=attempts - 1
    ).verdict_dict()


def _chaos_budget_failure(task: ChaosTask, kind: str, detail: str) -> dict:
    status = "timeout" if kind == "wall-budget" else "crashed"
    return ChaosOutcome(task=task, status=status, error=detail).verdict_dict()


def _chaos_set_retries(payload: dict, attempts: int) -> dict:
    payload["retries"] = attempts
    return payload


#: Run-kind registry (header ``kind`` -> execution/serialisation bundle).
RUNNERS: Dict[str, CellRunner] = {
    "sweep": CellRunner(
        kind="sweep",
        decode=RunTask.from_dict,
        execute=execute_task,
        encode=lambda summary, attempts: summary.to_dict(),
        failure=_sweep_failure,
        failure_state="failed",
        budget_failure=lambda task, kind, detail: _sweep_failure(
            task, detail, 1
        ),
        decode_row=lambda task, payload: ExperimentSummary.from_dict(payload),
        lease_row=lambda task, reason: ExperimentSummary.for_failure(
            task, f"LeaseLost: {reason}"
        ),
        set_retries=lambda payload, attempts: payload,
    ),
    "chaos": CellRunner(
        kind="chaos",
        decode=ChaosTask.from_dict,
        execute=execute_chaos_task,
        encode=_chaos_encode,
        failure=_chaos_failure,
        failure_state="quarantined",
        budget_failure=_chaos_budget_failure,
        decode_row=ChaosOutcome.from_verdict,
        lease_row=lambda task, reason: ChaosOutcome(
            task=task, status="crashed", error=f"LeaseLost: {reason}"
        ),
        set_retries=_chaos_set_retries,
    ),
}


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerStats:
    """Accounting for one :meth:`Worker.run`."""

    claimed: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    budget_kills: int = 0
    #: Results dropped because the lease was taken over mid-cell.
    lease_lost: int = 0
    kind: Optional[str] = None
    worker_id: str = ""
    extras: Dict[str, int] = field(default_factory=dict)


def _cell_main(kind: str, payload: dict, result_q) -> None:
    """Child-process body for budget-isolated execution: one attempt."""
    runner = RUNNERS[kind]
    try:
        task = runner.decode(payload)
        result = runner.execute(task)
        result_q.put(("done", runner.encode(result, 0)))
    except BaseException as exc:  # noqa: BLE001 — reported, not hidden
        result_q.put(("error", f"{type(exc).__name__}: {exc}"))


class Worker:
    """The pull loop: claim → execute → write back, until the store drains.

    ``budget=None`` (the default) executes cells in-process — identical to
    the serial executor, including retry-once semantics. A budget switches
    to one disposable child process per cell so a wall/RSS breach can be
    SIGKILLed without taking the worker down.

    ``wait_store_s`` lets a worker start before the coordinator: it blocks
    until the store is seeded. ``max_idle_s`` bounds how long a worker
    waits for new claimable cells once the store has been seen non-complete
    but fully leased (``None`` waits forever — the coordinator's reclaim
    loop guarantees progress).
    """

    def __init__(
        self,
        store,
        *,
        worker_id: Optional[str] = None,
        budget: Optional[CellBudget] = None,
        retries: int = 1,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = 0.2,
        poll_cap_s: float = 5.0,
        wait_store_s: float = 0.0,
        max_idle_s: Optional[float] = None,
        run_hook: Optional[Callable[[Any], None]] = None,
        poll_rng: Optional[Callable[[float, float], float]] = None,
    ) -> None:
        self.store: ResultStore = open_store(store)
        self.worker_id = worker_id or default_worker_id()
        self.budget = budget
        self.retries = retries
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s}")
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.backoff = PollBackoff(poll_s, max(poll_s, poll_cap_s), rng=poll_rng)
        self.wait_store_s = wait_store_s
        self.max_idle_s = max_idle_s
        self.run_hook = run_hook
        self.stats = WorkerStats(worker_id=self.worker_id)
        self._stop = False

    def stop(self) -> None:
        """Finish the in-flight cell, then exit the loop (SIGTERM path)."""
        self._stop = True

    # ------------------------------------------------------------------ run

    def run(self) -> WorkerStats:
        if self.wait_store_s > 0:
            header = self.store.wait_for_header(self.wait_store_s)
        else:
            header = self.store.header()
            if header is None:
                raise StoreError(
                    f"store {self.store.url} is not seeded — start the "
                    f"coordinator first or pass a wait timeout"
                )
        kind = header["kind"]
        try:
            runner = RUNNERS[kind]
        except KeyError:
            raise StoreError(
                f"store {self.store.url} holds run kind {kind!r}; this "
                f"worker knows {sorted(RUNNERS)}"
            ) from None
        self.stats = WorkerStats(kind=kind, worker_id=self.worker_id)
        idle_since: Optional[float] = None
        while not self._stop:
            claim = self.store.claim(self.worker_id, self.lease_s)
            if claim is None:
                if self.store.complete:
                    break
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif (
                    self.max_idle_s is not None
                    and now - idle_since > self.max_idle_s
                ):
                    logger.info(
                        "worker %s idle for %gs with the store incomplete; "
                        "exiting", self.worker_id, self.max_idle_s,
                    )
                    break
                delay = self.backoff.next_delay()
                if self.max_idle_s is not None:
                    # Never sleep past the idle deadline checked above.
                    delay = min(
                        delay, max(0.0, idle_since + self.max_idle_s - now)
                    )
                time.sleep(delay)
                continue
            idle_since = None
            self.backoff.reset()
            self.stats.claimed += 1
            if self.run_hook is not None:
                self.run_hook(runner.decode(claim.task))
            try:
                if self.budget is not None:
                    state, payload, reason = self._execute_isolated(
                        runner, claim
                    )
                else:
                    state, payload, reason = self._execute_inline(
                        runner, claim
                    )
                self._write_terminal(claim, state, payload, reason)
            except LeaseLost as exc:
                self.stats.lease_lost += 1
                logger.warning(
                    "worker %s dropped cell %d: %s",
                    self.worker_id, claim.cell, exc,
                )
        return self.stats

    # ------------------------------------------------------------ execution

    def _execute_inline(
        self, runner: CellRunner, claim: Claim
    ) -> Tuple[str, dict, Optional[str]]:
        """One cell in this process, lease renewed by a daemon thread."""
        stop = threading.Event()
        lost = threading.Event()

        def beat() -> None:
            while not stop.wait(self.lease_s / 3):
                try:
                    self.store.renew(claim, self.lease_s)
                except LeaseLost:
                    lost.set()
                    return
                except Exception as exc:  # noqa: BLE001 — transient store I/O
                    logger.warning(
                        "worker %s could not renew cell %d (%s); retrying",
                        self.worker_id, claim.cell, exc,
                    )

        thread = threading.Thread(target=beat, daemon=True)
        thread.start()
        try:
            return self._attempts(runner, claim)
        finally:
            stop.set()
            thread.join(timeout=5.0)
            if lost.is_set():
                # The terminal write below would raise LeaseLost anyway;
                # surfacing it here keeps the accounting in one place.
                raise LeaseLost(
                    f"lease on cell {claim.cell} expired mid-execution"
                )

    def _attempts(
        self, runner: CellRunner, claim: Claim
    ) -> Tuple[str, dict, Optional[str]]:
        """Retry-once execution, serial-path-identical semantics."""
        task = runner.decode(claim.task)
        attempts = 0
        while True:
            try:
                result = runner.execute(task)
            except Exception as exc:  # noqa: BLE001 — retried, then recorded
                attempts += 1
                detail = f"{type(exc).__name__}: {exc}"
                if attempts <= self.retries:
                    logger.warning(
                        "cell %d crashed (%s); retrying (%d/%d)",
                        claim.cell, detail, attempts, self.retries,
                    )
                    self._note_retry(claim)
                    continue
                self.stats.failed += 1
                return (
                    runner.failure_state,
                    runner.failure(task, detail, attempts),
                    "crashed",
                )
            return "finished", runner.encode(result, attempts), None

    def _execute_isolated(
        self, runner: CellRunner, claim: Claim
    ) -> Tuple[str, dict, Optional[str]]:
        """One disposable child process per attempt, budget-policed."""
        task = runner.decode(claim.task)
        attempts = 0
        while True:
            verdict = self._isolated_attempt(runner, claim)
            if verdict[0] == "done":
                payload = runner.set_retries(verdict[1], attempts)
                return "finished", payload, None
            if verdict[0] == "budget":
                _, kind, detail = verdict
                self.stats.budget_kills += 1
                return (
                    "quarantined",
                    runner.budget_failure(task, kind, detail),
                    kind,
                )
            detail = verdict[1]
            attempts += 1
            if attempts <= self.retries:
                logger.warning(
                    "cell %d crashed (%s); retrying (%d/%d)",
                    claim.cell, detail, attempts, self.retries,
                )
                self._note_retry(claim)
                continue
            self.stats.failed += 1
            return (
                runner.failure_state,
                runner.failure(task, detail, attempts),
                "crashed",
            )

    def _isolated_attempt(self, runner: CellRunner, claim: Claim) -> Tuple:
        """One child-process attempt: ``("done", payload)``,
        ``("error", detail)`` or ``("budget", kind, detail)``."""
        result_q: multiprocessing.Queue = multiprocessing.Queue()
        process = multiprocessing.Process(
            target=_cell_main,
            args=(runner.kind, claim.task, result_q),
            daemon=True,
        )
        process.start()
        started = time.monotonic()
        next_renew = started + self.lease_s / 3
        try:
            while True:
                process.join(timeout=0.05)
                if not process.is_alive():
                    break
                now = time.monotonic()
                if now >= next_renew:
                    self.store.renew(claim, self.lease_s)  # LeaseLost ↑
                    next_renew = now + self.lease_s / 3
                breach = budget_breach(
                    self.budget, started_at=started, pid=process.pid, now=now
                )
                if breach is not None:
                    process.kill()
                    process.join(timeout=2.0)
                    return ("budget", breach[0], breach[1])
            try:
                kind_, payload = result_q.get(timeout=1.0)
            except queue.Empty:
                return (
                    "error",
                    f"worker died mid-cell (exit code {process.exitcode})",
                )
            return ("done", payload) if kind_ == "done" else ("error", payload)
        except LeaseLost:
            process.kill()
            process.join(timeout=2.0)
            raise
        finally:
            result_q.close()
            result_q.cancel_join_thread()

    # ------------------------------------------------------------ write-back

    def _note_retry(self, claim: Claim) -> None:
        self.stats.retried += 1
        try:
            self.store.record_event(
                "retried", cell=claim.cell, worker=self.worker_id
            )
        except Exception:  # noqa: BLE001 — accounting, never blocks the cell
            pass

    def _write_terminal(
        self, claim: Claim, state: str, payload: dict, reason: Optional[str]
    ) -> None:
        if state == "finished":
            wrote = self.store.finish(claim, payload)
        elif state == "failed":
            wrote = self.store.fail(claim, payload, reason=reason or "crashed")
        else:
            wrote = self.store.quarantine(
                claim, payload, reason=reason or "crashed"
            )
        if wrote and state == "finished":
            self.stats.completed += 1
