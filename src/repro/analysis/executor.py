"""Parallel sweep execution with deterministic ordering and result caching.

:func:`repro.analysis.sweep.run_sweep` historically executed its
(algorithm × (n, t) × attack × seed) grid strictly serially. Every run is a
pure function of its configuration (all randomness derives from the run seed,
see :mod:`repro.sim.rng`), so sweeps are embarrassingly parallel. This module
owns that fan-out:

* :class:`SweepExecutor` distributes a :class:`~repro.analysis.sweep.SweepConfig`
  grid over a :class:`concurrent.futures.ProcessPoolExecutor` worker pool.
  Results are keyed by configuration index, never by completion order, so
  tables and CSVs are byte-identical to the serial path. ``workers=1`` falls
  back to a plain in-process loop (debugger- and profiler-friendly).
* :class:`ExperimentSummary` is the slim, picklable row that crosses the
  process boundary. The full :class:`~repro.analysis.experiments.ExperimentRecord`
  drags the entire :class:`~repro.sim.runner.RunResult` (live ``Process``
  objects, bound RNGs, traces) and is neither cheap nor reliably picklable.
* :class:`ResultCache` memoises summaries on disk, keyed by a stable hash of
  the configuration, so re-running a benchmark only executes configurations
  that changed.
* :func:`parallel_map` is the generic ordered fan-out used by benchmark
  grids that drive :func:`~repro.sim.runner.run_protocol` directly (custom
  options, ablations) and therefore cannot be expressed as a ``SweepConfig``.

Every run records its own wall-clock (``elapsed_s``) so sweeps double as
timing measurements.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..sim import DEFAULT_ENGINE, FaultPlan, SystemModel
from ..workloads.ids import make_ids
from .experiments import ExperimentRecord, run_experiment
from .journal import RunJournal, config_fingerprint
from .properties import PropertyReport
from .store import LocalDirStore

__all__ = [
    "ExperimentSummary",
    "ResultCache",
    "RunTask",
    "SweepExecutor",
    "SweepStats",
    "parallel_map",
    "resolve_workers",
    "summarize_record",
]

logger = logging.getLogger(__name__)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers=`` knob: ``None`` means one per CPU."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class RunTask:
    """One fully-specified sweep cell — primitives (plus the frozen,
    hashable :class:`~repro.sim.FaultPlan`) only, so it pickles cheaply
    into worker processes and hashes stably into cache keys.

    Every semantics-affecting knob of :func:`execute_task` lives here;
    anything that can change a run's outcome must be a field so that
    :meth:`to_dict` (journal fingerprints) and :meth:`ResultCache.key`
    (cache identity) see it. ``monitor``, ``chaos`` and ``model``
    serialise only when non-default, so grids that never touch them keep
    their journal fingerprints from earlier releases.
    """

    algorithm: str
    n: int
    t: int
    attack: str
    seed: int
    workload: str = "uniform"
    collect_trace: bool = False
    max_rounds: int = 1000
    engine: str = DEFAULT_ENGINE
    monitor: bool = False
    chaos: Optional[FaultPlan] = None
    model: Optional[SystemModel] = None

    def to_dict(self) -> dict:
        """JSON-ready cell description (journal headers, fingerprints)."""
        payload = {
            "algorithm": self.algorithm,
            "n": self.n,
            "t": self.t,
            "attack": self.attack,
            "seed": self.seed,
            "workload": self.workload,
            "collect_trace": self.collect_trace,
            "max_rounds": self.max_rounds,
            "engine": self.engine,
        }
        if self.monitor:
            payload["monitor"] = True
        if self.chaos is not None:
            payload["chaos"] = {
                "seed": self.chaos.seed,
                "drop": self.chaos.drop,
                "duplicate": self.chaos.duplicate,
                "corrupt": self.chaos.corrupt,
                "crashes": [list(entry) for entry in self.chaos.crashes],
                "extra_crashes": self.chaos.extra_crashes,
                "crash_round": self.chaos.crash_round,
            }
        # classic is the absent-field default, so an explicit classic model
        # and "no model" hash to the same cache key (they run identically).
        if self.model is not None and not self.model.is_classic:
            payload["model"] = self.model.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunTask":
        payload = dict(payload)
        chaos = payload.get("chaos")
        if chaos is not None:
            chaos = dict(chaos)
            chaos["crashes"] = tuple(
                tuple(entry) for entry in chaos.get("crashes", ())
            )
            payload["chaos"] = FaultPlan(**chaos)
        model = payload.get("model")
        if model is not None:
            payload["model"] = SystemModel.from_dict(model)
        return cls(**payload)


@dataclass
class ExperimentSummary:
    """One run's outcome in transferable table-row form.

    Field-compatible with :class:`~repro.analysis.experiments.ExperimentRecord`
    for everything the tables, ``group_by`` and the CSV exporter read — but
    carries no simulator state, so it crosses process boundaries and
    serialises to JSON for the on-disk cache.

    ``settled_round`` is the last round at which any correct process settled
    its decision (decision latency; requires ``collect_trace=True``, else
    ``None``). ``elapsed_s`` is the run's own wall-clock; ``cached`` marks
    summaries restored from a :class:`ResultCache` rather than executed.

    ``failed=True`` marks a configuration whose worker raised even after a
    retry; ``error`` then carries ``"ExceptionType: message"``. Failed
    summaries are never cached and every property flag is False — a failure
    can never read as a success.
    """

    algorithm: str
    n: int
    t: int
    attack: str
    seed: int
    workload: str
    rounds: int
    correct_messages: int
    correct_bits: int
    peak_message_bits: int
    byzantine: Tuple[int, ...]
    report: PropertyReport
    settled_round: Optional[int] = None
    elapsed_s: float = 0.0
    cached: bool = False
    failed: bool = False
    error: Optional[str] = None

    @classmethod
    def for_failure(
        cls, task: "RunTask", error: Union[BaseException, str]
    ) -> "ExperimentSummary":
        """A loud placeholder row for a configuration whose run raised.

        ``error`` is the exception itself, or the already-formatted
        ``"ExceptionType: message"`` string when the failure crossed a
        process boundary (supervised workers report strings — the exception
        object died with the worker).
        """
        if isinstance(error, str):
            message = error
        else:
            message = f"{type(error).__name__}: {error}"
        report = PropertyReport(
            names={},
            namespace=0,
            validity=False,
            termination=False,
            uniqueness=False,
            order_preservation=False,
            violations=[f"failed: {message}"],
        )
        return cls(
            algorithm=task.algorithm,
            n=task.n,
            t=task.t,
            attack=task.attack,
            seed=task.seed,
            workload=task.workload,
            rounds=0,
            correct_messages=0,
            correct_bits=0,
            peak_message_bits=0,
            byzantine=(),
            report=report,
            failed=True,
            error=message,
        )

    @property
    def max_name(self) -> int:
        return max(self.report.names.values()) if self.report.names else 0

    @property
    def effective_rounds(self) -> int:
        """Decision latency: settled-round when traced (baselines that idle
        to a fixed horizon settle early), wall rounds otherwise."""
        return self.settled_round if self.settled_round is not None else self.rounds

    def to_dict(self) -> dict:
        """JSON-ready payload (cache schema)."""
        report = self.report
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "t": self.t,
            "attack": self.attack,
            "seed": self.seed,
            "workload": self.workload,
            "rounds": self.rounds,
            "correct_messages": self.correct_messages,
            "correct_bits": self.correct_bits,
            "peak_message_bits": self.peak_message_bits,
            "byzantine": list(self.byzantine),
            "settled_round": self.settled_round,
            "elapsed_s": self.elapsed_s,
            "failed": self.failed,
            "error": self.error,
            "report": {
                "names": {str(k): v for k, v in report.names.items()},
                "namespace": report.namespace,
                "validity": report.validity,
                "termination": report.termination,
                "uniqueness": report.uniqueness,
                "order_preservation": report.order_preservation,
                "violations": list(report.violations),
                "beyond_model": report.beyond_model,
                "injected": dict(report.injected),
                "model": report.model,
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSummary":
        """Inverse of :meth:`to_dict` (original-id keys back to ints)."""
        report = payload["report"]
        return cls(
            algorithm=payload["algorithm"],
            n=payload["n"],
            t=payload["t"],
            attack=payload["attack"],
            seed=payload["seed"],
            workload=payload["workload"],
            rounds=payload["rounds"],
            correct_messages=payload["correct_messages"],
            correct_bits=payload["correct_bits"],
            peak_message_bits=payload["peak_message_bits"],
            byzantine=tuple(payload["byzantine"]),
            settled_round=payload["settled_round"],
            elapsed_s=payload["elapsed_s"],
            failed=payload.get("failed", False),
            error=payload.get("error"),
            report=PropertyReport(
                names={int(k): v for k, v in report["names"].items()},
                namespace=report["namespace"],
                validity=report["validity"],
                termination=report["termination"],
                uniqueness=report["uniqueness"],
                order_preservation=report["order_preservation"],
                violations=list(report["violations"]),
                beyond_model=report.get("beyond_model", False),
                injected=dict(report.get("injected", {})),
                model=report.get("model"),
            ),
        )


def _settled_round(record: ExperimentRecord) -> Optional[int]:
    """Last settle event among correct processes, if the run was traced."""
    trace = record.result.trace
    if trace is None:
        return None
    rounds = [
        event.round_no
        for event in trace.select(event="settled")
        if event.process in record.result.correct
    ]
    return max(rounds) if rounds else None


def summarize_record(
    record: ExperimentRecord, workload: str = "uniform", elapsed_s: float = 0.0
) -> ExperimentSummary:
    """Distil a full :class:`ExperimentRecord` into a transferable summary."""
    return ExperimentSummary(
        algorithm=record.algorithm,
        n=record.n,
        t=record.t,
        attack=record.attack,
        seed=record.seed,
        workload=workload,
        rounds=record.rounds,
        correct_messages=record.correct_messages,
        correct_bits=record.correct_bits,
        peak_message_bits=record.peak_message_bits,
        byzantine=tuple(record.result.byzantine),
        report=record.report,
        settled_round=_settled_round(record),
        elapsed_s=elapsed_s,
    )


def execute_task(task: RunTask) -> ExperimentSummary:
    """Run one sweep cell and summarise it (the worker entry point)."""
    start = time.perf_counter()
    ids = make_ids(task.workload, task.n, seed=task.seed)
    record = run_experiment(
        task.algorithm,
        task.n,
        task.t,
        ids,
        attack=task.attack,
        seed=task.seed,
        collect_trace=task.collect_trace,
        max_rounds=task.max_rounds,
        engine=task.engine,
        monitor=task.monitor,
        chaos=task.chaos,
        model=task.model,
    )
    return summarize_record(
        record, workload=task.workload, elapsed_s=time.perf_counter() - start
    )


def _summary_checksum(body: dict) -> str:
    """Content checksum of a summary payload (canonical JSON, SHA-256)."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk memo of finished sweep cells, one JSON file per configuration.

    Keys are SHA-256 hashes of the full :meth:`RunTask.to_dict` payload plus
    a schema version. Deriving the key from ``to_dict`` — rather than an
    independently maintained field list — means every semantics-affecting
    knob (algorithm, size, attack, seed, workload, round cap, tracing,
    engine, safety monitoring, chaos fault plan) participates by
    construction: adding a field to :class:`RunTask` cannot silently leave
    the cache key behind. Schema bumps invalidate everything at once.

    Entries are checksummed envelopes ``{"schema", "checksum", "summary"}``:
    :meth:`load` verifies the schema version and the SHA-256 of the summary
    payload before trusting an entry, so a truncated write, a flipped bit or
    a stale-schema file is *logged and recomputed* — treated as a miss, never
    as an error and never as silently-wrong data. Failed summaries
    (:attr:`ExperimentSummary.failed`) are refused by :meth:`store`.

    The engine is part of the key even though all engines are proven to
    produce identical summaries: a cache hit must never mask an engine
    divergence that the differential suite would have caught.

    Storage delegates to a flat-rooted
    :class:`~repro.analysis.store.LocalDirStore` memo area — the cache *is*
    the fabric's memo tier, and the on-disk files are byte-identical to the
    pre-fabric layout, so existing caches keep hitting.
    """

    #: Bumped whenever key composition or entry layout changes (5: keys
    #: cover the system-model axis and summaries carry the report's model).
    SCHEMA = 5

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._store = LocalDirStore(self.root, memo_subdir="")

    def key(self, task: RunTask) -> str:
        payload = json.dumps(
            {"schema": self.SCHEMA, **task.to_dict()},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, task: RunTask) -> Path:
        return self.root / f"{self.key(task)}.json"

    def load(self, task: RunTask) -> Optional[ExperimentSummary]:
        """Return the cached summary for ``task``, or ``None`` on a miss.

        A present-but-unusable entry (corrupt JSON, truncated write, bad
        checksum, stale schema) is logged and treated as a miss so the
        configuration is recomputed.
        """
        key = self.key(task)
        try:
            body = self._store.load_memo(key, schema=self.SCHEMA)
            if body is None:
                return None  # plain miss: no entry
            summary = ExperimentSummary.from_dict(body)
        except (ValueError, KeyError, TypeError) as exc:
            logger.warning(
                "discarding unusable cache entry %s (%s); recomputing",
                f"{key}.json", exc,
            )
            return None
        summary.cached = True
        return summary

    def store(self, task: RunTask, summary: ExperimentSummary) -> None:
        """Persist ``summary`` under ``task``'s key.

        The write is atomic *and durable*: temp file in the cache
        directory, flush + fsync, then ``os.replace`` — without the fsync,
        a rename can land before the data on a crash and leave a
        zero-length "entry" at the final path. A kill at any point leaves
        either no entry or a complete one; a leftover ``.tmp`` from a
        killed writer is inert (never read, overwritten by the next store).

        Failed summaries are never cached: a transient worker failure must
        not poison future sweeps.
        """
        if summary.failed:
            return
        self._store.store_memo(
            self.key(task), summary.to_dict(), schema=self.SCHEMA
        )


@dataclass
class SweepStats:
    """Accounting for one :meth:`SweepExecutor.run` invocation."""

    executed: int = 0
    from_cache: int = 0
    elapsed_s: float = 0.0
    #: Configurations whose first attempt raised and were retried.
    retried: int = 0
    #: Configurations that failed even after the retry (their rows carry
    #: ``failed=True`` — they are reported, not dropped).
    failed: int = 0
    #: Cells restored from a run journal instead of executed (resume).
    restored: int = 0
    #: Supervised cells killed for exceeding a wall/RSS budget.
    budget_kills: int = 0


class SweepExecutor:
    """Fan a sweep grid out over a worker pool, cache-first.

    ``workers=None`` uses one worker per CPU; ``workers=1`` keeps everything
    in-process. ``cache`` is a directory path or a :class:`ResultCache`;
    ``None`` disables caching. ``run_hook`` (if given) is called in the
    parent with each :class:`RunTask` that is actually executed — tests use
    it as a run counter, progress displays as a ticker.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Union[None, str, Path, ResultCache] = None,
        run_hook: Optional[Callable[[RunTask], None]] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.run_hook = run_hook
        self.stats = SweepStats()

    def run(
        self,
        config,
        *,
        journal: Optional[RunJournal] = None,
        budget=None,
        store=None,
        coordinator_only: bool = False,
        run_id: str = "fabric",
    ) -> List[ExperimentSummary]:
        """Execute (or restore) every configuration in ``config``'s grid.

        The returned list is ordered exactly as
        ``SweepConfig.configurations()`` yields, regardless of worker
        scheduling.

        ``journal`` makes the sweep durable: every cell writes
        ``started``/``finished``/``failed`` records through the
        write-ahead journal, cells the journal already records as terminal
        are restored instead of executed (resume), and execution runs
        under the :class:`~repro.analysis.supervisor.WorkerSupervisor`
        (optionally with a per-cell ``budget``), so SIGINT/SIGTERM drains
        and raises :class:`~repro.sim.errors.RunInterrupted` instead of
        discarding in-flight work.

        ``store`` (a store URL or
        :class:`~repro.analysis.store.ResultStore`) runs the grid on the
        coordinator/worker fabric instead: cells are seeded into the store
        and executed by lease-claiming workers (in-process for
        ``workers=1``, spawned subprocesses otherwise, or externally
        started ones with ``coordinator_only=True``). The store carries
        the run's durability, so ``journal`` and ``store`` are mutually
        exclusive.
        """
        if journal is not None and store is not None:
            raise ValueError(
                "journal= and store= are mutually exclusive: the store "
                "fabric carries its own durability"
            )
        start = time.perf_counter()
        tasks = self.tasks_for(config)
        if store is not None:
            return self._run_fabric(
                tasks, store, budget, start,
                coordinator_only=coordinator_only, run_id=run_id,
            )
        if journal is not None:
            return self._run_journaled(tasks, journal, budget, start)
        results: List[Optional[ExperimentSummary]] = [None] * len(tasks)

        misses: List[Tuple[int, RunTask]] = []
        from_cache = 0
        for index, task in enumerate(tasks):
            summary = self.cache.load(task) if self.cache is not None else None
            if summary is not None:
                results[index] = summary
                from_cache += 1
            else:
                misses.append((index, task))

        if self.run_hook is not None:
            for _, task in misses:
                self.run_hook(task)

        retried, failed = self._run_misses(misses, results)

        if self.cache is not None:
            for index, task in misses:
                self.cache.store(task, results[index])

        self.stats = SweepStats(
            executed=len(misses),
            from_cache=from_cache,
            elapsed_s=time.perf_counter() - start,
            retried=retried,
            failed=failed,
        )
        return results  # type: ignore[return-value]

    @staticmethod
    def tasks_for(config) -> List[RunTask]:
        """Expand ``config``'s grid into the ordered cell list."""
        return [
            RunTask(
                algorithm=algorithm,
                n=n,
                t=t,
                attack=attack,
                seed=seed,
                workload=config.workload,
                collect_trace=config.collect_trace,
                max_rounds=config.max_rounds,
                engine=getattr(config, "engine", DEFAULT_ENGINE),
                model=getattr(config, "model", None),
            )
            for algorithm, n, t, attack, seed in config.configurations()
        ]

    @staticmethod
    def fingerprint(tasks: Sequence[RunTask]) -> str:
        """The sweep's config fingerprint (over the expanded cell list)."""
        return config_fingerprint("sweep", [task.to_dict() for task in tasks])

    def _run_fabric(
        self,
        tasks: List[RunTask],
        store,
        budget,
        start: float,
        *,
        coordinator_only: bool,
        run_id: str,
    ) -> List[ExperimentSummary]:
        """The fabric path: seed a store, let lease-claiming workers drain
        it, stream the rows back. Ordering, caching, retry-once semantics
        and failure rows all match the in-process paths, so the resulting
        report is canonically identical."""
        from .coordinator import Coordinator  # local: avoids the cycle

        coordinator = Coordinator(
            store,
            workers=self.workers,
            cache=self.cache,
            run_hook=self.run_hook,
            budget=budget,
            coordinator_only=coordinator_only,
        )
        results = coordinator.run(
            "sweep",
            [task.to_dict() for task in tasks],
            fingerprint=self.fingerprint(tasks),
            run_id=run_id,
        )
        cstats = coordinator.stats
        self.stats = SweepStats(
            executed=cstats.executed,
            from_cache=cstats.from_cache,
            elapsed_s=time.perf_counter() - start,
            retried=cstats.retried,
            failed=cstats.failed,
            restored=cstats.restored,
            budget_kills=cstats.budget_kills,
        )
        return results

    def _run_journaled(
        self,
        tasks: List[RunTask],
        journal: RunJournal,
        budget,
        start: float,
    ) -> List[ExperimentSummary]:
        """The durable path: restore terminal cells, supervise the rest.

        Journal discipline per cell: ``started`` is appended when the cell
        is handed to a worker, a terminal record (``finished`` with the
        summary, ``failed`` for a deterministic failure row,
        ``quarantined`` for a budget kill) when its fate is known. Cache
        hits journal ``finished`` immediately — resume must not depend on
        the cache still being there.
        """
        from .supervisor import WorkerSupervisor  # local: avoids the cycle

        journal.verify_fingerprint(self.fingerprint(tasks))
        state = journal.state
        results: List[Optional[ExperimentSummary]] = [None] * len(tasks)
        restored = 0
        open_cells: List[Tuple[int, RunTask]] = []
        for index, task in enumerate(tasks):
            terminal = state.terminal(index)
            if terminal is not None:
                results[index] = ExperimentSummary.from_dict(
                    terminal["summary"]
                )
                restored += 1
            else:
                open_cells.append((index, task))

        misses: List[Tuple[int, RunTask]] = []
        from_cache = 0
        for index, task in open_cells:
            summary = self.cache.load(task) if self.cache is not None else None
            if summary is not None:
                results[index] = summary
                journal.append(
                    "finished", cell=index, summary=summary.to_dict()
                )
                from_cache += 1
            else:
                misses.append((index, task))

        def on_start(index: int, task: RunTask) -> None:
            journal.append("started", cell=index)
            if self.run_hook is not None:
                self.run_hook(task)

        def on_result(index: int, task: RunTask, summary) -> None:
            results[index] = summary
            journal.append("finished", cell=index, summary=summary.to_dict())
            if self.cache is not None:
                self.cache.store(task, summary)

        def on_failure(failure) -> None:
            summary = ExperimentSummary.for_failure(
                failure.task, failure.detail
            )
            results[failure.index] = summary
            record = "failed" if failure.kind == "crashed" else "quarantined"
            journal.append(
                record,
                cell=failure.index,
                reason=failure.kind,
                summary=summary.to_dict(),
            )

        supervisor = WorkerSupervisor(
            execute_task,
            workers=self.workers,
            budget=budget,
            retries=1,
        )
        try:
            sup_stats = supervisor.run(
                misses,
                on_start=on_start,
                on_result=on_result,
                on_failure=on_failure,
            )
        except BaseException:
            # Preemption (RunInterrupted) or a hard error: make everything
            # recorded so far durable before unwinding. The interrupted
            # marker is informational — the crash set already says what
            # was in flight.
            try:
                journal.append("interrupted")
                journal.flush()
            except Exception:  # noqa: BLE001 — best-effort on teardown
                pass
            raise
        self.stats = SweepStats(
            executed=sup_stats.completed + sup_stats.failed,
            from_cache=from_cache,
            elapsed_s=time.perf_counter() - start,
            retried=sup_stats.retried,
            failed=sup_stats.failed,
            restored=restored,
            budget_kills=sup_stats.budget_kills,
        )
        return results  # type: ignore[return-value]

    def _run_misses(
        self,
        misses: List[Tuple[int, RunTask]],
        results: List[Optional[ExperimentSummary]],
    ) -> Tuple[int, int]:
        """Execute the cache misses, surviving worker failures.

        A task whose attempt raises is retried exactly once; a second failure
        records an :meth:`ExperimentSummary.for_failure` row at the task's
        index and the sweep continues — one bad configuration never aborts
        the grid. Returns ``(retried, failed)`` counts.
        """
        if self.workers == 1 or len(misses) <= 1:
            first_failures = self._run_serial(misses, results)
        else:
            first_failures = self._run_pool(misses, results)

        failed = 0
        for index, task, error in first_failures:
            logger.warning(
                "sweep cell %s raised %s: %s; retrying once",
                task,
                type(error).__name__,
                error,
            )
            try:
                results[index] = execute_task(task)
            except Exception as retry_error:  # noqa: BLE001 — recorded, not hidden
                logger.error(
                    "sweep cell %s failed again (%s: %s); recording as failed",
                    task,
                    type(retry_error).__name__,
                    retry_error,
                )
                results[index] = ExperimentSummary.for_failure(task, retry_error)
                failed += 1
        return len(first_failures), failed

    @staticmethod
    def _run_serial(
        misses: List[Tuple[int, RunTask]],
        results: List[Optional[ExperimentSummary]],
    ) -> List[Tuple[int, RunTask, BaseException]]:
        failures: List[Tuple[int, RunTask, BaseException]] = []
        for index, task in misses:
            try:
                results[index] = execute_task(task)
            except Exception as error:  # noqa: BLE001 — retried by caller
                failures.append((index, task, error))
        return failures

    def _run_pool(
        self,
        misses: List[Tuple[int, RunTask]],
        results: List[Optional[ExperimentSummary]],
    ) -> List[Tuple[int, RunTask, BaseException]]:
        failures: List[Tuple[int, RunTask, BaseException]] = []
        pool_size = min(self.workers, len(misses))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = {
                pool.submit(execute_task, task): (index, task)
                for index, task in misses
            }
            for future in as_completed(futures):
                index, task = futures[future]
                try:
                    results[index] = future.result()
                except Exception as error:  # noqa: BLE001 — retried by caller
                    failures.append((index, task, error))
        failures.sort(key=lambda item: item[0])
        return failures


def _call_star(item: Tuple[Callable, tuple]):
    fn, args = item
    return fn(*args)


def parallel_map(
    fn: Callable,
    argtuples: Iterable[Sequence],
    *,
    workers: Optional[int] = None,
) -> list:
    """Ordered ``[fn(*args) for args in argtuples]`` over a process pool.

    The escape hatch for benchmark grids that call ``run_protocol`` with
    custom options and so cannot go through :class:`SweepExecutor`. ``fn``
    and every argument must be picklable (module-level functions and
    primitives/dataclasses). ``workers=1`` — and single-item inputs — run
    serially in-process; ``workers=None`` uses one worker per CPU.
    """
    tasks = [tuple(args) for args in argtuples]
    workers = resolve_workers(workers)
    if workers == 1 or len(tasks) <= 1:
        return [fn(*args) for args in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(_call_star, [(fn, args) for args in tasks]))
