"""Analysis layer: property checking, experiment harness, sweeps, tables."""

from .experiments import (
    ALGORITHMS,
    AlgorithmSpec,
    ExperimentRecord,
    run_experiment,
)
from .campaign import (
    CHAOS_PRESETS,
    ChaosCampaign,
    ChaosOutcome,
    ChaosTask,
    TriageReport,
    chaos_grid,
    execute_chaos_task,
)
from .charts import bar_chart, decay_ratio, log_curve, step_curve
from .coordinator import Coordinator, CoordinatorStats
from .executor import (
    ExperimentSummary,
    ResultCache,
    RunTask,
    SweepExecutor,
    SweepStats,
    parallel_map,
    summarize_record,
)
from .convergence import (
    contraction_factors,
    rank_snapshots,
    spread_for_ids,
    spread_series,
)
from .export import CSV_FIELDS, export_csv, record_row
from .journal import (
    JournalState,
    RunJournal,
    atomic_write_text,
    canonical_json,
    config_fingerprint,
    list_runs,
    scan_journal,
)
from .store import (
    Claim,
    LocalDirStore,
    ResultStore,
    SqliteStore,
    open_store,
    store_doctor,
)
from .supervisor import (
    CellBudget,
    CellFailure,
    SupervisorStats,
    WorkerSupervisor,
    budget_breach,
)
from .backoff import PollBackoff
from .worker import Worker, WorkerStats
from .properties import PropertyReport, check_renaming
from .serialization import RunArchive, dump_run, load_run, run_to_dict
from .stats import Summary, fraction_true, median_of, ratios, summarise
from .sweep import SweepConfig, group_by, run_sweep
from .tables import banner, format_table
from .timeline import render_timeline, summarize_views
from .verify import ClaimResult, verify_reproduction

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "CHAOS_PRESETS",
    "CSV_FIELDS",
    "CellBudget",
    "CellFailure",
    "ChaosCampaign",
    "ChaosOutcome",
    "ChaosTask",
    "Claim",
    "ClaimResult",
    "Coordinator",
    "CoordinatorStats",
    "ExperimentRecord",
    "ExperimentSummary",
    "JournalState",
    "LocalDirStore",
    "PropertyReport",
    "ResultCache",
    "ResultStore",
    "RunArchive",
    "RunJournal",
    "RunTask",
    "SqliteStore",
    "Summary",
    "SupervisorStats",
    "SweepConfig",
    "SweepExecutor",
    "SweepStats",
    "TriageReport",
    "PollBackoff",
    "Worker",
    "WorkerStats",
    "WorkerSupervisor",
    "atomic_write_text",
    "budget_breach",
    "banner",
    "bar_chart",
    "canonical_json",
    "chaos_grid",
    "check_renaming",
    "config_fingerprint",
    "execute_chaos_task",
    "list_runs",
    "open_store",
    "scan_journal",
    "store_doctor",
    "contraction_factors",
    "decay_ratio",
    "dump_run",
    "export_csv",
    "format_table",
    "fraction_true",
    "group_by",
    "load_run",
    "log_curve",
    "median_of",
    "parallel_map",
    "rank_snapshots",
    "record_row",
    "spread_for_ids",
    "spread_series",
    "run_to_dict",
    "step_curve",
    "verify_reproduction",
    "ratios",
    "render_timeline",
    "run_experiment",
    "run_sweep",
    "summarise",
    "summarize_record",
    "summarize_views",
]
