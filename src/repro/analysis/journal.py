"""Write-ahead run journal: durable, resumable sweeps and campaigns.

A long grid (10k sweep cells, a nightly chaos campaign) must survive the
orchestrator being SIGKILLed, OOM-killed or Ctrl-C'd — the same way the
crash-fault protocols in the paper's lineage survive process crashes: by
making progress durable *before* acting on it and making recovery a pure
replay. This module owns that discipline:

* :class:`RunJournal` — an append-only JSONL file, one checksummed record
  per line, fsync'd before the caller proceeds. Record types:

  - ``header`` — written once at creation: the run kind (``sweep`` /
    ``chaos``), the full config payload, the cell count, and the config
    **fingerprint** (SHA-256 over the expanded task list) that resume
    verifies before trusting a journal.
  - ``started`` — cell ``i`` was dispatched to a worker. A ``started``
    without a matching terminal record is the *crash set*: cells that were
    in flight when the orchestrator died, re-queued verbatim on resume.
  - ``finished`` — cell ``i`` completed with its result payload (an
    :class:`~repro.analysis.executor.ExperimentSummary` or
    :class:`~repro.analysis.campaign.ChaosOutcome` dict). Terminal.
  - ``failed`` — cell ``i`` ran and failed deterministically (retry
    exhausted); carries the failure row. Terminal: resume restores the row
    instead of re-running (the control run would fail identically).
  - ``quarantined`` — the supervisor killed cell ``i``'s worker (wall/RSS
    budget, worker death); carries the reason and the quarantine row.
    Terminal, and what ``runs doctor`` triages first.
  - ``interrupted`` — a graceful SIGINT/SIGTERM drain completed; purely a
    marker for ``runs list``/``doctor`` (the crash set already encodes
    what was in flight).

* :func:`scan_journal` — replay a journal into a :class:`JournalState`. A
  **torn tail** (the final line cut mid-append by a crash) is dropped
  silently — fsync ordering guarantees it was never acted on. Corruption
  anywhere *before* the tail raises
  :class:`~repro.sim.errors.JournalError`: that journal cannot be trusted.

* :func:`config_fingerprint` / :func:`canonical_json` — stable hashing and
  the wall-clock-scrubbed report form used to assert that a resumed run is
  byte-identical to an uninterrupted control run.

* :func:`atomic_write_text` — the write-temp-then-``os.replace`` (with
  fsync) discipline shared by the journal's siblings (CSV/JSON exports,
  the result cache), so a kill mid-write never leaves a torn artifact at
  the target path.

Test hook: ``REPRO_JOURNAL_CRASH_AFTER=<type>:<count>`` SIGKILLs the
process immediately after the ``count``-th record of ``type`` appended *by
this process* becomes durable — the deterministic way the kill/resume suite
and ``make resume-smoke`` generate mid-flight crashes.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..sim.errors import JournalError

__all__ = [
    "CRASH_HOOK_ENV",
    "JournalState",
    "RunJournal",
    "atomic_write_text",
    "canonical_json",
    "config_fingerprint",
    "list_runs",
    "scan_journal",
    "scrub_volatile",
]

#: Journal format version; bumping it invalidates resume across versions.
JOURNAL_VERSION = 1

#: Record types a journal may contain (stable set; scan rejects others).
#: ``leased``/``reclaimed`` mirror the fabric's lease lifecycle (a worker
#: claimed cell ``i`` / an expired lease on cell ``i`` was taken back) when
#: a coordinator journals a distributed run — informational cell events,
#: neither ``started`` nor terminal.
RECORD_TYPES = (
    "header", "started", "finished", "failed", "quarantined", "interrupted",
    "leased", "reclaimed",
)

#: Terminal per-cell record types: the cell needs no further execution.
TERMINAL_TYPES = ("finished", "failed", "quarantined")

#: Environment variable for the deterministic crash hook (tests/CI only).
CRASH_HOOK_ENV = "REPRO_JOURNAL_CRASH_AFTER"


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _record_checksum(version: int, seq: int, type_: str, data: dict) -> str:
    body = _canonical({"v": version, "seq": seq, "type": type_, "data": data})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def config_fingerprint(kind: str, cells: List[dict]) -> str:
    """Fingerprint a run: SHA-256 over the *expanded* cell list.

    Hashing the expanded cells (not the compact config that generated them)
    means any change that alters what would actually execute — a new
    algorithm registered mid-grid, a regime filter change, reordered seeds —
    fails the resume-time fingerprint check instead of silently splicing two
    different runs together.
    """
    payload = _canonical(
        {"journal": JOURNAL_VERSION, "kind": kind, "cells": cells}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def scrub_volatile(payload):
    """Recursively zero wall-clock fields in a report payload.

    Two runs of the same seeded grid differ only in wall-clock measurements
    (``elapsed_s``) and pool size (``workers``); everything else is a pure
    function of the configuration. Scrubbing those fields yields the
    *canonical* report — the form in which a resumed run must be
    byte-identical to its uninterrupted control run.
    """
    if isinstance(payload, dict):
        return {
            key: (0.0 if key == "elapsed_s" else 1 if key == "workers"
                  else scrub_volatile(value))
            for key, value in payload.items()
        }
    if isinstance(payload, list):
        return [scrub_volatile(item) for item in payload]
    return payload


def canonical_json(payload: dict) -> str:
    """The canonical (volatile-scrubbed, key-sorted) JSON of a report."""
    return _canonical(scrub_volatile(payload))


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically: temp file in the target
    directory, flush + fsync, then ``os.replace``.

    A crash at any point leaves either the old content or the new content at
    ``path`` — never a torn file. The temp file carries the target's name
    plus ``.tmp`` so a leftover from a killed writer is recognisable (and
    harmlessly overwritten by the next attempt).
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


@dataclass
class JournalState:
    """The replayed content of one journal.

    ``events`` keeps the per-cell record sequence (type, seq) in journal
    order — ``runs doctor`` uses it to detect re-executed finished cells
    (a ``started`` *after* a terminal record, which a correct resume never
    produces).
    """

    path: Path
    header: Optional[dict] = None
    #: cell index -> number of ``started`` records.
    started: Dict[int, int] = field(default_factory=dict)
    #: cell index -> payload of its terminal record (first one wins).
    finished: Dict[int, dict] = field(default_factory=dict)
    failed: Dict[int, dict] = field(default_factory=dict)
    quarantined: Dict[int, dict] = field(default_factory=dict)
    #: cell index -> [(record type, seq), ...] in journal order.
    events: Dict[int, List[Tuple[str, int]]] = field(default_factory=dict)
    interrupted: bool = False
    records: int = 0
    #: Byte offset of the end of the last *good* record (torn-tail repair
    #: truncates the file to this length).
    good_bytes: int = 0
    #: True when the final line was torn (dropped, not an error).
    torn: bool = False

    @property
    def run_id(self) -> Optional[str]:
        return self.header.get("run_id") if self.header else None

    @property
    def kind(self) -> Optional[str]:
        return self.header.get("kind") if self.header else None

    @property
    def cells(self) -> int:
        return int(self.header.get("cells", 0)) if self.header else 0

    def terminal(self, cell: int) -> Optional[dict]:
        """The terminal payload for ``cell``, or ``None`` if still open."""
        for table in (self.finished, self.failed, self.quarantined):
            if cell in table:
                return table[cell]
        return None

    def crash_set(self) -> List[int]:
        """Cells that were in flight when the orchestrator died: a
        ``started`` record with no terminal record. Re-queued on resume."""
        return sorted(
            cell for cell in self.started if self.terminal(cell) is None
        )

    def unstarted(self) -> List[int]:
        """Cells never dispatched (also re-queued on resume)."""
        return sorted(
            cell for cell in range(self.cells)
            if cell not in self.started and self.terminal(cell) is None
        )

    def remaining(self) -> List[int]:
        """Every cell resume must still execute, in grid order."""
        return sorted(set(self.crash_set()) | set(self.unstarted()))

    @property
    def complete(self) -> bool:
        return (
            self.header is not None
            and all(self.terminal(cell) is not None
                    for cell in range(self.cells))
        )

    def reexecuted_finished(self) -> List[int]:
        """Cells with a ``started`` record *after* a terminal record.

        A correct resume skips every terminal cell, so this list must be
        empty; a non-empty answer means the journal discipline was violated
        (work re-done, wall-clock wasted, and — for non-deterministic
        runners — potentially divergent results).
        """
        out = []
        for cell, seq in self.events.items():
            terminal_at = None
            for type_, position in seq:
                if type_ in TERMINAL_TYPES and terminal_at is None:
                    terminal_at = position
                elif type_ == "started" and terminal_at is not None:
                    out.append(cell)
                    break
        return sorted(out)


def _parse_record(line: bytes, lineno: int, path: Path) -> dict:
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise JournalError(
            f"{path.name}:{lineno}: unparseable record ({exc})"
        ) from None
    if not isinstance(record, dict):
        raise JournalError(f"{path.name}:{lineno}: record is not an object")
    for key in ("v", "seq", "type", "data", "crc"):
        if key not in record:
            raise JournalError(f"{path.name}:{lineno}: missing field {key!r}")
    if record["type"] not in RECORD_TYPES:
        raise JournalError(
            f"{path.name}:{lineno}: unknown record type {record['type']!r}"
        )
    expected = _record_checksum(
        record["v"], record["seq"], record["type"], record["data"]
    )
    if record["crc"] != expected:
        raise JournalError(f"{path.name}:{lineno}: checksum mismatch")
    return record


def scan_journal(path: Union[str, Path]) -> JournalState:
    """Replay ``path`` into a :class:`JournalState`.

    The final line is allowed to be torn (crash mid-append): it is dropped
    and ``state.torn`` is set — by fsync ordering nothing ever acted on it.
    A bad record *before* the last line, a sequence gap, a wrong version or
    a missing header raise :class:`~repro.sim.errors.JournalError`.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from None
    state = JournalState(path=path)
    lines = raw.split(b"\n")
    # A well-formed journal ends with a newline, so the final split element
    # is empty; anything else is a record cut short mid-append.
    trailing = lines.pop() if lines else b""
    offset = 0
    for lineno, line in enumerate(lines, start=1):
        is_last = lineno == len(lines) and not trailing
        try:
            record = _parse_record(line, lineno, path)
        except JournalError:
            if is_last:
                state.torn = True
                return state
            raise
        if record["v"] != JOURNAL_VERSION:
            raise JournalError(
                f"{path.name}:{lineno}: journal version {record['v']} "
                f"(this build reads {JOURNAL_VERSION})"
            )
        if record["seq"] != state.records:
            raise JournalError(
                f"{path.name}:{lineno}: sequence gap (expected "
                f"{state.records}, found {record['seq']})"
            )
        _apply(state, record, lineno)
        state.records += 1
        offset += len(line) + 1
        state.good_bytes = offset
    if trailing:
        state.torn = True
    return state


def _apply(state: JournalState, record: dict, lineno: int) -> None:
    type_, data = record["type"], record["data"]
    if type_ == "header":
        if state.header is not None:
            raise JournalError(f"{state.path.name}:{lineno}: duplicate header")
        state.header = data
        return
    if state.header is None:
        raise JournalError(
            f"{state.path.name}:{lineno}: {type_!r} record before header"
        )
    if type_ == "interrupted":
        state.interrupted = True
        return
    cell = data["cell"]
    state.events.setdefault(cell, []).append((type_, record["seq"]))
    if type_ == "started":
        state.started[cell] = state.started.get(cell, 0) + 1
    elif type_ == "finished":
        state.finished.setdefault(cell, data)
    elif type_ == "failed":
        state.failed.setdefault(cell, data)
    elif type_ == "quarantined":
        state.quarantined.setdefault(cell, data)


def _parse_crash_hook() -> Optional[Tuple[str, int]]:
    spec = os.environ.get(CRASH_HOOK_ENV)
    if not spec:
        return None
    try:
        type_, count = spec.split(":")
        return type_, int(count)
    except ValueError:
        raise JournalError(
            f"bad {CRASH_HOOK_ENV}={spec!r} (expected '<type>:<count>')"
        ) from None


class RunJournal:
    """One run's append-only, fsync'd, checksummed event log.

    Create with :meth:`create` (writes the header durably before returning)
    or :meth:`open` (replays an existing journal for resume). Every
    :meth:`append` is durable — flushed and fsync'd — before it returns, so
    the write-ahead contract holds: a record the orchestrator acted on can
    never be lost, and a record lost to a crash (the torn tail) was never
    acted on.
    """

    def __init__(self, path: Path, state: JournalState, handle) -> None:
        self.path = path
        self.state = state
        self._handle = handle
        self._seq = state.records
        self._crash_hook = _parse_crash_hook()
        self._crash_counts: Dict[str, int] = {}

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        *,
        kind: str,
        run_id: str,
        config: dict,
        fingerprint: str,
        cells: int,
    ) -> "RunJournal":
        """Start a fresh journal; refuses to clobber an existing one."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            raise JournalError(
                f"journal {path} already exists — resume it with "
                f"'runs resume {run_id}' instead of starting over"
            )
        handle = open(path, "ab")
        journal = cls(path, JournalState(path=path), handle)
        journal.append(
            "header",
            kind=kind,
            run_id=run_id,
            config=config,
            fingerprint=fingerprint,
            cells=cells,
        )
        journal.state.header = {
            "kind": kind, "run_id": run_id, "config": config,
            "fingerprint": fingerprint, "cells": cells,
        }
        return journal

    @classmethod
    def open(cls, path: Union[str, Path]) -> "RunJournal":
        """Replay an existing journal and position for appending.

        A torn tail is sliced off in memory (appends go after the last good
        record — the torn bytes are overwritten) and reported via
        ``state.torn``.
        """
        path = Path(path)
        state = scan_journal(path)
        if state.header is None:
            raise JournalError(f"journal {path} has no header record")
        handle = open(path, "ab")
        if state.torn:
            handle.truncate(state.good_bytes)
        return cls(path, state, handle)

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- writing

    def append(self, type_: str, **data) -> None:
        """Durably append one record (write + flush + fsync)."""
        if type_ not in RECORD_TYPES:
            raise JournalError(f"unknown record type {type_!r}")
        record = {
            "v": JOURNAL_VERSION,
            "seq": self._seq,
            "type": type_,
            "data": data,
            "crc": _record_checksum(JOURNAL_VERSION, self._seq, type_, data),
        }
        line = (_canonical(record) + "\n").encode("utf-8")
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._seq += 1
        self._mirror(type_, data)
        self._maybe_crash(type_)

    def _mirror(self, type_: str, data: dict) -> None:
        """Keep the in-memory state consistent with what was just written."""
        state = self.state
        state.records = self._seq
        if type_ == "header" or state.header is None:
            return
        if type_ == "interrupted":
            state.interrupted = True
            return
        cell = data["cell"]
        state.events.setdefault(cell, []).append((type_, self._seq - 1))
        if type_ == "started":
            state.started[cell] = state.started.get(cell, 0) + 1
        elif type_ == "finished":
            state.finished.setdefault(cell, data)
        elif type_ == "failed":
            state.failed.setdefault(cell, data)
        elif type_ == "quarantined":
            state.quarantined.setdefault(cell, data)

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def _maybe_crash(self, type_: str) -> None:
        """The deterministic SIGKILL test hook (see module docstring)."""
        if self._crash_hook is None:
            return
        hook_type, hook_count = self._crash_hook
        if type_ != hook_type:
            return
        count = self._crash_counts.get(type_, 0) + 1
        self._crash_counts[type_] = count
        if count >= hook_count:
            os.kill(os.getpid(), signal.SIGKILL)

    # ------------------------------------------------------------- identity

    def verify_fingerprint(self, fingerprint: str) -> None:
        """Refuse to resume a journal whose recorded fingerprint differs
        from the one recomputed from the (regenerated) task grid."""
        recorded = (self.state.header or {}).get("fingerprint")
        if recorded != fingerprint:
            raise JournalError(
                f"config fingerprint mismatch for run "
                f"{self.state.run_id!r}: journal has {recorded!r:.20}…, "
                f"regenerated grid gives {fingerprint!r:.20}… — the code or "
                f"configuration changed since this journal was written; "
                f"start a fresh run instead of resuming"
            )


def list_runs(runs_dir: Union[str, Path]) -> List[JournalState]:
    """Scan ``runs_dir`` for journals, newest-named last; unreadable or
    corrupt journals are returned as header-less states (so ``runs list``
    can show them as damaged instead of hiding them)."""
    runs_dir = Path(runs_dir)
    states: List[JournalState] = []
    if not runs_dir.is_dir():
        return states
    for path in sorted(runs_dir.glob("*.jsonl")):
        try:
            states.append(scan_journal(path))
        except JournalError:
            states.append(JournalState(path=path, header=None))
    return states
