"""Small numeric helpers for aggregating experiment records.

Deliberately dependency-light (everything here works on plain sequences) so
the analysis layer stays importable without numpy; benchmarks that want
heavier statistics can reach for numpy/scipy directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

Number = Union[int, float]


@dataclass(frozen=True)
class Summary:
    """Five-point summary of a sample."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float

    def __str__(self) -> str:
        return (
            f"n={self.count} min={self.minimum:g} med={self.median:g} "
            f"mean={self.mean:g} max={self.maximum:g}"
        )


def summarise(values: Sequence[Number]) -> Summary:
    """Five-point summary; raises on empty input (an empty sample in an
    experiment always indicates a harness bug, not a valid result)."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    ordered = sorted(float(v) for v in values)
    return Summary(
        count=len(ordered),
        minimum=ordered[0],
        maximum=ordered[-1],
        mean=sum(ordered) / len(ordered),
        median=median_of(ordered),
    )


def median_of(ordered: Sequence[float]) -> float:
    """Median of an already-sorted sequence."""
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def fraction_true(flags: Sequence[bool]) -> float:
    """Share of True values (0.0 for an empty sequence)."""
    if not flags:
        return 0.0
    return sum(1 for flag in flags if flag) / len(flags)


def ratios(numerators: Sequence[Number], denominators: Sequence[Number]) -> List[float]:
    """Pairwise ratios, used for measured-vs-bound comparisons."""
    if len(numerators) != len(denominators):
        raise ValueError("ratio inputs must have equal length")
    return [float(a) / float(b) for a, b in zip(numerators, denominators)]
