"""Algorithm registry and single-run experiment harness.

Benchmarks, the CLI and integration tests all speak in terms of
:class:`AlgorithmSpec`: a named algorithm with a factory builder (some
algorithms need the run's ids/seed, e.g. the identified-model consensus
baseline), its promised namespace, whether it promises order preservation,
and which adversary strategies are meaningful against it.

:func:`run_experiment` executes one fully-specified configuration and
returns an :class:`ExperimentRecord` with outputs, property verdicts and
traffic metrics — the row format every table in EXPERIMENTS.md is built
from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..adversary import ALG1_ATTACKS, ALG4_ATTACKS, make_adversary
from ..baselines import (
    BitSplitRenaming,
    FloodSetRenaming,
    OkunCrashRenaming,
    TranslatedByzantineRenaming,
    consensus_renaming_factory,
)
from ..core import (
    ConstantTimeRenaming,
    OrderPreservingRenaming,
    SystemParams,
    TwoStepRenaming,
)
from ..sim import (
    DEFAULT_ENGINE,
    MODEL_KINDS,
    ConfigurationError,
    FaultPlan,
    RunResult,
    SafetyPolicy,
    SystemModel,
    run_protocol,
)
from ..sim.process import ProcessContext
from .properties import PropertyReport, check_renaming

#: Factory builder signature: (n, t, ids, seed) -> run_protocol factory.
FactoryBuilder = Callable[[int, int, Sequence[int], int], Callable[[ProcessContext], object]]

#: Crash-model strategies, shared by the crash baselines.
CRASH_ATTACKS = ["silent", "conforming", "crash"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Everything the harness needs to run and judge one algorithm."""

    name: str
    build_factory: FactoryBuilder
    namespace: Callable[[SystemParams], int]
    order_preserving: bool
    attacks: Sequence[str]
    regime: Callable[[SystemParams], bool] = lambda params: True
    #: Proven worst-case round bound (the safety monitor's watchdog budget);
    #: ``None`` where the paper/baseline proves no closed-form bound.
    round_budget: Optional[Callable[[SystemParams], int]] = None
    #: System-model kinds the algorithm is meaningful under (see
    #: :data:`repro.sim.MODEL_KINDS`). Default: every registered kind.
    #: Pairings outside this list raise ``ConfigurationError`` from
    #: :func:`run_experiment` and are filtered silently by sweeps — the
    #: same contract ``attacks`` carries.
    models: Sequence[str] = MODEL_KINDS

    def supports(self, n: int, t: int) -> bool:
        """True when (n, t) satisfies the algorithm's resilience condition."""
        return self.regime(SystemParams(n, t))


def _simple(cls) -> FactoryBuilder:
    return lambda n, t, ids, seed: cls


ALGORITHMS: Dict[str, AlgorithmSpec] = {
    "alg1": AlgorithmSpec(
        name="alg1",
        build_factory=_simple(OrderPreservingRenaming),
        namespace=lambda p: p.namespace_bound,
        order_preserving=True,
        attacks=ALG1_ATTACKS,
        regime=lambda p: p.tolerates_byzantine,
        round_budget=lambda p: p.total_rounds,
    ),
    "alg1-constant": AlgorithmSpec(
        name="alg1-constant",
        build_factory=_simple(ConstantTimeRenaming),
        namespace=lambda p: p.strong_namespace,
        order_preserving=True,
        attacks=ALG1_ATTACKS,
        regime=lambda p: p.in_constant_time_regime,
        round_budget=lambda p: p.constant_time_total_rounds,
    ),
    "alg4": AlgorithmSpec(
        name="alg4",
        build_factory=_simple(TwoStepRenaming),
        namespace=lambda p: p.fast_namespace_bound,
        order_preserving=True,
        attacks=ALG4_ATTACKS,
        regime=lambda p: p.in_fast_regime,
        round_budget=lambda p: 2,
    ),
    "okun-crash": AlgorithmSpec(
        name="okun-crash",
        build_factory=_simple(OkunCrashRenaming),
        namespace=lambda p: p.n,
        order_preserving=True,
        attacks=CRASH_ATTACKS,
    ),
    "cht": AlgorithmSpec(
        name="cht",
        # Probing under crashes may overflow the tight namespace by at most
        # the number of faults — the promise checked is N + t.
        build_factory=_simple(BitSplitRenaming),
        namespace=lambda p: p.n + p.t,
        order_preserving=False,
        attacks=CRASH_ATTACKS,
    ),
    "floodset": AlgorithmSpec(
        name="floodset",
        build_factory=_simple(FloodSetRenaming),
        namespace=lambda p: p.n,
        order_preserving=True,
        attacks=CRASH_ATTACKS,
    ),
    "translated": AlgorithmSpec(
        name="translated",
        build_factory=_simple(TranslatedByzantineRenaming),
        namespace=lambda p: 2 * p.n,
        order_preserving=False,
        attacks=CRASH_ATTACKS,
        regime=lambda p: p.tolerates_byzantine,
    ),
    "consensus": AlgorithmSpec(
        name="consensus",
        build_factory=lambda n, t, ids, seed: consensus_renaming_factory(n, ids, seed),
        namespace=lambda p: p.n,
        order_preserving=True,
        attacks=ALG1_ATTACKS,
        regime=lambda p: p.tolerates_byzantine,
        # The consensus baseline runs in the *identified* model: global
        # identities are injected out of band, which presumes senders are
        # authentic and links reliable. Forged-sender frames or lossy
        # rounds void that premise rather than stress it, so non-classic
        # models are meaningless pairings here.
        models=("classic",),
    ),
}


@dataclass
class ExperimentRecord:
    """One run's outcome in table-row form."""

    algorithm: str
    n: int
    t: int
    attack: str
    seed: int
    rounds: int
    correct_messages: int
    correct_bits: int
    peak_message_bits: int
    report: PropertyReport
    result: RunResult

    @property
    def max_name(self) -> int:
        return max(self.report.names.values()) if self.report.names else 0


def run_experiment(
    algorithm: str,
    n: int,
    t: int,
    ids: Sequence[int],
    attack: str = "silent",
    seed: int = 0,
    collect_trace: bool = False,
    namespace: Optional[int] = None,
    max_rounds: int = 1000,
    engine: str = DEFAULT_ENGINE,
    enforce_regime: bool = True,
    monitor: bool = False,
    chaos: Optional[FaultPlan] = None,
    model: Optional[SystemModel] = None,
) -> ExperimentRecord:
    """Execute one configuration and judge it.

    ``namespace`` overrides the algorithm's promised bound (used when probing
    slack applies); everything else comes from :data:`ALGORITHMS`.
    ``engine`` selects the round-loop implementation (see
    :mod:`repro.sim.engine`) — results are identical either way.

    ``attack`` must be one of the strategies registered as meaningful for
    ``algorithm`` (:attr:`AlgorithmSpec.attacks`); anything else raises
    :class:`~repro.sim.errors.ConfigurationError`. Sweeps filter such
    pairings silently, but a direct caller asking for a meaningless
    combination (e.g. a rank attack against a crash baseline) is a
    misconfiguration, not a measurement.

    ``enforce_regime=True`` (the default) raises
    :class:`~repro.sim.errors.ConfigurationError` when ``(n, t)`` falls
    outside the algorithm's proven resilience regime — the uniform typed
    answer for beyond-threshold configurations. Pass ``False`` to run the
    algorithm beyond its model anyway (chaos campaigns do, to observe
    *which* property breaks; note some constructors still refuse on their
    own).

    ``monitor=True`` attaches a :class:`~repro.sim.monitor.SafetyMonitor`
    that aborts the run with a typed
    :class:`~repro.sim.errors.SafetyViolation` the moment validity or
    uniqueness breaks or the algorithm exceeds its proven round budget
    (:attr:`AlgorithmSpec.round_budget`). ``chaos`` injects a beyond-model
    :class:`~repro.sim.chaos.FaultPlan` (see :mod:`repro.sim.chaos`).

    ``model`` (a :class:`~repro.sim.SystemModel`) selects the system model
    the run executes under (see :mod:`repro.sim.model`); ``None`` means
    classic. Like attacks, the pairing must be registered as meaningful
    (:attr:`AlgorithmSpec.models`) or this raises
    :class:`~repro.sim.errors.ConfigurationError` — sweeps filter such
    pairings silently. Under a model whose expectations void the paper's
    round budgets (partial synchrony withholds frames), ``monitor=True``
    keeps the validity/uniqueness monitors but drops the round-budget
    watchdog: exceeding a bound the model voided is a degradation to
    record, not a monitor trip.
    """
    spec = ALGORITHMS[algorithm]
    if attack not in spec.attacks:
        valid = ", ".join(spec.attacks)
        raise ConfigurationError(
            f"attack {attack!r} is not meaningful against {algorithm!r}; "
            f"valid attacks: {valid}"
        )
    if model is not None and model.kind not in spec.models:
        valid = ", ".join(spec.models)
        raise ConfigurationError(
            f"system model {model.describe()!r} is not meaningful for "
            f"{algorithm!r}; valid model kinds: {valid}"
        )
    params = SystemParams(n, t)
    if enforce_regime and not spec.regime(params):
        raise ConfigurationError(
            f"{algorithm!r} is outside its proven resilience regime at "
            f"n={n}, t={t}; pass enforce_regime=False to run beyond the model"
        )
    factory = spec.build_factory(n, t, ids, seed)
    adversary = make_adversary(attack) if t > 0 else None
    bound = spec.namespace(params) if namespace is None else namespace
    safety = None
    if monitor:
        budget = spec.round_budget(params) if spec.round_budget is not None else None
        if model is not None and not model.expectations().round_budget_holds:
            budget = None
        safety = SafetyPolicy(namespace=bound, round_budget=budget)
    result = run_protocol(
        factory,
        n=n,
        t=t,
        ids=ids,
        adversary=adversary,
        seed=seed,
        collect_trace=collect_trace,
        max_rounds=max_rounds,
        engine=engine,
        chaos=chaos,
        safety=safety,
        model=model,
    )
    report = check_renaming(result, bound)
    return ExperimentRecord(
        algorithm=algorithm,
        n=n,
        t=t,
        attack=attack,
        seed=seed,
        rounds=result.metrics.round_count,
        correct_messages=result.metrics.correct_messages,
        correct_bits=result.metrics.correct_bits,
        peak_message_bits=result.metrics.peak_message_bits,
        report=report,
        result=result,
    )
