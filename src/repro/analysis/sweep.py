"""Parameter sweeps: grids of (algorithm × (n, t) × attack × seed) runs.

Benchmarks express each experiment as a sweep plus an aggregation; this
module owns the grid definition and record collection so each bench file is
just "define the grid, aggregate the rows, print the table". Execution lives
in :mod:`repro.analysis.executor`: grids fan out over a process pool (with
deterministic result ordering) and can be memoised on disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..sim import DEFAULT_ENGINE, SystemModel
from .executor import ExperimentSummary, ResultCache, RunTask, SweepExecutor
from .experiments import ALGORITHMS


@dataclass(frozen=True)
class SweepConfig:
    """A grid of experiment configurations.

    ``sizes`` are (n, t) pairs; configurations an algorithm's resilience
    condition rejects are skipped (a sweep over mixed regimes is normal).
    ``engine`` selects the simulator round loop for every cell (see
    :mod:`repro.sim.engine`); results are engine-independent. ``model``
    (a :class:`~repro.sim.SystemModel`, ``None`` for classic) selects the
    system model for every cell; algorithms not registered as meaningful
    under the model's kind are skipped, mirroring the attack filter.
    """

    algorithms: Sequence[str]
    sizes: Sequence[Tuple[int, int]]
    attacks: Sequence[str] = ("silent",)
    seeds: Sequence[int] = (0,)
    workload: str = "uniform"
    collect_trace: bool = False
    max_rounds: int = 1000
    engine: str = DEFAULT_ENGINE
    model: Optional[SystemModel] = None

    def configurations(self) -> Iterator[Tuple[str, int, int, str, int]]:
        """Yield runnable (algorithm, n, t, attack, seed) tuples."""
        model_kind = "classic" if self.model is None else self.model.kind
        for algorithm in self.algorithms:
            spec = ALGORITHMS[algorithm]
            if model_kind not in spec.models:
                continue
            for n, t in self.sizes:
                if not spec.supports(n, t):
                    continue
                for attack in self.attacks:
                    if attack not in spec.attacks:
                        continue
                    for seed in self.seeds:
                        yield algorithm, n, t, attack, seed


def run_sweep(
    config: SweepConfig,
    *,
    workers: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    run_hook: Optional[Callable[[RunTask], None]] = None,
    store=None,
) -> List[ExperimentSummary]:
    """Execute every configuration in the grid.

    ``workers=None`` uses one worker process per CPU, ``workers=1`` runs
    serially in-process; results are ordered by configuration index either
    way, so the two paths produce identical tables and CSVs. ``cache`` (a
    directory or :class:`ResultCache`) skips configurations whose summaries
    are already on disk. ``store`` (a store URL or
    :class:`~repro.analysis.store.ResultStore`) runs the grid on the
    coordinator/worker fabric instead of a process pool — same rows, same
    order. See :class:`repro.analysis.executor.SweepExecutor`.
    """
    executor = SweepExecutor(workers=workers, cache=cache, run_hook=run_hook)
    return executor.run(config, store=store)


def group_by(
    records: Iterable[ExperimentSummary], *keys: str
) -> Dict[Tuple, List[ExperimentSummary]]:
    """Group records (summaries or full records) by attribute names,
    preserving insertion order."""
    groups: Dict[Tuple, List[ExperimentSummary]] = {}
    for record in records:
        group_key = tuple(getattr(record, key) for key in keys)
        groups.setdefault(group_key, []).append(record)
    return groups
