"""Parameter sweeps: grids of (algorithm × (n, t) × attack × seed) runs.

Benchmarks express each experiment as a sweep plus an aggregation; this
module owns the iteration and record collection so each bench file is just
"define the grid, aggregate the rows, print the table".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from ..workloads.ids import make_ids
from .experiments import ALGORITHMS, ExperimentRecord, run_experiment


@dataclass(frozen=True)
class SweepConfig:
    """A grid of experiment configurations.

    ``sizes`` are (n, t) pairs; configurations an algorithm's resilience
    condition rejects are skipped (a sweep over mixed regimes is normal).
    """

    algorithms: Sequence[str]
    sizes: Sequence[Tuple[int, int]]
    attacks: Sequence[str] = ("silent",)
    seeds: Sequence[int] = (0,)
    workload: str = "uniform"
    collect_trace: bool = False
    max_rounds: int = 1000

    def configurations(self) -> Iterator[Tuple[str, int, int, str, int]]:
        """Yield runnable (algorithm, n, t, attack, seed) tuples."""
        for algorithm in self.algorithms:
            spec = ALGORITHMS[algorithm]
            for n, t in self.sizes:
                if not spec.supports(n, t):
                    continue
                for attack in self.attacks:
                    if attack not in spec.attacks:
                        continue
                    for seed in self.seeds:
                        yield algorithm, n, t, attack, seed


def run_sweep(config: SweepConfig) -> List[ExperimentRecord]:
    """Execute every configuration in the grid."""
    records: List[ExperimentRecord] = []
    for algorithm, n, t, attack, seed in config.configurations():
        ids = make_ids(config.workload, n, seed=seed)
        records.append(
            run_experiment(
                algorithm,
                n,
                t,
                ids,
                attack=attack,
                seed=seed,
                collect_trace=config.collect_trace,
                max_rounds=config.max_rounds,
            )
        )
    return records


def group_by(
    records: Iterable[ExperimentRecord], *keys: str
) -> Dict[Tuple, List[ExperimentRecord]]:
    """Group records by attribute names, preserving insertion order."""
    groups: Dict[Tuple, List[ExperimentRecord]] = {}
    for record in records:
        group_key = tuple(getattr(record, key) for key in keys)
        groups.setdefault(group_key, []).append(record)
    return groups
