"""Crash-contained chaos campaigns: fault grids with triage, not hangs.

A chaos campaign systematically runs algorithms under beyond-model fault
plans (:mod:`repro.sim.chaos`) and classifies every single run — the hard
invariant is **zero silent successes**: a run either completes with its
properties verified, or its failure is recorded with a typed cause and a
one-command reproducer. Nothing is dropped, nothing hangs the campaign.

* :class:`ChaosTask` — one fully-specified (configuration × fault plan)
  cell, picklable and hashable, with :meth:`ChaosTask.reproducer` emitting
  the exact ``repro-renaming chaos`` command line that re-executes it.
* :func:`execute_chaos_task` — the worker entry point. Typed simulator
  errors (:class:`~repro.sim.errors.SimulationError`, including
  :class:`~repro.sim.errors.SafetyViolation` from the runtime monitor, and
  :class:`~repro.wire.WireError`) are *outcomes*, not crashes.
* :class:`ChaosCampaign` — fan-out over a process pool with per-cycle
  timeouts, retry of transient worker failures, pool rebuild after a hang or
  a dead worker, and quarantine of configurations that crash the worker
  itself.
* :class:`TriageReport` — the campaign verdict: per-status counts, the
  quarantine list, and the self-check :meth:`TriageReport.silent_successes`
  (must be empty: injected violations without a verdict are a harness bug).

Outcome statuses:

``clean``
    No fault was actually injected and all properties verified.
``tolerated``
    Faults were injected but every promised property still held (the
    algorithm's resilience slack absorbed the injection) — *verified*, not
    assumed.
``violation``
    The run completed but a property broke; the outcome names the broken
    properties and the fault families that were active.
``detected``
    The run aborted with a typed error (safety monitor, invariant check,
    configuration guard, round limit, wire decoder) — the failure-fast path.
``timeout``
    The worker exceeded the campaign's per-cycle timeout; quarantined with a
    reproducer.
``crashed``
    The worker raised an *untyped* error even after retries; quarantined
    with the exception and a reproducer.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim import (
    DEFAULT_ENGINE,
    ConfigurationError,
    FaultPlan,
    SafetyViolation,
    SimulationError,
)
from ..wire import WireError
from ..workloads.ids import make_ids
from .executor import logger, resolve_workers
from .experiments import run_experiment
from .journal import RunJournal, canonical_json, config_fingerprint
from .tables import format_table

__all__ = [
    "CHAOS_PRESETS",
    "ChaosCampaign",
    "ChaosOutcome",
    "ChaosTask",
    "TriageReport",
    "chaos_grid",
    "execute_chaos_task",
]

#: Every status a classified run can end in (stable order for reports).
STATUSES = ("clean", "tolerated", "violation", "detected", "timeout", "crashed")


@dataclass(frozen=True)
class ChaosTask:
    """One campaign cell: a run configuration plus its fault plan."""

    algorithm: str
    n: int
    t: int
    attack: str = "silent"
    seed: int = 0
    engine: str = DEFAULT_ENGINE
    workload: str = "uniform"
    max_rounds: int = 64
    monitor: bool = True
    enforce_regime: bool = True
    chaos_seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    extra_crashes: int = 0
    crash_round: int = 1

    def fault_plan(self) -> FaultPlan:
        """The task's :class:`~repro.sim.chaos.FaultPlan` (validated)."""
        return FaultPlan(
            seed=self.chaos_seed,
            drop=self.drop,
            duplicate=self.duplicate,
            corrupt=self.corrupt,
            extra_crashes=self.extra_crashes,
            crash_round=self.crash_round,
        )

    def to_dict(self) -> dict:
        """JSON-ready cell description (journal headers, fingerprints)."""
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "t": self.t,
            "attack": self.attack,
            "seed": self.seed,
            "engine": self.engine,
            "workload": self.workload,
            "max_rounds": self.max_rounds,
            "monitor": self.monitor,
            "enforce_regime": self.enforce_regime,
            "chaos_seed": self.chaos_seed,
            "drop": self.drop,
            "duplicate": self.duplicate,
            "corrupt": self.corrupt,
            "extra_crashes": self.extra_crashes,
            "crash_round": self.crash_round,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosTask":
        return cls(**payload)

    def describe(self) -> str:
        """Compact cell label for triage tables."""
        plan = self.fault_plan()
        fault = "none" if plan.is_empty else plan.describe()
        return (
            f"{self.algorithm} n={self.n} t={self.t} {self.attack} "
            f"seed={self.seed} {self.engine} [{fault}]"
        )

    def reproducer(self) -> str:
        """The one-command CLI line that re-executes exactly this cell."""
        parts = [
            "python -m repro.cli chaos",
            f"--algorithms {self.algorithm}",
            f"--sizes {self.n}:{self.t}",
            f"--attacks {self.attack}",
            f"--seeds {self.seed}",
            f"--engines {self.engine}",
            f"--chaos-seeds {self.chaos_seed}",
        ]
        if self.drop:
            parts.append(f"--drop {self.drop}")
        if self.duplicate:
            parts.append(f"--duplicate {self.duplicate}")
        if self.corrupt:
            parts.append(f"--corrupt {self.corrupt}")
        if self.extra_crashes:
            parts.append(f"--crash-extra {self.extra_crashes}")
            parts.append(f"--crash-round {self.crash_round}")
        parts.append("--combine")
        parts.append(f"--max-rounds {self.max_rounds}")
        if self.workload != "uniform":
            parts.append(f"--workload {self.workload}")
        if not self.monitor:
            parts.append("--no-monitor")
        parts.append("--workers 1")
        return " ".join(parts)


@dataclass
class ChaosOutcome:
    """The classified verdict of one campaign cell."""

    task: ChaosTask
    status: str
    elapsed_s: float = 0.0
    #: ``"ExceptionType: message"`` for detected/timeout/crashed outcomes.
    error: Optional[str] = None
    #: Broken properties (``violation``) or the monitor's violated tag
    #: (``detected`` via :class:`~repro.sim.errors.SafetyViolation`).
    violated: Tuple[str, ...] = ()
    #: Injected-fault counters actually observed (empty when the run aborted
    #: before its chaos report could be collected).
    injected: Dict[str, int] = field(default_factory=dict)
    retries: int = 0

    @property
    def quarantined(self) -> bool:
        """True for outcomes that need a reproducer-first look (the campaign
        could not produce a verdict from inside the run)."""
        return self.status in ("timeout", "crashed")

    def as_dict(self) -> dict:
        return {
            "task": self.task.describe(),
            "status": self.status,
            "elapsed_s": self.elapsed_s,
            "error": self.error,
            "violated": list(self.violated),
            "injected": dict(self.injected),
            "retries": self.retries,
            "reproducer": self.task.reproducer() if self.quarantined else None,
        }

    def verdict_dict(self) -> dict:
        """The task-free verdict payload journals store (the task is
        reconstructed from the grid by cell index on resume)."""
        return {
            "status": self.status,
            "elapsed_s": self.elapsed_s,
            "error": self.error,
            "violated": list(self.violated),
            "injected": dict(self.injected),
            "retries": self.retries,
        }

    @classmethod
    def from_verdict(cls, task: ChaosTask, payload: dict) -> "ChaosOutcome":
        """Inverse of :meth:`verdict_dict` given the cell's task."""
        return cls(
            task=task,
            status=payload["status"],
            elapsed_s=payload.get("elapsed_s", 0.0),
            error=payload.get("error"),
            violated=tuple(payload.get("violated", ())),
            injected=dict(payload.get("injected", {})),
            retries=payload.get("retries", 0),
        )


def execute_chaos_task(task: ChaosTask) -> ChaosOutcome:
    """Run one cell and classify it (the worker entry point).

    Typed errors are verdicts: a :class:`~repro.sim.errors.SafetyViolation`
    or any other :class:`~repro.sim.errors.SimulationError` (round limit,
    configuration guard, protocol violation) or
    :class:`~repro.wire.WireError` means the harness *detected* the injected
    fault and failed loudly. Anything else escaping this function is a
    worker crash, which the campaign retries and then quarantines.
    """
    start = time.perf_counter()
    ids = make_ids(task.workload, task.n, seed=task.seed)
    plan = task.fault_plan()
    try:
        record = run_experiment(
            task.algorithm,
            task.n,
            task.t,
            ids,
            attack=task.attack,
            seed=task.seed,
            max_rounds=task.max_rounds,
            engine=task.engine,
            enforce_regime=task.enforce_regime,
            monitor=task.monitor,
            chaos=None if plan.is_empty else plan,
        )
    except SafetyViolation as exc:
        return ChaosOutcome(
            task=task,
            status="detected",
            elapsed_s=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            violated=(exc.violated,),
        )
    except (SimulationError, WireError) as exc:
        return ChaosOutcome(
            task=task,
            status="detected",
            elapsed_s=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    report = record.report
    if report.ok:
        status = "tolerated" if report.beyond_model else "clean"
    else:
        status = "violation"
    return ChaosOutcome(
        task=task,
        status=status,
        elapsed_s=time.perf_counter() - start,
        violated=report.broken,
        injected=dict(report.injected),
    )


@dataclass
class TriageReport:
    """Campaign verdict: every cell classified, nothing silently dropped."""

    outcomes: List[ChaosOutcome]
    elapsed_s: float = 0.0
    retried: int = 0
    workers: int = 1

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in STATUSES}
        for outcome in self.outcomes:
            out[outcome.status] = out.get(outcome.status, 0) + 1
        return out

    @property
    def quarantined(self) -> List[ChaosOutcome]:
        return [o for o in self.outcomes if o.quarantined]

    def silent_successes(self) -> List[ChaosOutcome]:
        """Harness self-check — MUST return ``[]``.

        A run that injected model violations but was classified ``clean``
        (i.e. "nothing happened") would be a silent success: the injection
        bypassed both the safety monitor and the post-hoc property check.
        By construction any injection flips the run to ``tolerated`` (with
        its properties verified) or worse; a non-empty return here is a bug
        in the chaos harness itself, not in the algorithm under test.
        """
        return [
            o for o in self.outcomes if o.status == "clean" and o.injected
        ]

    def render(self) -> str:
        """Human triage table plus quarantine reproducers."""
        rows = []
        for outcome in self.outcomes:
            detail = outcome.error or (
                ", ".join(outcome.violated) if outcome.violated else ""
            )
            injected = (
                " ".join(f"{k}x{v}" for k, v in sorted(outcome.injected.items()))
                or "-"
            )
            rows.append([
                outcome.task.describe(),
                outcome.status,
                injected,
                detail[:60],
            ])
        lines = [format_table(["cell", "status", "injected", "detail"], rows)]
        counts = ", ".join(
            f"{status}={count}" for status, count in self.counts().items() if count
        )
        lines.append(
            f"\n{len(self.outcomes)} cells ({counts}) in {self.elapsed_s:.2f}s "
            f"on {self.workers} worker(s); {self.retried} retried"
        )
        silent = self.silent_successes()
        if silent:
            lines.append(
                f"HARNESS BUG: {len(silent)} silent success(es) — injection "
                "without a verdict"
            )
        if self.quarantined:
            lines.append("\nquarantined (reproduce with):")
            for outcome in self.quarantined:
                lines.append(f"  [{outcome.status}] {outcome.error}")
                lines.append(f"    {outcome.task.reproducer()}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "counts": self.counts(),
            "elapsed_s": self.elapsed_s,
            "retried": self.retried,
            "workers": self.workers,
            "silent_successes": len(self.silent_successes()),
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
        }

    def canonical(self) -> str:
        """The report as canonical JSON: wall-clock and pool-size scrubbed.

        Everything left is a pure function of the seeded grid, so a
        resumed run's canonical report must be byte-identical to an
        uninterrupted control run's — the resume acceptance check.
        """
        return canonical_json(self.to_json())

    @property
    def ok(self) -> bool:
        """True when the campaign itself is healthy: no quarantined cells
        and no silent successes (violations/detections are *findings*, not
        campaign failures)."""
        return not self.quarantined and not self.silent_successes()


class ChaosCampaign:
    """Run a chaos grid to completion, whatever the cells do.

    ``workers=1`` runs serially in-process (fully deterministic ordering,
    no timeout containment — used by tests and reproducers). Otherwise the
    grid fans out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

    * a cell whose worker raises an untyped exception is retried up to
      ``retries`` times, then quarantined as ``crashed``;
    * a dead pool (killed worker) is rebuilt and the unfinished cells rerun;
    * when no cell completes within ``timeout_s`` the still-pending cells
      are quarantined as ``timeout``, the pool is torn down (hung workers
      terminated) and the campaign continues — a hang costs one timeout
      window, never the campaign.

    ``task_runner`` is injectable for tests (it must be picklable for
    ``workers > 1``).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        timeout_s: float = 120.0,
        retries: int = 1,
        task_runner: Callable[[ChaosTask], ChaosOutcome] = execute_chaos_task,
    ) -> None:
        self.workers = resolve_workers(workers)
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.timeout_s = timeout_s
        self.retries = retries
        self.task_runner = task_runner

    def run(
        self,
        tasks: Sequence[ChaosTask],
        *,
        journal: Optional[RunJournal] = None,
        budget=None,
        store=None,
        coordinator_only: bool = False,
        run_id: str = "fabric",
    ) -> TriageReport:
        """Execute every cell and return the :class:`TriageReport`.

        Outcomes are ordered exactly as ``tasks`` — never by completion
        order — so campaigns are deterministic given their seeds.

        ``journal`` makes the campaign durable and preemption-safe: cells
        write ``started``/``finished``/``quarantined`` records through the
        write-ahead journal, terminal cells are restored on resume instead
        of re-executed, and the grid runs under the
        :class:`~repro.analysis.supervisor.WorkerSupervisor` with per-cell
        budgets (``budget`` defaults to a wall budget of ``timeout_s``).
        SIGINT/SIGTERM drains in-flight cells, flushes the journal and
        raises :class:`~repro.sim.errors.RunInterrupted`.

        ``store`` runs the campaign on the coordinator/worker fabric
        instead (see :class:`~repro.analysis.coordinator.Coordinator`);
        the store carries the run's durability, so ``journal`` and
        ``store`` are mutually exclusive.
        """
        if journal is not None and store is not None:
            raise ValueError(
                "journal= and store= are mutually exclusive: the store "
                "fabric carries its own durability"
            )
        start = time.perf_counter()
        if store is not None:
            return self._run_fabric(
                tasks, store, budget, start,
                coordinator_only=coordinator_only, run_id=run_id,
            )
        if journal is not None:
            return self._run_journaled(tasks, journal, budget, start)
        results: List[Optional[ChaosOutcome]] = [None] * len(tasks)
        if self.workers == 1 or len(tasks) <= 1:
            retried = self._run_serial(tasks, results)
        else:
            retried = self._run_pool(tasks, results)
        assert all(outcome is not None for outcome in results)
        return TriageReport(
            outcomes=results,  # type: ignore[arg-type]
            elapsed_s=time.perf_counter() - start,
            retried=retried,
            workers=self.workers,
        )

    @staticmethod
    def fingerprint(tasks: Sequence[ChaosTask]) -> str:
        """The campaign's config fingerprint (over the expanded grid)."""
        return config_fingerprint("chaos", [task.to_dict() for task in tasks])

    # ---------------------------------------------------------------- fabric

    def _run_fabric(
        self,
        tasks: Sequence[ChaosTask],
        store,
        budget,
        start: float,
        *,
        coordinator_only: bool,
        run_id: str,
    ) -> TriageReport:
        """The fabric path: cells pulled through store leases.

        ``workers=1`` executes in-process with the serial path's exact
        semantics (no timeout containment — reproducer-friendly). With
        more workers the cells run in disposable child processes and
        ``budget`` defaults to a wall budget of ``timeout_s``, mapping
        onto the same ``timeout``/``crashed`` quarantine statuses as the
        journaled path.
        """
        from .coordinator import Coordinator  # local: avoids the cycle
        from .supervisor import CellBudget

        if budget is None and (self.workers > 1 or coordinator_only):
            budget = CellBudget(wall_s=self.timeout_s)
        coordinator = Coordinator(
            store,
            workers=self.workers,
            budget=budget,
            retries=self.retries,
            coordinator_only=coordinator_only,
        )
        outcomes = coordinator.run(
            "chaos",
            [task.to_dict() for task in tasks],
            fingerprint=self.fingerprint(tasks),
            run_id=run_id,
        )
        assert all(outcome is not None for outcome in outcomes)
        return TriageReport(
            outcomes=outcomes,
            elapsed_s=time.perf_counter() - start,
            retried=coordinator.stats.retried,
            workers=self.workers,
        )

    # --------------------------------------------------------------- durable

    def _run_journaled(
        self,
        tasks: Sequence[ChaosTask],
        journal: RunJournal,
        budget,
        start: float,
    ) -> TriageReport:
        """The durable path: restore terminal cells, supervise the rest.

        Budget kills map onto the existing quarantine statuses — a wall
        budget breach is a ``timeout``, an RSS breach or a dead worker is
        ``crashed`` — with the precise reason kept in the journal record,
        so ``runs doctor`` can tell budget kills from plain crashes.
        """
        from .supervisor import CellBudget, WorkerSupervisor

        journal.verify_fingerprint(self.fingerprint(tasks))
        state = journal.state
        results: List[Optional[ChaosOutcome]] = [None] * len(tasks)
        open_cells: List[Tuple[int, ChaosTask]] = []
        for index, task in enumerate(tasks):
            terminal = state.terminal(index)
            if terminal is not None:
                results[index] = ChaosOutcome.from_verdict(
                    task, terminal["outcome"]
                )
            else:
                open_cells.append((index, task))

        def on_start(index: int, task: ChaosTask) -> None:
            journal.append("started", cell=index)

        def on_result(index: int, task: ChaosTask, outcome) -> None:
            results[index] = outcome
            journal.append(
                "finished", cell=index, outcome=outcome.verdict_dict()
            )

        def on_failure(failure) -> None:
            status = "timeout" if failure.kind == "wall-budget" else "crashed"
            outcome = ChaosOutcome(
                task=failure.task,
                status=status,
                error=failure.detail,
                retries=failure.attempts - 1,
            )
            results[failure.index] = outcome
            journal.append(
                "quarantined",
                cell=failure.index,
                reason=failure.kind,
                outcome=outcome.verdict_dict(),
            )

        if budget is None:
            budget = CellBudget(wall_s=self.timeout_s)
        supervisor = WorkerSupervisor(
            self.task_runner,
            workers=self.workers,
            budget=budget,
            retries=self.retries,
        )
        try:
            sup_stats = supervisor.run(
                open_cells,
                on_start=on_start,
                on_result=on_result,
                on_failure=on_failure,
            )
        except BaseException:
            try:
                journal.append("interrupted")
                journal.flush()
            except Exception:  # noqa: BLE001 — best-effort on teardown
                pass
            raise
        assert all(outcome is not None for outcome in results)
        return TriageReport(
            outcomes=results,  # type: ignore[arg-type]
            elapsed_s=time.perf_counter() - start,
            retried=sup_stats.retried,
            workers=self.workers,
        )

    # ------------------------------------------------------------------ serial

    def _run_serial(
        self, tasks: Sequence[ChaosTask], results: List[Optional[ChaosOutcome]]
    ) -> int:
        retried = 0
        for index, task in enumerate(tasks):
            attempts = 0
            while True:
                try:
                    outcome = self.task_runner(task)
                    outcome.retries = attempts
                    results[index] = outcome
                    break
                except Exception as exc:  # noqa: BLE001 — quarantined below
                    attempts += 1
                    if attempts <= self.retries:
                        logger.warning(
                            "chaos cell %s crashed (%s: %s); retrying",
                            task.describe(), type(exc).__name__, exc,
                        )
                        retried += 1
                        continue
                    results[index] = ChaosOutcome(
                        task=task,
                        status="crashed",
                        error=f"{type(exc).__name__}: {exc}",
                        retries=attempts - 1,
                    )
                    break
        return retried

    # -------------------------------------------------------------------- pool

    def _run_pool(
        self, tasks: Sequence[ChaosTask], results: List[Optional[ChaosOutcome]]
    ) -> int:
        #: (index, task, attempts) still needing a verdict.
        queue: List[Tuple[int, ChaosTask, int]] = [
            (index, task, 0) for index, task in enumerate(tasks)
        ]
        retried = 0
        while queue:
            queue, newly_retried = self._pool_cycle(queue, results)
            retried += newly_retried
        return retried

    def _pool_cycle(
        self,
        queue: List[Tuple[int, ChaosTask, int]],
        results: List[Optional[ChaosOutcome]],
    ) -> Tuple[List[Tuple[int, ChaosTask, int]], int]:
        """One pool lifetime: submit everything, drain until done or hung.

        Returns the requeue (cells to retry in a fresh pool) and the number
        of retries issued. On a hang (no completion within ``timeout_s``)
        the pending cells are quarantined as ``timeout`` and the pool's
        workers are terminated.
        """
        requeue: List[Tuple[int, ChaosTask, int]] = []
        retried = 0
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(queue)))
        hung = False
        try:
            futures = {
                pool.submit(self.task_runner, task): (index, task, attempts)
                for index, task, attempts in queue
            }
            pending = set(futures)
            while pending:
                done, pending = wait(
                    pending, timeout=self.timeout_s, return_when=FIRST_COMPLETED
                )
                if not done:
                    # A full timeout window with zero progress: everything
                    # still pending is hung (finished cells already drained
                    # the queue) — quarantine and abandon this pool.
                    hung = True
                    for future in pending:
                        index, task, attempts = futures[future]
                        future.cancel()
                        results[index] = ChaosOutcome(
                            task=task,
                            status="timeout",
                            error=f"TimeoutError: no verdict within {self.timeout_s}s",
                            retries=attempts,
                        )
                    break
                for future in done:
                    index, task, attempts = futures[future]
                    try:
                        outcome = future.result()
                        outcome.retries = attempts
                        results[index] = outcome
                    except Exception as exc:  # noqa: BLE001 — quarantined below
                        attempts += 1
                        if attempts <= self.retries:
                            logger.warning(
                                "chaos cell %s crashed (%s: %s); retrying",
                                task.describe(), type(exc).__name__, exc,
                            )
                            requeue.append((index, task, attempts))
                            retried += 1
                        else:
                            results[index] = ChaosOutcome(
                                task=task,
                                status="crashed",
                                error=f"{type(exc).__name__}: {exc}",
                                retries=attempts - 1,
                            )
        finally:
            if hung:
                # Cancel queued work and kill the hung workers; without the
                # kill, shutdown() would block on the hang forever.
                for process in list(getattr(pool, "_processes", {}).values()):
                    try:
                        process.terminate()
                    except Exception:  # noqa: BLE001 — best-effort teardown
                        pass
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)
        requeue.sort(key=lambda item: item[0])
        return requeue, retried


# ---------------------------------------------------------------------- grids

#: Named fault-axis bundles for the CLI's ``--preset``. Each value feeds
#: :func:`chaos_grid`'s fault-axis keywords; every listed value becomes its
#: own single-axis fault variant (grids stay linear, not exponential).
CHAOS_PRESETS: Dict[str, Dict[str, Sequence]] = {
    "smoke": {
        "drop": (0.2,),
        "corrupt": (0.2,),
        "extra_crashes": (1,),
    },
    "standard": {
        "drop": (0.05, 0.2, 0.5),
        "duplicate": (0.3,),
        "corrupt": (0.05, 0.3),
        "extra_crashes": (1, 2),
    },
}


def chaos_grid(
    algorithms: Sequence[str],
    sizes: Sequence[Tuple[int, int]],
    *,
    attacks: Sequence[str] = ("silent",),
    seeds: Sequence[int] = (0,),
    engines: Sequence[str] = (DEFAULT_ENGINE,),
    chaos_seeds: Sequence[int] = (0,),
    drop: Sequence[float] = (),
    duplicate: Sequence[float] = (),
    corrupt: Sequence[float] = (),
    extra_crashes: Sequence[int] = (),
    crash_round: int = 1,
    combine: bool = False,
    include_clean: bool = True,
    workload: str = "uniform",
    max_rounds: int = 64,
    monitor: bool = True,
) -> List[ChaosTask]:
    """Build the campaign grid: configurations × fault variants.

    Each value in ``drop``/``duplicate``/``corrupt``/``extra_crashes``
    becomes its own *single-axis* fault variant, keeping the grid linear in
    the number of fault values. ``combine=True`` instead merges one value
    per axis into a single combined plan (reproducers use this to pin exact
    cells). ``include_clean=True`` adds the no-fault control cell per
    configuration — the baseline that proves a ``violation`` verdict comes
    from the injection, not the configuration.
    """
    variants: List[Dict[str, object]] = []
    if combine:
        for axis, values in (
            ("drop", drop), ("duplicate", duplicate), ("corrupt", corrupt),
            ("extra_crashes", extra_crashes),
        ):
            if len(values) > 1:
                raise ConfigurationError(
                    f"combine=True needs at most one value per axis; "
                    f"{axis} got {list(values)}"
                )
        combined: Dict[str, object] = {}
        if drop:
            combined["drop"] = drop[0]
        if duplicate:
            combined["duplicate"] = duplicate[0]
        if corrupt:
            combined["corrupt"] = corrupt[0]
        if extra_crashes:
            combined["extra_crashes"] = extra_crashes[0]
            combined["crash_round"] = crash_round
        if combined:
            variants.append(combined)
    else:
        variants.extend({"drop": value} for value in drop)
        variants.extend({"duplicate": value} for value in duplicate)
        variants.extend({"corrupt": value} for value in corrupt)
        variants.extend(
            {"extra_crashes": value, "crash_round": crash_round}
            for value in extra_crashes
        )
    tasks: List[ChaosTask] = []
    for algorithm in algorithms:
        for n, t in sizes:
            for attack in attacks:
                for seed in seeds:
                    for engine in engines:
                        base = dict(
                            algorithm=algorithm,
                            n=n,
                            t=t,
                            attack=attack,
                            seed=seed,
                            engine=engine,
                            workload=workload,
                            max_rounds=max_rounds,
                            monitor=monitor,
                        )
                        if include_clean or not variants:
                            # The chaos seed is irrelevant without a fault
                            # plan, so the control cell appears exactly once
                            # per configuration.
                            tasks.append(ChaosTask(**base))
                        for chaos_seed in chaos_seeds:
                            for variant in variants:
                                tasks.append(
                                    ChaosTask(
                                        chaos_seed=chaos_seed, **base, **variant
                                    )
                                )
    return tasks
