"""ASCII table rendering for the benchmark harness.

The paper has no numeric tables of its own (it is a theory paper), so the
benchmarks print *our* tables — paper claim vs measured — in a fixed format
that EXPERIMENTS.md quotes. One renderer keeps every experiment's output
uniform and diff-able.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a monospace table with a header rule.

    Cells are stringified with ``str``; numeric alignment is right for
    ints/floats, left for everything else.
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    numeric = _numeric_columns(headers, materialised)
    widths = [len(header) for header in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for column, cell in enumerate(cells):
            if numeric[column]:
                parts.append(cell.rjust(widths[column]))
            else:
                parts.append(cell.ljust(widths[column]))
        return "  ".join(parts).rstrip()

    lines = [render_row(list(headers))]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def _numeric_columns(headers: Sequence[str], rows: List[List[str]]) -> List[bool]:
    flags = []
    for column in range(len(headers)):
        cells = [row[column] for row in rows if column < len(row)]
        flags.append(bool(cells) and all(_looks_numeric(cell) for cell in cells))
    return flags


def _looks_numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("x%"))
    except ValueError:
        return False
    return True


def banner(title: str) -> str:
    """Section banner used between experiment tables."""
    rule = "=" * max(len(title), 8)
    return f"\n{rule}\n{title}\n{rule}"
