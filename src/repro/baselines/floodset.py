"""FloodSet renaming: the classical ``t + 1``-round crash-model anchor.

Gossip the id set for ``t + 1`` rounds; with at most ``t`` crashes, some
round in any chain of ``t + 1`` is crash-free, after which all correct
processes hold the *same* set (the standard FloodSet argument, Lynch ch. 6).
The new name is simply the rank of the own id in that common set: strong,
order-preserving, exact — but ``t + 1`` rounds regardless of how large
``log t`` would have been, which is the gap the AA-based algorithms close.
Included as the "solve it with exact agreement" comparison point for the
crash model (experiment E8), mirroring what EIG renaming is for the
Byzantine model (E7).
"""

from __future__ import annotations

from typing import Set

from ..core.messages import EchoMessage, IdMessage
from ..core.validation import is_sound_id
from ..sim.process import Inbox, Outbox, Process, ProcessContext


class FloodSetRenaming(Process):
    """A correct process flooding ids for ``t + 1`` rounds, then ranking."""

    def __init__(self, ctx: ProcessContext) -> None:
        super().__init__(ctx)
        self.known: Set[int] = {ctx.my_id}
        self.rounds = ctx.t + 1

    def send(self, round_no: int) -> Outbox:
        if round_no == 1:
            return self.broadcast(IdMessage(self.ctx.my_id))
        return self.broadcast(
            *[EchoMessage(identifier) for identifier in sorted(self.known)]
        )

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for link in sorted(inbox):
            for message in inbox[link]:
                if isinstance(message, (IdMessage, EchoMessage)) and is_sound_id(
                    message.id
                ):
                    self.known.add(message.id)
        if round_no == self.rounds:
            ordered = sorted(self.known)
            self.output_value = ordered.index(self.ctx.my_id) + 1
            self.ctx.log(round_no, "known", tuple(ordered))
