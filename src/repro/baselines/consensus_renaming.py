"""Consensus-based order-preserving renaming (the introduction's strawman).

"One could consider using … consensus to ensure each process agrees on the
same set of identifiers and, in this way, solve renaming, but these
approaches have step complexity linear in the number of faults" — Section I.

This baseline does exactly that: agree on every process's announced id
(``t + 1`` rounds, identified model — see :mod:`repro.agreement.identity`
for why that is a *stronger* model than the one Alg. 1 solves), then rank
the own id inside the agreed vector. The outcome is impeccable — strong
namespace ``N``, order preserving, exact — and the cost is the point:
rounds grow linearly in ``t`` and per-round traffic exponentially, versus
Alg. 1's ``3⌈log₂ t⌉ + 7`` rounds of linear-size messages. Experiment E7
prices the two side by side.

Structurally the baseline is a :class:`~repro.sim.compose.Multiplexer`
over ``N`` single-source :class:`~repro.agreement.eig.EIGBroadcast`
instances — interactive consistency *is* N Byzantine broadcasts, and the
composition layer makes that decomposition literal (replacing the previous
subclass-override arrangement on the combined-tree EIG). Traffic travels
as per-instance :class:`~repro.sim.compose.EnvelopeMessage` frames; the
per-process trees, resolution, and outputs are identical to the combined
:class:`~repro.agreement.eig.EIGInteractiveConsistency`.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..agreement.eig import EIGBroadcast
from ..agreement.identity import make_identified_factory
from ..sim.compose import Multiplexer
from ..sim.process import ProcessContext


class ConsensusRenaming(Multiplexer):
    """N EIG broadcasts on announced ids; name = rank in the agreed vector.

    Byzantine slots can contribute one agreed-upon value each (possibly a
    duplicate or garbage); duplicates collapse in the set, garbage occupies
    at most ``t`` slots, so the namespace stays within ``N``.
    """

    def __init__(
        self, ctx: ProcessContext, my_index: int, link_to_index: Dict[int, int]
    ) -> None:
        self.my_index = my_index
        self.rounds = ctx.t + 1
        instances = {
            source: EIGBroadcast(
                ctx,
                source,
                my_index,
                link_to_index,
                value=ctx.my_id if source == my_index else None,
            )
            for source in range(ctx.n)
        }
        super().__init__(ctx, instances, finish=self._rank_in_vector)

    def _rank_in_vector(self, outputs: Dict[int, object]) -> int:
        vector = tuple(outputs[source] for source in range(self.ctx.n))
        agreed = sorted({value for value in vector if value > 0})
        self.ctx.log(self.rounds, "agreed_ids", tuple(agreed))
        return agreed.index(self.ctx.my_id) + 1


def consensus_renaming_factory(n: int, ids: Sequence[int], seed: int):
    """Identified-model factory for :func:`repro.sim.run_protocol`."""
    return make_identified_factory(
        n, ids, seed, lambda ctx, me, links: ConsensusRenaming(ctx, me, links)
    )
