"""Consensus-based order-preserving renaming (the introduction's strawman).

"One could consider using … consensus to ensure each process agrees on the
same set of identifiers and, in this way, solve renaming, but these
approaches have step complexity linear in the number of faults" — Section I.

This baseline does exactly that: run EIG interactive consistency on every
process's announced id (``t + 1`` rounds, identified model — see
:mod:`repro.agreement.identity` for why that is a *stronger* model than the
one Alg. 1 solves), then rank the own id inside the agreed vector. The
outcome is impeccable — strong namespace ``N``, order preserving, exact —
and the cost is the point: rounds grow linearly in ``t`` and message size
exponentially, versus Alg. 1's ``3⌈log₂ t⌉ + 7`` rounds of linear-size
messages. Experiment E7 prices the two side by side.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..agreement.eig import EIGInteractiveConsistency
from ..agreement.identity import make_identified_factory
from ..sim.process import Inbox, ProcessContext


class ConsensusRenaming(EIGInteractiveConsistency):
    """EIG on announced ids; name = rank of the own id in the agreed vector.

    Byzantine slots can contribute one agreed-upon value each (possibly a
    duplicate or garbage); duplicates collapse in the set, garbage occupies
    at most ``t`` slots, so the namespace stays within ``N``.
    """

    def __init__(
        self, ctx: ProcessContext, my_index: int, link_to_index: Dict[int, int]
    ) -> None:
        super().__init__(ctx, my_index, link_to_index, value=ctx.my_id)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        super().deliver(round_no, inbox)
        if round_no == self.rounds:
            vector = self.output_value
            agreed = sorted({value for value in vector if value > 0})
            self.ctx.log(round_no, "agreed_ids", tuple(agreed))
            self.output_value = agreed.index(self.ctx.my_id) + 1


def consensus_renaming_factory(n: int, ids: Sequence[int], seed: int):
    """Identified-model factory for :func:`repro.sim.run_protocol`."""
    return make_identified_factory(
        n, ids, seed, lambda ctx, me, links: ConsensusRenaming(ctx, me, links)
    )
