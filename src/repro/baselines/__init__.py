"""Baseline algorithms the paper compares against.

* :class:`OkunCrashRenaming` — crash-tolerant order-preserving strong
  renaming [14], the algorithm this paper generalises.
* :class:`BitSplitRenaming` — CHT-style bit-by-bit strong renaming [6]
  (crash model, ``O(log N)`` decision latency).
* :class:`FloodSetRenaming` — ``t+1``-round exact crash renaming.
* :class:`TranslatedByzantineRenaming` — cost envelope of [15]: namespace
  ``2N``, echo-doubled rounds, non-order-preserving.
* :class:`ConsensusRenaming` — the introduction's strawman: EIG interactive
  consistency then rank (``t+1`` rounds, exponential messages).
"""

from .cht import BitSplitRenaming
from .consensus_renaming import ConsensusRenaming, consensus_renaming_factory
from .floodset import FloodSetRenaming
from .okun_crash import EXCHANGE_ROUNDS, OkunCrashRenaming
from .splitting import ClaimMessage, Interval, IntervalSplitter, interval_rounds
from .translated_byzantine import TranslatedByzantineRenaming

__all__ = [
    "BitSplitRenaming",
    "ClaimMessage",
    "ConsensusRenaming",
    "EXCHANGE_ROUNDS",
    "FloodSetRenaming",
    "Interval",
    "IntervalSplitter",
    "OkunCrashRenaming",
    "TranslatedByzantineRenaming",
    "consensus_renaming_factory",
    "interval_rounds",
]
