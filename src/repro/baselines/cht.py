"""Chaudhuri–Herlihy–Tuttle-style bit-by-bit strong renaming (crash faults).

The paper's Section III describes [6]: pick the new name one bit at a time,
splitting the ids sharing your current prefix into halves, ``O(log N)``
rounds, crash-tolerant, tight namespace. This module reconstructs that
algorithm on the :class:`repro.baselines.splitting.IntervalSplitter` core.

Execution model: a fixed horizon of ``⌈log₂ N⌉ + N`` rounds. Every process
broadcasts its ``(id, interval)`` claim every round (including after it has
internally settled — silent winners would let late probers land on taken
slots). The *decision latency* — the round at which a process's singleton
became uncontested, traced as a ``settled`` event — is the quantity matching
the paper's ``O(log N)`` claim and what experiment E8 reports; in crash-free
runs every process settles by round ``⌈log₂ N⌉`` with name = rank (strong,
order-preserving). Under crashes, transient view divergence can trigger
rightward probing, which costs extra rounds, can push names past ``N`` (by
at most the number of faults observed) and can break order for the probed
processes — the literature algorithm is also not order-preserving under
faults, which is exactly the gap Okun [14] and this paper close.
"""

from __future__ import annotations

from typing import Optional

from ..core.validation import is_sound_id
from ..sim.process import Inbox, Outbox, Process, ProcessContext
from .splitting import ClaimMessage, IntervalSplitter, interval_rounds


class BitSplitRenaming(Process):
    """A correct process running interval-split renaming over ``[1..M]``.

    ``namespace`` defaults to ``N`` (the CHT strong-renaming configuration);
    the translated-Byzantine baseline passes ``2N``.
    """

    def __init__(
        self,
        ctx: ProcessContext,
        namespace: Optional[int] = None,
        extra_rounds: Optional[int] = None,
    ) -> None:
        super().__init__(ctx)
        self.namespace = ctx.n if namespace is None else namespace
        self.splitter = IntervalSplitter(ctx.my_id, self.namespace)
        probe_budget = ctx.n if extra_rounds is None else extra_rounds
        self.horizon = interval_rounds(self.namespace) + probe_budget
        self._settled_round: Optional[int] = None

    # ------------------------------------------------------------------ rounds

    def send(self, round_no: int) -> Outbox:
        lo, hi = self.splitter.claim()
        return self.broadcast(ClaimMessage(self.ctx.my_id, lo, hi))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        rivals = self._rival_ids(inbox)
        already = self.splitter.decided
        self.splitter.resolve(rivals)
        if self.splitter.decided is not None and already is None:
            self._settled_round = round_no
            self.ctx.log(round_no, "settled", self.splitter.decided)
        if round_no == self.horizon:
            self._finish(round_no)

    def _rival_ids(self, inbox: Inbox):
        lo, hi = self.splitter.claim()
        rivals = []
        for link in sorted(inbox):
            for message in inbox[link]:
                if (
                    isinstance(message, ClaimMessage)
                    and is_sound_id(message.id)
                    and message.lo == lo
                    and message.hi == hi
                ):
                    rivals.append(message.id)
                    break  # one claim per link per round
        return rivals

    def _finish(self, round_no: int) -> None:
        if self.splitter.decided is not None:
            self.output_value = self.splitter.decided
            return
        # Horizon reached while still contested (possible only under
        # pathological fault schedules): take the current slot; the probe
        # budget makes this unreachable in every scenario we test, but a
        # deterministic fallback beats a hang.
        lo, _ = self.splitter.claim()
        self.output_value = lo
        self.ctx.log(round_no, "settled", lo)

    @property
    def settled_round(self) -> Optional[int]:
        """Round at which this process's name became uncontested."""
        return self._settled_round
