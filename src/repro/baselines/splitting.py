"""Interval-splitting engine for the bit-by-bit renaming baselines.

The Chaudhuri–Herlihy–Tuttle idea [6]: every process owns a shrinking
interval of the target namespace; each round, processes claiming the same
interval sort their ids and split — the low-ranked half takes the left
child, the rest the right — until each sits alone in a singleton and takes
that slot as its name.

Under faults, views can disagree transiently (a crashed process's id vanishes
from later rounds; a Byzantine-era claim may be misattributed), so singleton
slots can be contested. The engine resolves contention with deterministic
rightward *probing*: at a singleton, the rank-1 claimant stays, rank ``k``
moves ``k − 1`` slots right. Progress is monotone (the multiset of positions
only moves right) and a process decides only in a round where it observed
no other claim on its singleton — which makes uniqueness a one-line argument
when claims of correct processes always reach everyone (crash model, or the
filtered-claim Byzantine wrapper).

This file is the shared sans-I/O core; :mod:`repro.baselines.cht` and
:mod:`repro.baselines.translated_byzantine` wrap it in a protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..sim.messages import KIND_BITS, Message


@dataclass(frozen=True)
class ClaimMessage(Message):
    """A round's territorial claim: ``id`` currently wants ``[lo, hi]``."""

    id: int
    lo: int
    hi: int

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + id_bits + 2 * rank_bits


@dataclass(frozen=True)
class Interval:
    """A closed integer interval of the target namespace."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1

    @property
    def is_singleton(self) -> bool:
        return self.lo == self.hi

    def left(self) -> "Interval":
        """Left child: the low ``⌈size/2⌉`` slots."""
        return Interval(self.lo, self.lo + (self.size + 1) // 2 - 1)

    def right(self) -> "Interval":
        """Right child: the remaining slots."""
        return Interval(self.lo + (self.size + 1) // 2, self.hi)


class IntervalSplitter:
    """Per-process splitting state machine.

    Drive with :meth:`claim` (what to broadcast) and :meth:`resolve` (feed
    the ids observed claiming *my* interval this round, including my own id).
    ``decided`` becomes the final name once settled.
    """

    def __init__(self, my_id: int, namespace: int) -> None:
        if namespace < 1:
            raise ValueError(f"namespace must be positive, got {namespace}")
        self.my_id = my_id
        self.interval = Interval(1, namespace)
        self.decided: Optional[int] = None

    def claim(self) -> Tuple[int, int]:
        """The interval to announce this round."""
        return self.interval.lo, self.interval.hi

    def resolve(self, rivals: Iterable[int]) -> None:
        """Advance one level given the ids seen claiming my interval.

        ``rivals`` may or may not include ``my_id``; it is added implicitly.
        """
        if self.decided is not None:
            return
        claimants: List[int] = sorted(set(rivals) | {self.my_id})
        rank = claimants.index(self.my_id) + 1
        if self.interval.is_singleton:
            if len(claimants) == 1:
                self.decided = self.interval.lo
            elif rank > 1:
                # Probe: slide right past the lower-ranked claimants.
                slot = self.interval.lo + rank - 1
                self.interval = Interval(slot, slot)
            # rank == 1 with company: stay put; company either decides
            # elsewhere, probes away, or was a ghost that disappears.
            return
        left = self.interval.left()
        if rank <= left.size:
            self.interval = left
        else:
            self.interval = self.interval.right()


def interval_rounds(namespace: int) -> int:
    """Rounds needed to reach singletons from a fresh splitter: ⌈log₂ M⌉."""
    rounds = 0
    size = namespace
    while size > 1:
        size = (size + 1) // 2
        rounds += 1
    return rounds
