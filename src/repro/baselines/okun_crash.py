"""Okun's crash-tolerant strong order-preserving renaming [14] (reconstruction).

The algorithm this paper generalises to Byzantine faults. Reconstructed from
the paper's own description (Section III): processes exchange ids, propose a
rank per id, and run per-id *approximate agreement* until all proposals sit
within a safe distance, then round.

Structure (crash model — every message content is honest):

* **Round 1** — broadcast the own id. Everything received is ``timely``.
* **Round 2** — echo all ids seen (union gossip). Everything received is
  ``known``; since a correct process's round-1 set is echoed to everyone,
  ``timely_p ⊆ known_q`` for correct ``p, q`` — the crash-model analogue of
  Lemma IV.1 that the δ-spacing validation relies on.
* **Rounds 3 …** — the same voting loop as Alg. 1, with *no trimming*
  (``trim=0``: honest votes need no Byzantine filtering, averaging the whole
  multiset maximises contraction) and the same ``isValid`` δ-spacing filter,
  which here only screens out stale vectors from processes that crashed
  before completing the exchange.

Round complexity ``2 + (3⌈log₂ t⌉ + 3)`` — the ``O(log f)``-flavoured
schedule of [14]/[1] — and namespace ``N`` (nobody can forge ids in the
crash model, so ``|known| ≤ N``): strong order-preserving renaming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..core.approximation import approximate, nearest_int
from ..core.messages import EchoMessage, IdMessage, Rank, RanksMessage
from ..core.params import SystemParams
from ..core.validation import is_sound_id, is_sound_vote, is_valid_ranks
from ..sim.errors import SafetyViolation
from ..sim.process import Inbox, Outbox, Process, ProcessContext

#: Id-exchange rounds before voting starts.
EXCHANGE_ROUNDS = 2


class OkunCrashRenaming(Process):
    """A correct process running the reconstructed crash-fault algorithm.

    ``early_deciding=True`` enables the Alistarh-et-al.-style extension
    that [1] actually proved for this crash algorithm: freeze once every
    received vote agreed with the local ranks for two consecutive rounds.
    In the crash model every vote is honest, so unanimity directly means
    all live processes hold the common value — the fixed-point argument is
    immediate (and simpler than the Byzantine one in
    ``RenamingOptions.early_deciding``).
    """

    def __init__(
        self,
        ctx: ProcessContext,
        voting_rounds: Optional[int] = None,
        early_deciding: bool = False,
    ) -> None:
        super().__init__(ctx)
        self.params = SystemParams(ctx.n, ctx.t)
        self.delta = self.params.delta
        self.voting_rounds = (
            self.params.voting_rounds if voting_rounds is None else voting_rounds
        )
        self.total_rounds = EXCHANGE_ROUNDS + self.voting_rounds
        self.timely: Set[int] = set()
        self.known: Set[int] = set()
        self.ranks: Dict[int, Rank] = {}
        self.early_deciding = early_deciding
        self._stable_rounds = 0
        self.frozen_at: Optional[int] = None

    # ------------------------------------------------------------------ rounds

    def send(self, round_no: int) -> Outbox:
        if round_no == 1:
            return self.broadcast(IdMessage(self.ctx.my_id))
        if round_no == 2:
            return self.broadcast(
                *[EchoMessage(identifier) for identifier in sorted(self.timely)]
            )
        return self.broadcast(RanksMessage.from_dict(self.ranks))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if round_no == 1:
            for link in sorted(inbox):
                for message in inbox[link]:
                    if isinstance(message, IdMessage) and is_sound_id(message.id):
                        self.timely.add(message.id)
                        break
            self.known = set(self.timely)
        elif round_no == 2:
            for link in sorted(inbox):
                for message in inbox[link]:
                    if isinstance(message, EchoMessage) and is_sound_id(message.id):
                        self.known.add(message.id)
            self._initialise_ranks()
        else:
            self._voting_step(round_no, inbox)
            if round_no == self.total_rounds:
                own_rank = self.ranks.get(self.ctx.my_id)
                if own_rank is None:
                    # In the crash model the own id is always timely (the
                    # self-loop is reliable) and δ-validation keeps it in
                    # every accepted vote; only beyond-model message loss
                    # can fold it out of the rank vector.
                    raise SafetyViolation(
                        f"own id {self.ctx.my_id} lost from the rank vector"
                        " — cannot happen in the crash model",
                        violated="invariant",
                        round_no=round_no,
                        ids=(self.ctx.my_id,),
                    )
                self.output_value = nearest_int(own_rank)

    # ------------------------------------------------------------- phase logic

    def _initialise_ranks(self) -> None:
        ordered = sorted(self.known)
        self.ranks = {
            identifier: position * self.delta
            for position, identifier in enumerate(ordered, start=1)
        }
        self.ctx.log(EXCHANGE_ROUNDS, "known", tuple(ordered))
        self.ctx.log(EXCHANGE_ROUNDS, "ranks", dict(self.ranks))

    def _voting_step(self, round_no: int, inbox: Inbox) -> None:
        votes = []
        for link in sorted(inbox):
            for message in inbox[link]:
                if isinstance(message, RanksMessage):
                    vote = message.as_dict()
                    if is_sound_vote(vote) and is_valid_ranks(
                        self.timely, vote, self.delta
                    ):
                        votes.append(vote)
                    break
        if self.frozen_at is not None:
            return  # frozen: keep broadcasting, stop folding
        if self.early_deciding and self._check_stability(round_no, votes):
            return
        self.ranks, self.known = approximate(
            self.ranks, set(self.known), votes, self.ctx.n, self.ctx.t, trim=0
        )
        self.ctx.log(round_no, "ranks", dict(self.ranks))

    def _check_stability(self, round_no: int, votes) -> bool:
        unanimous = votes and all(
            all(
                identifier in vote and vote[identifier] == rank
                for identifier, rank in self.ranks.items()
                if identifier in self.known
            )
            for vote in votes
        )
        if unanimous:
            self._stable_rounds += 1
        else:
            self._stable_rounds = 0
        if self._stable_rounds >= 2:
            self.frozen_at = round_no
            self.ctx.log(round_no, "early_frozen", dict(self.ranks))
            return True
        return False
