"""Translated-Byzantine renaming baseline ([15], cost-envelope reproduction).

Okun, Barak & Gafni [15] obtain Byzantine renaming by pushing the
crash-tolerant bit-split algorithm of [6] through the automatic
crash→Byzantine translations of [3, 13]. The observable costs of the result
— the quantities this paper compares against — are:

* namespace doubled to ``2N`` (Byzantine processes can make different
  correct processes see different id sets, and the translation cannot
  collapse them);
* order preservation lost;
* ``O(log N)`` communication steps of echo-heavy messages;
* resilience ``N > 3t``.

Reproducing the *translation machinery itself* (consistent-history echoing
of [3, 13]) is out of scope — it is a paper-sized system of its own; per
DESIGN.md §6 we reproduce the translated algorithm's **cost envelope**
faithfully instead: the Byzantine-tolerant 4-step id-selection phase (which
bounds forged ids exactly as the translation's reliable-broadcast layer
does) feeds the bit-split engine over a ``2N`` namespace, with each split
level costing two rounds (claim + echo) to account for the translation's
echo overhead. Runs are meaningful under omission-style adversaries
(silent/crash/conforming); the full [15] construction would also withstand
active equivocation during the split phase, which this envelope does not
re-implement — benchmarks E7 compare all algorithms under the same
omission adversaries, which is conservative *in favour of* this baseline.
"""

from __future__ import annotations

from typing import Optional

from ..core.id_selection import ID_SELECTION_STEPS, IdSelectionPhase
from ..sim.process import Inbox, Outbox, Process, ProcessContext
from .splitting import ClaimMessage, IntervalSplitter, interval_rounds


class TranslatedByzantineRenaming(Process):
    """Id selection (4 rounds) + echo-weighted bit split over ``[1..2N]``."""

    def __init__(self, ctx: ProcessContext, extra_rounds: Optional[int] = None) -> None:
        super().__init__(ctx)
        if ctx.n <= 3 * ctx.t:
            raise ValueError(
                f"translated renaming requires N > 3t (n={ctx.n}, t={ctx.t})"
            )
        self.namespace = 2 * ctx.n
        self.selection = IdSelectionPhase(ctx.n, ctx.t, ctx.my_id)
        self.splitter: Optional[IntervalSplitter] = None
        probe_budget = ctx.n if extra_rounds is None else extra_rounds
        # Two rounds per split level: the claim round plus the translation's
        # echo round (modelled as a repeat of the claim).
        self.horizon = (
            ID_SELECTION_STEPS + 2 * interval_rounds(self.namespace) + probe_budget
        )
        self._settled_round: Optional[int] = None

    # ------------------------------------------------------------------ rounds

    def send(self, round_no: int) -> Outbox:
        if round_no <= ID_SELECTION_STEPS:
            return self.broadcast(*self.selection.messages_for_step(round_no))
        assert self.splitter is not None
        lo, hi = self.splitter.claim()
        return self.broadcast(ClaimMessage(self.ctx.my_id, lo, hi))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if round_no <= ID_SELECTION_STEPS:
            self.selection.deliver_step(round_no, inbox)
            if round_no == ID_SELECTION_STEPS:
                self.splitter = IntervalSplitter(self.ctx.my_id, self.namespace)
            return
        assert self.splitter is not None
        # Echo round of each level: claims are re-broadcast; resolving on
        # every round (claim and echo alike) keeps the engine simple and
        # charges the translation's 2x round cost.
        split_round = round_no - ID_SELECTION_STEPS
        rivals = self._rival_ids(inbox)
        already = self.splitter.decided
        if split_round % 2 == 0:
            self.splitter.resolve(rivals)
        if self.splitter.decided is not None and already is None:
            self._settled_round = round_no
            self.ctx.log(round_no, "settled", self.splitter.decided)
        if round_no == self.horizon:
            self._finish(round_no)

    def _rival_ids(self, inbox: Inbox):
        assert self.splitter is not None
        lo, hi = self.splitter.claim()
        accepted = self.selection.accepted
        rivals = []
        for link in sorted(inbox):
            for message in inbox[link]:
                if (
                    isinstance(message, ClaimMessage)
                    and message.lo == lo
                    and message.hi == hi
                    and message.id in accepted
                ):
                    rivals.append(message.id)
                    break
        return rivals

    def _finish(self, round_no: int) -> None:
        assert self.splitter is not None
        if self.splitter.decided is not None:
            self.output_value = self.splitter.decided
            return
        lo, _ = self.splitter.claim()
        self.output_value = lo
        self.ctx.log(round_no, "settled", lo)

    @property
    def settled_round(self) -> Optional[int]:
        """Round at which this process's name became uncontested."""
        return self._settled_round
