"""Translated-Byzantine renaming baseline ([15], cost-envelope reproduction).

Okun, Barak & Gafni [15] obtain Byzantine renaming by pushing the
crash-tolerant bit-split algorithm of [6] through the automatic
crash→Byzantine translations of [3, 13]. The observable costs of the result
— the quantities this paper compares against — are:

* namespace doubled to ``2N`` (Byzantine processes can make different
  correct processes see different id sets, and the translation cannot
  collapse them);
* order preservation lost;
* ``O(log N)`` communication steps of echo-heavy messages;
* resilience ``N > 3t``.

Reproducing the *translation machinery itself* (consistent-history echoing
of [3, 13]) is out of scope — it is a paper-sized system of its own; per
DESIGN.md §6 we reproduce the translated algorithm's **cost envelope**
faithfully instead: the Byzantine-tolerant 4-step id-selection phase (which
bounds forged ids exactly as the translation's reliable-broadcast layer
does) feeds the bit-split engine over a ``2N`` namespace, with each split
level costing two rounds (claim + echo) to account for the translation's
echo overhead. Runs are meaningful under omission-style adversaries
(silent/crash/conforming); the full [15] construction would also withstand
active equivocation during the split phase, which this envelope does not
re-implement — benchmarks E7 compare all algorithms under the same
omission adversaries, which is conservative *in favour of* this baseline.

Composition-wise the baseline is
``PhaseSequence(IdSelectionPhase, IntervalSplitPhase)`` — it reuses the
*same* :class:`~repro.core.id_selection.IdSelectionPhase` object Alg. 1
runs, instead of a private re-implementation.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from ..core.id_selection import (
    ID_SELECTION_STEPS,
    IdSelectionPhase,
    IdSelectionResult,
)
from ..sim.compose import Phase, PhaseContext, PhaseSequence
from ..sim.errors import ConfigurationError
from ..sim.messages import Message
from ..sim.process import Inbox, ProcessContext, ordered_links
from .splitting import ClaimMessage, IntervalSplitter, interval_rounds


class IntervalSplitPhase(Phase):
    """Echo-weighted bit split over ``[1..namespace]`` among accepted ids.

    Each split level costs two steps (claim + echo); claims from links
    whose id is outside the preceding phase's accepted set are ignored.
    Runs to a fixed ``steps`` horizon (synchronous algorithms cannot
    early-terminate without agreement on when).
    """

    def __init__(
        self,
        ctx: PhaseContext,
        accepted: FrozenSet[int],
        *,
        namespace: int,
        steps: int,
    ) -> None:
        self.steps = steps
        self._ctx = ctx
        self.accepted = accepted
        self.splitter = IntervalSplitter(ctx.my_id, namespace)
        #: Global round at which this process's name became uncontested.
        self.settled_round: Optional[int] = None
        self._name: Optional[int] = None

    # ------------------------------------------------------------------ rounds

    def messages_for_step(self, step: int) -> List[Message]:
        lo, hi = self.splitter.claim()
        return [ClaimMessage(self._ctx.my_id, lo, hi)]

    def deliver_step(self, step: int, inbox: Inbox) -> None:
        # Echo round of each level: claims are re-broadcast; resolving on
        # every even step (claim + echo pairs) keeps the engine simple and
        # charges the translation's 2x round cost.
        rivals = self._rival_ids(inbox)
        already = self.splitter.decided
        if step % 2 == 0:
            self.splitter.resolve(rivals)
        if self.splitter.decided is not None and already is None:
            self.settled_round = self._ctx.global_round(step)
            self._ctx.log(step, "settled", self.splitter.decided)
        if step == self.steps:
            self._finish(step)

    # ------------------------------------------------------------- phase logic

    def _rival_ids(self, inbox: Inbox):
        lo, hi = self.splitter.claim()
        rivals = []
        for link in ordered_links(inbox):
            for message in inbox[link]:
                if (
                    isinstance(message, ClaimMessage)
                    and message.lo == lo
                    and message.hi == hi
                    and message.id in self.accepted
                ):
                    rivals.append(message.id)
                    break
        return rivals

    def _finish(self, step: int) -> None:
        if self.splitter.decided is not None:
            self._name = self.splitter.decided
            return
        lo, _ = self.splitter.claim()
        self._name = lo
        self._ctx.log(step, "settled", lo)

    def result(self) -> int:
        return self._name


class TranslatedByzantineRenaming(PhaseSequence):
    """Id selection (4 rounds) + echo-weighted bit split over ``[1..2N]``."""

    def __init__(self, ctx: ProcessContext, extra_rounds: Optional[int] = None) -> None:
        if ctx.n <= 3 * ctx.t:
            raise ConfigurationError(
                f"translated renaming requires N > 3t (n={ctx.n}, t={ctx.t})"
            )
        self.namespace = 2 * ctx.n
        self.selection = IdSelectionPhase(ctx.n, ctx.t, ctx.my_id)
        probe_budget = ctx.n if extra_rounds is None else extra_rounds
        # Two rounds per split level: the claim round plus the translation's
        # echo round (modelled as a repeat of the claim).
        self.horizon = (
            ID_SELECTION_STEPS + 2 * interval_rounds(self.namespace) + probe_budget
        )
        self._split: Optional[IntervalSplitPhase] = None
        super().__init__(ctx, [self._selection_phase, self._split_phase])

    def _selection_phase(self, ctx: PhaseContext, _: object) -> IdSelectionPhase:
        return self.selection

    def _split_phase(self, ctx: PhaseContext, outcome: object) -> IntervalSplitPhase:
        assert isinstance(outcome, IdSelectionResult)
        self._split = IntervalSplitPhase(
            ctx,
            outcome.accepted,
            namespace=self.namespace,
            steps=self.horizon - ID_SELECTION_STEPS,
        )
        return self._split

    # ------------------------------------------------- pre-refactor attributes

    @property
    def splitter(self) -> Optional[IntervalSplitter]:
        """The bit-split engine (None until id selection completes)."""
        return self._split.splitter if self._split is not None else None

    @property
    def settled_round(self) -> Optional[int]:
        """Round at which this process's name became uncontested."""
        return self._split.settled_round if self._split is not None else None
