"""Bracha-style Echo/Ready reliable broadcast, synchronous adaptation.

Section IV-A of the paper notes that its id-selection phase uses "control
messages similar to the reliable broadcast algorithm of [4]" (Bracha &
Toueg). This module implements that classic single-source primitive so the
relationship can be studied and tested directly:

* round 1 — the source broadcasts ``⟨INITIAL, v⟩``;
* round 2 — every process that received INITIAL *on the source's link*
  broadcasts ``⟨ECHO, v⟩``;
* round 3 — a process that received ``N − t`` matching ECHOes broadcasts
  ``⟨READY, v⟩``;
* round 4 — a process that received ``N − 2t`` matching READYs (and had not
  sent one) broadcasts READY; everyone with ``N − t`` cumulative READYs
  delivers ``v``.

Guarantees (for ``N > 3t``): if the source is correct every correct process
delivers its value by round 3; if Byzantine, either nobody delivers or every
correct process delivers the same value by round 4 (at most one value can
collect ``N − t`` ECHOes).

Crucially this primitive **requires knowing which link belongs to the
source** — exactly the assumption the renaming problem lacks (receivers
cannot bind links to unknown ids a priori). :func:`make_rb_factory`
reconstructs that knowledge from the topology seed, making the out-of-band
assumption explicit in the API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

from ..sim.messages import KIND_BITS, Message
from ..sim.process import Inbox, Outbox, Process, ProcessContext
from ..sim.topology import FullMeshTopology

#: Rounds after which every correct process has either delivered or never will.
RELIABLE_BROADCAST_ROUNDS = 4

#: Output of a process that did not deliver any value.
NO_DELIVERY = "none"


@dataclass(frozen=True)
class InitialMessage(Message):
    value: int

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + id_bits


@dataclass(frozen=True)
class EchoValueMessage(Message):
    value: int

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + id_bits


@dataclass(frozen=True)
class ReadyValueMessage(Message):
    value: int

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + id_bits


class ReliableBroadcast(Process):
    """One instance of synchronous Echo/Ready reliable broadcast.

    ``source_link`` is the local link on which the source's messages arrive
    (``None`` for every process except when known); the source itself passes
    ``value``. Output: the delivered value, or :data:`NO_DELIVERY`.
    """

    def __init__(
        self,
        ctx: ProcessContext,
        source_link: Optional[int],
        value: Optional[int] = None,
    ) -> None:
        super().__init__(ctx)
        self.source_link = source_link
        self.value = value  # non-None only at the source
        self._echo_value: Optional[int] = None
        self._ready_value: Optional[int] = None
        self._echo_links: Dict[int, Set[int]] = {}
        self._ready_links: Dict[int, Set[int]] = {}
        self._ready_sent = False

    # ------------------------------------------------------------------ rounds

    def send(self, round_no: int) -> Outbox:
        if round_no == 1:
            if self.value is not None:
                return self.broadcast(InitialMessage(self.value))
            return {}
        if round_no == 2:
            if self._echo_value is not None:
                return self.broadcast(EchoValueMessage(self._echo_value))
            return {}
        if round_no in (3, 4):
            if self._ready_value is not None and not self._ready_sent:
                self._ready_sent = True
                return self.broadcast(ReadyValueMessage(self._ready_value))
            return {}
        return {}

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        threshold = self.ctx.n - self.ctx.t
        if round_no == 1:
            self._accept_initial(inbox)
        elif round_no == 2:
            self._count(inbox, EchoValueMessage, self._echo_links)
            self._ready_value = self._supported(self._echo_links, threshold)
        elif round_no in (3, 4):
            self._count(inbox, ReadyValueMessage, self._ready_links)
            if round_no == 3 and self._ready_value is None:
                # Amplification: adopt a READY value with N−2t support.
                self._ready_value = self._supported(
                    self._ready_links, self.ctx.n - 2 * self.ctx.t
                )
            if round_no == RELIABLE_BROADCAST_ROUNDS:
                delivered = self._supported(self._ready_links, threshold)
                self.output_value = NO_DELIVERY if delivered is None else delivered

    # ---------------------------------------------------------------- plumbing

    def _accept_initial(self, inbox: Inbox) -> None:
        if self.source_link is None:
            return
        for message in inbox.get(self.source_link, ()):
            if isinstance(message, InitialMessage) and isinstance(
                message.value, int
            ):
                self._echo_value = message.value
                return

    @staticmethod
    def _count(inbox: Inbox, kind, registry: Dict[int, Set[int]]) -> None:
        for link in sorted(inbox):
            for message in inbox[link]:
                if isinstance(message, kind) and isinstance(message.value, int):
                    registry.setdefault(message.value, set()).add(link)
                    break  # one vote per link

    @staticmethod
    def _supported(registry: Dict[int, Set[int]], threshold: int) -> Optional[int]:
        for value in sorted(registry):
            if len(registry[value]) >= threshold:
                return value
        return None


def make_rb_factory(
    n: int, ids: Sequence[int], seed: int, source_index: int, value: int
):
    """Factory wiring source-link knowledge into every process.

    The topology is re-derived from ``n``/``seed`` (it is deterministic), so
    each process can be told which of *its* links is the source's — the
    out-of-band identity assumption reliable broadcast needs and renaming
    forbids.
    """
    topology = FullMeshTopology(n, seed=seed)
    index_of_id = {identifier: index for index, identifier in enumerate(ids)}

    def factory(ctx: ProcessContext) -> ReliableBroadcast:
        me = index_of_id[ctx.my_id]
        if me == source_index:
            return ReliableBroadcast(ctx, source_link=topology.self_link, value=value)
        return ReliableBroadcast(
            ctx, source_link=topology.label_of(me, source_index)
        )

    return factory
