"""Reliable broadcast substrate (Bracha & Toueg [4], synchronous form)."""

from .bracha import (
    NO_DELIVERY,
    RELIABLE_BROADCAST_ROUNDS,
    EchoValueMessage,
    InitialMessage,
    ReadyValueMessage,
    ReliableBroadcast,
    make_rb_factory,
)

__all__ = [
    "EchoValueMessage",
    "InitialMessage",
    "NO_DELIVERY",
    "RELIABLE_BROADCAST_ROUNDS",
    "ReadyValueMessage",
    "ReliableBroadcast",
    "make_rb_factory",
]
