"""repro — Order-Preserving Renaming in Synchronous Systems with Byzantine Faults.

Full reproduction of Denysyuk & Rodrigues, ICDCS 2013. See README.md for a
tour and DESIGN.md for the system inventory.

Quick start::

    from repro import run_protocol, OrderPreservingRenaming

    result = run_protocol(
        OrderPreservingRenaming,
        n=7, t=2, ids=[103, 55, 210, 8, 77, 150, 42], seed=1,
    )
    print(result.new_names())   # original id -> new name in [1..N+t-1]
"""

from .core import (
    ConstantTimeRenaming,
    OrderPreservingRenaming,
    RenamingOptions,
    SystemParams,
    TwoStepOptions,
    TwoStepRenaming,
)
from .sim import RunResult, run_protocol

__version__ = "1.0.0"

__all__ = [
    "ConstantTimeRenaming",
    "OrderPreservingRenaming",
    "RenamingOptions",
    "RunResult",
    "SystemParams",
    "TwoStepOptions",
    "TwoStepRenaming",
    "run_protocol",
    "__version__",
]
