"""Phase-King synchronous Byzantine consensus (Berman–Garay–Perry).

A polynomial-message alternative to EIG: ``t + 1`` phases of two rounds
each, tolerating ``N > 4t`` in this classic simple form. Included as a
consensus substrate in its own right (tests exercise agreement/validity) and
as a second data point for the "consensus costs Ω(t) rounds" comparison the
paper's introduction makes — the renaming baseline itself uses EIG, which has
optimal ``N > 3t`` resilience.

Runs in the identified model: the phase-``k`` king is the process with
global index ``k``.

Each phase ``k = 0..t``:

* **Round A** — everyone broadcasts its current value; each process computes
  the majority value and its multiplicity.
* **Round B** — the king broadcasts its majority value. A process keeps its
  own majority if the multiplicity exceeded ``N/2 + t``; otherwise it adopts
  the king's value. Since some phase has a correct king and a correct king's
  phase locks agreement, ``t + 1`` phases suffice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..sim.messages import KIND_BITS, Message
from ..sim.process import Inbox, Outbox, Process, ProcessContext


@dataclass(frozen=True)
class PhaseValueMessage(Message):
    """Round-A broadcast of the current estimate."""

    value: int

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + id_bits


@dataclass(frozen=True)
class KingMessage(Message):
    """Round-B tiebreak from the phase king."""

    value: int

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + id_bits


class PhaseKingConsensus(Process):
    """A correct process running Phase-King on input ``value`` (``N > 4t``)."""

    def __init__(
        self,
        ctx: ProcessContext,
        my_index: int,
        link_to_index: Dict[int, int],
        value: int,
    ) -> None:
        super().__init__(ctx)
        if ctx.n <= 4 * ctx.t:
            raise ValueError(
                f"simple Phase-King requires N > 4t (n={ctx.n}, t={ctx.t})"
            )
        self.my_index = my_index
        self.index_of_link = dict(link_to_index)
        self.value = int(value)
        self.total_rounds = 2 * (ctx.t + 1)
        self._majority = self.value
        self._multiplicity = 0

    # ------------------------------------------------------------------ rounds

    def _phase_and_step(self, round_no: int) -> Tuple[int, int]:
        """Map a 1-based round onto (phase 0.., step A=0/B=1)."""
        return (round_no - 1) // 2, (round_no - 1) % 2

    def send(self, round_no: int) -> Outbox:
        phase, step = self._phase_and_step(round_no)
        if step == 0:
            return self.broadcast(PhaseValueMessage(self.value))
        if self.my_index == phase:
            return self.broadcast(KingMessage(self._majority))
        return {}

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        phase, step = self._phase_and_step(round_no)
        if step == 0:
            self._tally(inbox)
        else:
            self._arbitrate(phase, inbox)
            if round_no == self.total_rounds:
                self.output_value = self.value

    # ------------------------------------------------------------- phase logic

    def _tally(self, inbox: Inbox) -> None:
        counts: Dict[int, int] = {}
        for link in sorted(inbox):
            for message in inbox[link]:
                if isinstance(message, PhaseValueMessage) and isinstance(
                    message.value, int
                ):
                    counts[message.value] = counts.get(message.value, 0) + 1
                    break
        best, best_count = self.value, 0
        for value, count in sorted(counts.items()):
            if count > best_count:
                best, best_count = value, count
        self._majority, self._multiplicity = best, best_count

    def _arbitrate(self, phase: int, inbox: Inbox) -> None:
        king_value: Optional[int] = None
        for link in sorted(inbox):
            if self.index_of_link.get(link) != phase:
                continue
            for message in inbox[link]:
                if isinstance(message, KingMessage):
                    king_value = message.value
                    break
        threshold = self.ctx.n // 2 + self.ctx.t
        if self._multiplicity > threshold:
            self.value = self._majority
        elif king_value is not None:
            self.value = king_value
        else:
            self.value = self._majority
