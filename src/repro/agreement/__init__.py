"""Agreement substrates: approximate and exact.

* :class:`ApproximateAgreement` — synchronous Byzantine AA (DLPSW [7]), the
  primitive under Alg. 1's voting phase.
* :class:`EIGInteractiveConsistency` — ``t+1``-round interactive consistency
  (identified model).
* :class:`EIGBroadcast` — single-source EIG subtree; N of them behind a
  :class:`~repro.sim.compose.Multiplexer` form the consensus-renaming
  baseline.
* :class:`PhaseKingConsensus` — polynomial-message consensus (``N > 4t``).
* :func:`make_identified_factory` — bridge for the identified-model
  protocols.
"""

from .approximate import ApproximateAgreement, ValueMessage, initial_values_factory
from .eig import DEFAULT_VALUE, EIGBroadcast, EIGInteractiveConsistency, RelayMessage
from .identity import make_identified_factory
from .phase_king import KingMessage, PhaseKingConsensus, PhaseValueMessage

__all__ = [
    "ApproximateAgreement",
    "DEFAULT_VALUE",
    "EIGBroadcast",
    "EIGInteractiveConsistency",
    "KingMessage",
    "PhaseKingConsensus",
    "PhaseValueMessage",
    "RelayMessage",
    "ValueMessage",
    "initial_values_factory",
    "make_identified_factory",
]
