"""Exponential Information Gathering (EIG) interactive consistency.

The classical synchronous Byzantine protocol (Lynch, *Distributed
Algorithms*, ch. 6; Bar-Noy/Dolev/Dwork/Strong): ``t + 1`` rounds, ``N > 3t``,
message size exponential in ``t``. Every correct process ends with the *same*
vector of all processes' input values (correct entries exact, Byzantine
entries agreed-upon), which makes renaming trivial — and expensive. This is
the "just use consensus" strawman of the paper's introduction, implemented
honestly so E7 can price it.

Runs in the identified model (see :mod:`repro.agreement.identity`).

Data layout: the EIG tree is a dict keyed by tuples of distinct process
indices (paths). ``val[(j,)]`` is what ``j`` claimed as its own value;
``val[path + (q,)]`` is what ``q`` relayed about ``path``. After round
``t + 1`` the tree is resolved bottom-up by strict majority with a default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.errors import ConfigurationError
from ..sim.messages import KIND_BITS, Message
from ..sim.process import Inbox, Outbox, Process, ProcessContext, ordered_links

#: Value used when a relay is missing or no majority exists.
DEFAULT_VALUE = 0

Path = Tuple[int, ...]


@dataclass(frozen=True)
class RelayMessage(Message):
    """One round's relays: every known (path, value) pair of the last level."""

    entries: Tuple[Tuple[Path, int], ...]

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        # Each entry carries a path (rank_bits per hop) and one value.
        path_bits = sum(rank_bits * len(path) for path, _ in self.entries)
        return KIND_BITS + path_bits + id_bits * len(self.entries)


class EIGInteractiveConsistency(Process):
    """A correct process running EIG on its input ``value``.

    Output: the agreed vector as a tuple ``(w_0, …, w_{N−1})`` where ``w_j``
    is the value attributed to process ``j``.
    """

    def __init__(
        self,
        ctx: ProcessContext,
        my_index: int,
        link_to_index: Dict[int, int],
        value: int,
    ) -> None:
        super().__init__(ctx)
        if ctx.n <= 3 * ctx.t:
            raise ConfigurationError(f"EIG requires N > 3t (n={ctx.n}, t={ctx.t})")
        self.my_index = my_index
        self.link_to_index = dict(link_to_index)
        self.value = int(value)
        self.rounds = ctx.t + 1
        self.tree: Dict[Path, int] = {(): self.value}

    # ------------------------------------------------------------------ rounds

    def send(self, round_no: int) -> Outbox:
        level = round_no - 1
        entries = tuple(
            sorted(
                (path, value)
                for path, value in self.tree.items()
                if len(path) == level
            )
        )
        return self.broadcast(RelayMessage(entries=entries))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        level = round_no - 1
        for link in ordered_links(inbox):
            sender = self.link_to_index.get(link)
            if sender is None:
                continue
            message = self._first_relay(inbox[link])
            if message is None:
                continue
            for path, value in message.entries:
                if self._acceptable(path, level, sender) and isinstance(
                    value, int
                ):
                    self.tree[path + (sender,)] = value
        if round_no == self.rounds:
            self.output_value = self._resolve_vector()

    @staticmethod
    def _first_relay(messages) -> Optional[RelayMessage]:
        for message in messages:
            if isinstance(message, RelayMessage):
                return message
        return None

    def _acceptable(self, path, level: int, sender: int) -> bool:
        """Well-formedness of a relayed path: right level, distinct indices,
        sender not already inside (classic EIG pruning)."""
        if not isinstance(path, tuple) or len(path) != level:
            return False
        if any(not isinstance(j, int) or not 0 <= j < self.ctx.n for j in path):
            return False
        if len(set(path)) != len(path) or sender in path:
            return False
        # The path's own claims must have entered our tree (otherwise the
        # relay talks about a branch we never saw — treat as missing).
        return True

    # ----------------------------------------------------------------- resolve

    def _resolve(self, path: Path) -> int:
        if len(path) == self.rounds:
            return self.tree.get(path, DEFAULT_VALUE)
        children = [
            self._resolve(path + (j,))
            for j in range(self.ctx.n)
            if j not in path
        ]
        counts: Dict[int, int] = {}
        for child in children:
            counts[child] = counts.get(child, 0) + 1
        best, best_count = DEFAULT_VALUE, 0
        for value, count in sorted(counts.items()):
            if count > best_count:
                best, best_count = value, count
        if best_count * 2 > len(children):
            return best
        return DEFAULT_VALUE

    def _resolve_vector(self) -> Tuple[int, ...]:
        vector: List[int] = []
        for j in range(self.ctx.n):
            if j == self.my_index:
                vector.append(self.value)
            else:
                vector.append(self._resolve((j,)))
        return tuple(vector)


class EIGBroadcast(Process):
    """Single-source EIG Byzantine broadcast (one subtree of the above).

    The combined interactive-consistency tree is the disjoint union of ``N``
    per-source subtrees, so interactive consistency decomposes into ``N``
    independent broadcast instances — one per source — each relaying only
    paths rooted at its source. Run all ``N`` behind a
    :class:`~repro.sim.compose.Multiplexer` and the per-process state and
    resolution are identical to :class:`EIGInteractiveConsistency`; only the
    wire shape changes (per-instance envelopes instead of one combined
    relay).

    Output: the agreed value for ``source`` (:data:`DEFAULT_VALUE` when the
    source is faulty-silent or no majority exists). The source itself
    outputs its own input, mirroring the combined resolver's
    ``vector[my_index] = value``.
    """

    def __init__(
        self,
        ctx: ProcessContext,
        source: int,
        my_index: int,
        link_to_index: Dict[int, int],
        value: Optional[int] = None,
    ) -> None:
        super().__init__(ctx)
        if ctx.n <= 3 * ctx.t:
            raise ConfigurationError(f"EIG requires N > 3t (n={ctx.n}, t={ctx.t})")
        if not 0 <= source < ctx.n:
            raise ValueError(f"source {source} out of range for n={ctx.n}")
        if (value is not None) != (my_index == source):
            raise ValueError("exactly the source process carries the input value")
        self.source = source
        self.my_index = my_index
        self.link_to_index = dict(link_to_index)
        self.value = int(value) if value is not None else None
        self.rounds = ctx.t + 1
        # Same layout as the combined tree, restricted to the source's
        # subtree; the root () exists only at the source (its own claim).
        self.tree: Dict[Path, int] = {} if value is None else {(): self.value}

    # ------------------------------------------------------------------ rounds

    def send(self, round_no: int) -> Outbox:
        level = round_no - 1
        entries = tuple(
            sorted(
                (path, value)
                for path, value in self.tree.items()
                if len(path) == level
            )
        )
        if not entries:
            # Non-source processes are silent in round 1; later rounds go
            # quiet once there is nothing to relay about this source.
            return {}
        return self.broadcast(RelayMessage(entries=entries))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        level = round_no - 1
        for link in ordered_links(inbox):
            sender = self.link_to_index.get(link)
            if sender is None:
                continue
            message = self._first_relay(inbox[link])
            if message is None:
                continue
            for path, value in message.entries:
                if self._acceptable(path, level, sender) and isinstance(
                    value, int
                ):
                    self.tree[path + (sender,)] = value
        if round_no == self.rounds:
            self.output_value = self._resolve_value()

    _first_relay = staticmethod(EIGInteractiveConsistency._first_relay)

    def _acceptable(self, path, level: int, sender: int) -> bool:
        """The combined tree's well-formedness plus instance scoping: a
        level-0 claim must come from the source itself, and every deeper
        path must be rooted at the source."""
        if not isinstance(path, tuple) or len(path) != level:
            return False
        if any(not isinstance(j, int) or not 0 <= j < self.ctx.n for j in path):
            return False
        if len(set(path)) != len(path) or sender in path:
            return False
        if level == 0:
            return sender == self.source
        return path[0] == self.source

    # ----------------------------------------------------------------- resolve

    _resolve = EIGInteractiveConsistency._resolve

    def _resolve_value(self) -> int:
        if self.my_index == self.source:
            return self.value
        return self._resolve((self.source,))
