"""Standalone synchronous Byzantine approximate agreement (DLPSW [7]).

The primitive underlying Alg. 1's voting phase, exposed on its own so that

* experiment E3 can measure its convergence rate in isolation,
* tests can check the Dolev–Lynch–Pinter–Stark–Weihl guarantees directly:
  after each round the spread of correct values contracts by at least
  ``σ_t = ⌊(N−2t)/t⌋ + 1`` and every new value stays within the range of the
  previous correct values.

Each process starts with a real value (``Fraction`` for exactness). Every
round it broadcasts the value, collects one value per link, pads missing
votes with its own value, trims the ``t`` extremes, and averages
``select_t`` of the rest — the same fold as Alg. 3, on a single instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from ..core.approximation import average, select_every_t, trim_extremes
from ..core.messages import Rank
from ..sim.messages import KIND_BITS, Message, RANK_FRACTION_BITS
from ..sim.process import Inbox, Outbox, Process, ProcessContext


@dataclass(frozen=True)
class ValueMessage(Message):
    """One AA vote: the sender's current approximation."""

    value: Rank

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + rank_bits + RANK_FRACTION_BITS


class ApproximateAgreement(Process):
    """A correct process running ``rounds`` steps of Byzantine AA.

    ``initial`` is the input value; the output is the final approximation.
    ``trim`` defaults to ``t`` (Byzantine); pass 0 for the crash-fault
    variant (plain averaging).
    """

    def __init__(
        self,
        ctx: ProcessContext,
        initial: Rank,
        rounds: int,
        trim: Optional[int] = None,
    ) -> None:
        super().__init__(ctx)
        if rounds < 1:
            raise ValueError(f"need at least one round, got {rounds}")
        if ctx.n <= 2 * ctx.t:
            raise ValueError(
                f"Byzantine AA needs N > 2t to trim safely (n={ctx.n}, t={ctx.t})"
            )
        self.value: Rank = initial
        self.rounds = rounds
        self.trim = ctx.t if trim is None else trim

    def send(self, round_no: int) -> Outbox:
        return self.broadcast(ValueMessage(self.value))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        from ..core.validation import is_sound_rank

        votes: List[Rank] = []
        for link in sorted(inbox):
            for message in inbox[link]:
                if isinstance(message, ValueMessage):
                    # NaN would defeat the trim's comparisons; drop unsound
                    # values before any arithmetic.
                    if is_sound_rank(message.value):
                        votes.append(message.value)
                    break  # one vote per link per round
        votes = votes[: self.ctx.n]
        while len(votes) < self.ctx.n:
            votes.append(self.value)
        surviving = trim_extremes(votes, self.trim)
        self.value = average(select_every_t(surviving, self.trim))
        self.ctx.log(round_no, "value", self.value)
        if round_no == self.rounds:
            self.output_value = self.value


def initial_values_factory(values, rounds: int, trim: Optional[int] = None):
    """Build a :func:`repro.sim.run_protocol` factory assigning per-process
    inputs by original id: ``values[my_id]`` is the process's initial value.
    """

    def factory(ctx: ProcessContext) -> ApproximateAgreement:
        return ApproximateAgreement(
            ctx, initial=values[ctx.my_id], rounds=rounds, trim=trim
        )

    return factory
