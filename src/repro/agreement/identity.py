"""Identified-model bridge: give protocols a global process index.

The paper's model deliberately withholds sender identities (receivers see
only link labels) — that is what makes Byzantine renaming non-trivial.
Classical consensus protocols (Phase King, EIG) are instead stated in the
*identified* model where every process knows its index and the index behind
every link. The consensus-based renaming baseline therefore runs in a
strictly **stronger** model than Algorithm 1; the comparison in experiment E7
is conservative — the baseline gets help Algorithm 1 does not get, and still
loses on round complexity.

:func:`make_identified_factory` reconstructs the run's topology (it is a pure
function of ``n`` and ``seed``) and hands each process its global index plus
the link→index mapping.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..sim.process import Process, ProcessContext
from ..sim.topology import FullMeshTopology

#: Builder signature: (ctx, my_index, link_to_index) -> Process.
IdentifiedBuilder = Callable[[ProcessContext, int, Dict[int, int]], Process]


def make_identified_factory(
    n: int, ids: Sequence[int], seed: int, build: IdentifiedBuilder
):
    """Factory for :func:`repro.sim.run_protocol` injecting identity info.

    ``ids`` and ``seed`` must match the arguments later passed to
    ``run_protocol`` — the topology is re-derived from them.
    """
    topology = FullMeshTopology(n, seed=seed)
    index_of_id = {identifier: index for index, identifier in enumerate(ids)}

    def factory(ctx: ProcessContext) -> Process:
        me = index_of_id[ctx.my_id]
        link_to_index = {
            topology.label_of(me, peer): peer for peer in range(n) if peer != me
        }
        link_to_index[topology.self_link] = me
        return build(ctx, me, link_to_index)

    return factory
