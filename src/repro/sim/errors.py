"""Exception hierarchy for the synchronous-round simulator.

All simulator-level failures derive from :class:`SimulationError` so callers
can distinguish "the experiment setup is wrong" from "the protocol under test
misbehaved" from ordinary Python bugs.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by :mod:`repro.sim`."""


class ConfigurationError(SimulationError, ValueError):
    """An experiment was configured inconsistently.

    Examples: ``t >= N``, duplicate original ids, a fault threshold that the
    algorithm under test rejects, or an adversary bound to the wrong network.

    Also a :class:`ValueError`: resilience preconditions used to raise bare
    ``ValueError`` from algorithm constructors, and callers written against
    that contract keep working while new code can catch the typed hierarchy.
    """


class ProtocolViolationError(SimulationError):
    """A *correct* process behaved outside the simulator contract.

    Raised, for instance, when a process addresses a message to a link label
    outside ``1..N`` or keeps sending after announcing its output. Byzantine
    processes are exempt — arbitrary behaviour is their job — but their
    messages still have to be :class:`repro.sim.messages.Message` instances so
    the delivery plumbing stays type-safe.
    """


class RoundLimitExceeded(SimulationError):
    """The run hit ``max_rounds`` before every correct process produced output.

    Synchronous algorithms have a closed-form round bound, so hitting this is
    always a bug in the protocol, the bound, or a deliberately truncated run.
    """


class JournalError(SimulationError):
    """A run journal is unusable: corrupt mid-file record, sequence gap,
    missing header, or a config fingerprint that does not match the journal's.

    A *torn tail* (the final record cut short by a crash mid-append) is NOT
    a :class:`JournalError` — the record was never durable, so readers drop
    it silently and ``runs doctor`` truncates it away. Anything unusable
    *before* the tail means real corruption and refuses to resume.
    """


class StoreError(SimulationError):
    """A result store is unusable or was misused.

    Raised when a store's header fingerprint does not match the grid being
    seeded into it (two different runs must never share a store), when the
    backend's own integrity checks fail mid-file (a corrupt header, an
    unreadable database), or when a store URL cannot be parsed. A corrupt
    *entry* is NOT a :class:`StoreError` — torn or tampered summaries are
    logged, discarded and recomputed, mirroring the result cache.
    """


class LeaseLost(StoreError):
    """A worker's cell lease expired and was taken over by someone else.

    Raised from :meth:`~repro.analysis.store.ResultStore.renew` and the
    terminal writes (``finish``/``fail``/``quarantine``) when the lease
    token on record is no longer ours: the coordinator (or a peer worker)
    decided we were dead and reassigned the cell. The correct reaction is
    to drop the result — the store guarantees the cell's first durable
    terminal record wins, so nothing is lost and nothing is double-counted.
    """


class RunInterrupted(SimulationError):
    """A supervised run was preempted (SIGINT/SIGTERM) and drained cleanly.

    Raised *after* in-flight cells were given a chance to finish and the run
    journal was flushed — everything already completed is durable and
    ``runs resume`` continues from exactly this point. The CLI maps this to
    the distinct "interrupted but resumable" exit code.
    """

    def __init__(self, message: str, *, run_id=None, completed: int = 0,
                 remaining: int = 0) -> None:
        super().__init__(message)
        self.run_id = run_id
        self.completed = completed
        self.remaining = remaining


class ResourceBudgetExceeded(SimulationError):
    """A supervised cell exceeded its wall-clock or RSS budget.

    The supervisor SIGKILLs the offending worker, so this exception is never
    *raised* inside the cell — it names the typed cause recorded in the
    journal and in the cell's failure row (``violated`` is ``"wall-budget"``
    or ``"rss-budget"``).
    """

    def __init__(self, message: str, *, violated: str = "wall-budget") -> None:
        super().__init__(message)
        self.violated = violated


def _rebuild_safety_violation(message, violated, round_no, ids, trace_pointer):
    return SafetyViolation(
        message,
        violated=violated,
        round_no=round_no,
        ids=ids,
        trace_pointer=trace_pointer,
    )


class SafetyViolation(SimulationError):
    """A runtime safety monitor aborted the run (see :mod:`repro.sim.monitor`).

    Raised *during* execution — instead of hanging until ``max_rounds`` or
    returning garbage output — when a run violates a property the algorithm
    proves: a name outside the promised namespace, a name claimed twice, or
    a round count beyond the proven bound. Carries structured context:

    * :attr:`violated` — which property broke (``"validity"``,
      ``"uniqueness"``, ``"round-budget"``);
    * :attr:`round_no` — the round in which the violation surfaced;
    * :attr:`ids` — the original ids involved (empty for the watchdog);
    * :attr:`trace_pointer` — number of trace events recorded when the
      violation fired (``None`` when the run was not traced), locating the
      failure inside an archived timeline.
    """

    def __init__(
        self,
        message: str,
        *,
        violated: str = "safety",
        round_no: int = 0,
        ids=(),
        trace_pointer=None,
    ) -> None:
        super().__init__(message)
        self.violated = violated
        self.round_no = round_no
        self.ids = tuple(ids)
        self.trace_pointer = trace_pointer

    def __reduce__(self):
        # Keyword-only construction breaks default exception pickling, and
        # these exceptions must cross process-pool boundaries intact.
        return (
            _rebuild_safety_violation,
            (str(self), self.violated, self.round_no, self.ids, self.trace_pointer),
        )
