"""Exception hierarchy for the synchronous-round simulator.

All simulator-level failures derive from :class:`SimulationError` so callers
can distinguish "the experiment setup is wrong" from "the protocol under test
misbehaved" from ordinary Python bugs.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by :mod:`repro.sim`."""


class ConfigurationError(SimulationError):
    """An experiment was configured inconsistently.

    Examples: ``t >= N``, duplicate original ids, a fault threshold that the
    algorithm under test rejects, or an adversary bound to the wrong network.
    """


class ProtocolViolationError(SimulationError):
    """A *correct* process behaved outside the simulator contract.

    Raised, for instance, when a process addresses a message to a link label
    outside ``1..N`` or keeps sending after announcing its output. Byzantine
    processes are exempt — arbitrary behaviour is their job — but their
    messages still have to be :class:`repro.sim.messages.Message` instances so
    the delivery plumbing stays type-safe.
    """


class RoundLimitExceeded(SimulationError):
    """The run hit ``max_rounds`` before every correct process produced output.

    Synchronous algorithms have a closed-form round bound, so hitting this is
    always a bug in the protocol, the bound, or a deliberately truncated run.
    """
