"""Adversary interface: how faulty process slots are driven.

The simulator gives the adversary the strongest standard synchronous powers:

* it controls all ``t`` faulty slots jointly (full collusion);
* it knows the whole configuration — every process's original id, the
  complete link labelling, and the protocol being run;
* it is *rushing*: in each round it chooses the faulty processes' messages
  after observing every correct process's messages for that same round;
* each faulty slot can send arbitrary, mutually contradictory messages on
  each of its links (equivocation), or stay silent.

Concrete attack strategies live in :mod:`repro.adversary`; this module only
defines the contract the runner speaks, so that the simulator substrate has no
dependency on any particular attack.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from random import Random
from typing import Callable, Dict, Mapping, Sequence, Tuple

from .process import Inbox, Outbox, Process
from .topology import FullMeshTopology


@dataclass
class AdversaryContext:
    """Run configuration revealed to the adversary (i.e., everything).

    ``make_process`` builds a fresh *correct* protocol instance for a given
    global index — used by conforming/crash strategies that run the real
    protocol and deviate only in when/what they transmit.
    """

    n: int
    t: int
    byzantine: Tuple[int, ...]
    ids: Mapping[int, int]
    topology: FullMeshTopology
    rng: Random
    make_process: Callable[[int], Process]

    @property
    def correct(self) -> Tuple[int, ...]:
        """Global indices of the correct processes."""
        byz = set(self.byzantine)
        return tuple(i for i in range(self.n) if i not in byz)

    def correct_ids(self) -> Tuple[int, ...]:
        """Original ids held by correct processes, ascending."""
        return tuple(sorted(self.ids[i] for i in self.correct))


class Adversary(ABC):
    """Drives the faulty slots of a run.

    The runner calls :meth:`bind` once, then each round :meth:`send` (with the
    rushing view of correct outboxes keyed by *global sender index*) and
    :meth:`observe` (with the inboxes delivered to faulty slots). ``send``
    returns, per faulty global index, an outbox keyed by that slot's local
    link labels — exactly the addressing a correct process uses, so Byzantine
    traffic flows through the same delivery path.
    """

    ctx: AdversaryContext

    #: Whether the runner should build faulty-slot inboxes and call
    #: :meth:`observe` each round. Adversaries that discard observations set
    #: this to ``False`` so the runner can skip the per-round freeze work.
    wants_observations: bool = True

    def bind(self, ctx: AdversaryContext) -> None:
        """Attach the run configuration. Called once before round 1."""
        self.ctx = ctx

    @abstractmethod
    def send(
        self, round_no: int, correct_outboxes: Mapping[int, Outbox]
    ) -> Dict[int, Outbox]:
        """Choose this round's Byzantine messages (rushing: sees correct ones)."""

    def observe(self, round_no: int, inboxes: Mapping[int, Inbox]) -> None:
        """Receive what was delivered to the faulty slots (optional hook)."""


class NullAdversary(Adversary):
    """Faulty slots that never send anything (pure omission of everything).

    Also the stand-in used when a run has no faulty slots at all.
    """

    wants_observations = False

    def send(
        self, round_no: int, correct_outboxes: Mapping[int, Outbox]
    ) -> Dict[int, Outbox]:
        return {}


def split_fault_slots(
    n: int, t: int, rng: Random, *, fixed: Sequence[int] = ()
) -> Tuple[int, ...]:
    """Pick which global indices are faulty.

    ``fixed`` pins specific indices (tests use this); the remainder are chosen
    uniformly at random from the rest.
    """
    chosen = list(dict.fromkeys(fixed))
    if len(chosen) > t:
        raise ValueError(f"{len(chosen)} fixed fault slots exceed t={t}")
    pool = [i for i in range(n) if i not in chosen]
    rng.shuffle(pool)
    chosen.extend(pool[: t - len(chosen)])
    return tuple(sorted(chosen))
