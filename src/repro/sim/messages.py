"""Message base types and the bit-size accounting model.

The paper reports message complexity in *bits* (Sections IV-D and VI-B), so
every message carries an explicit :meth:`Message.bit_size` estimate. The
model is deliberately simple and uniform across protocols:

* a message *kind* tag costs :data:`KIND_BITS`;
* an original id costs ``ceil(log2 N_max)`` bits (``N_max`` is the size of
  the original namespace, fixed per run);
* a rank / new name costs ``ceil(log2 N)`` bits plus :data:`RANK_FRACTION_BITS`
  fractional bits when it is a real-valued approximate-agreement rank;
* containers cost the sum of their elements.

Protocols define their concrete message dataclasses on top of
:class:`Message`; the simulator only ever relies on the base interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Iterable

#: Bits charged for the message-kind tag.
KIND_BITS = 8

#: Fractional bits charged for a real-valued rank in AA messages.
RANK_FRACTION_BITS = 32


def int_bits(namespace_size: int) -> int:
    """Bits needed to encode one value from a namespace of the given size."""
    if namespace_size <= 1:
        return 1
    return int(math.ceil(math.log2(namespace_size)))


@dataclass(frozen=True)
class Message:
    """Base class for everything that travels over a link.

    Subclasses are frozen dataclasses; freezing makes accidental aliasing
    between the sender's and receivers' copies harmless, which matters because
    the simulator delivers the *same object* to every recipient of a
    broadcast.
    """

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        """Estimated wire size in bits.

        ``id_bits`` is the cost of one original id (``log2 N_max``);
        ``rank_bits`` the integral cost of one rank (``log2 N``). The default
        implementation charges the kind tag plus ``id_bits`` per field, which
        is right for the common "tag + one id" control messages; richer
        messages override this.
        """
        return KIND_BITS + id_bits * len(fields(self))

    @property
    def kind(self) -> str:
        """Human-readable message kind (the class name)."""
        return type(self).__name__


def total_bits(messages: Iterable[Message], id_bits: int, rank_bits: int) -> int:
    """Sum of :meth:`Message.bit_size` over ``messages``."""
    return sum(m.bit_size(id_bits=id_bits, rank_bits=rank_bits) for m in messages)
