"""Synchronous message-passing simulator (the paper's system model).

Implements Section II of the paper exactly: ``N`` processes in a fully
connected network, lock-step rounds, reliable links, per-process private link
labels with a self-loop, and up to ``t`` adversary-controlled faulty slots
with rushing and full-collusion powers.

Public surface:

* :class:`Process` / :class:`ProcessContext` — write protocols as round state
  machines.
* :class:`Phase` / :class:`PhaseSequence` / :class:`Multiplexer` — compose
  protocols from reusable fragments (see :mod:`repro.sim.compose`).
* :func:`run_protocol` / :class:`RunResult` — execute a run.
* :class:`Engine` / :func:`resolve_engine` — pluggable round-loop execution
  (the ``"reference"`` oracle, the default ``"batched"`` fast path, and the
  optional numpy-backed ``"vector"`` array engine; see
  :mod:`repro.sim.engine` and :mod:`repro.sim.engine_vector`).
* :class:`Adversary` / :class:`AdversaryContext` — the fault-injection
  contract (implementations in :mod:`repro.adversary`).
* :class:`FullMeshTopology`, :class:`SynchronousNetwork` — the wiring.
* :class:`RunMetrics`, :class:`TraceRecorder` — observability.
"""

from .chaos import ChaosInjector, ChaosReport, FaultPlan
from .compose import (
    EnvelopeMessage,
    Multiplexer,
    Phase,
    PhaseBuilder,
    PhaseContext,
    PhaseSequence,
)
from .engine import (
    DEFAULT_ENGINE,
    ENGINES,
    BatchedEngine,
    Engine,
    ReferenceEngine,
    VectorEngine,
    engine_names,
    resolve_engine,
)
from .errors import (
    ConfigurationError,
    JournalError,
    LeaseLost,
    ProtocolViolationError,
    ResourceBudgetExceeded,
    RoundLimitExceeded,
    RunInterrupted,
    SafetyViolation,
    SimulationError,
    StoreError,
)
from .faults import Adversary, AdversaryContext, NullAdversary, split_fault_slots
from .messages import KIND_BITS, Message, int_bits, total_bits
from .metrics import RoundMetrics, RunMetrics
from .model import (
    EXPECTATIONS,
    MODEL_KINDS,
    ModelExpectations,
    ModelInjector,
    ModelReport,
    SystemModel,
    parse_model,
)
from .monitor import SafetyMonitor, SafetyPolicy
from .network import Delivery, SynchronousNetwork
from .process import (
    BROADCAST,
    Inbox,
    Outbox,
    Process,
    ProcessContext,
    iter_inbox,
    ordered_links,
)
from .rng import derive_np_generator, derive_rng, derive_seed
from .runner import ProcessFactory, RunResult, run_protocol
from .topology import FullMeshTopology
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "Adversary",
    "AdversaryContext",
    "BROADCAST",
    "BatchedEngine",
    "ChaosInjector",
    "ChaosReport",
    "ConfigurationError",
    "DEFAULT_ENGINE",
    "Delivery",
    "ENGINES",
    "EXPECTATIONS",
    "Engine",
    "EnvelopeMessage",
    "FaultPlan",
    "FullMeshTopology",
    "Inbox",
    "JournalError",
    "KIND_BITS",
    "LeaseLost",
    "MODEL_KINDS",
    "Message",
    "ModelExpectations",
    "ModelInjector",
    "ModelReport",
    "Multiplexer",
    "NullAdversary",
    "Outbox",
    "Phase",
    "PhaseBuilder",
    "PhaseContext",
    "PhaseSequence",
    "Process",
    "ProcessContext",
    "ProcessFactory",
    "ProtocolViolationError",
    "ReferenceEngine",
    "ResourceBudgetExceeded",
    "RoundLimitExceeded",
    "RunInterrupted",
    "RoundMetrics",
    "RunMetrics",
    "RunResult",
    "SafetyMonitor",
    "SafetyPolicy",
    "SafetyViolation",
    "SimulationError",
    "StoreError",
    "SynchronousNetwork",
    "SystemModel",
    "TraceEvent",
    "TraceRecorder",
    "VectorEngine",
    "derive_np_generator",
    "derive_rng",
    "derive_seed",
    "engine_names",
    "int_bits",
    "iter_inbox",
    "ordered_links",
    "parse_model",
    "run_protocol",
    "split_fault_slots",
    "total_bits",
]
