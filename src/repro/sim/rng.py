"""Deterministic random-stream derivation.

Every source of randomness in a run (topology shuffling, adversary choices,
workload generation, crash schedules) draws from an independent stream derived
from a single integer *run seed* plus a tuple of string/int tokens naming the
consumer. Runs are therefore reproducible bit-for-bit from the seed alone, and
adding a new randomness consumer never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

from .errors import ConfigurationError

Token = Union[str, int]


def derive_seed(seed: int, *tokens: Token) -> int:
    """Derive a 64-bit child seed from ``seed`` and a token path.

    The derivation is a SHA-256 hash of a canonical encoding, so it is stable
    across Python versions and platforms (unlike ``hash()``).
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(seed)).encode("ascii"))
    for token in tokens:
        hasher.update(b"/")
        hasher.update(repr(token).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def derive_rng(seed: int, *tokens: Token) -> random.Random:
    """Return a :class:`random.Random` seeded from ``derive_seed``."""
    return random.Random(derive_seed(seed, *tokens))


def derive_np_generator(seed: int, *tokens: Token):
    """Return a ``numpy.random.Generator`` seeded from ``derive_seed``.

    The numpy counterpart of :func:`derive_rng`: the child seed comes from
    the *same* :func:`derive_seed` path, so a vectorised consumer and its
    scalar twin that name the same token path are provably fed from the same
    64-bit child seed — no ad-hoc ``np.random.seed`` calls anywhere. (The
    stream contents differ, of course: PCG64 is not Mersenne Twister; what
    is shared is the derivation, which is what keeps seed bookkeeping in one
    place.)

    numpy is an optional dependency; raises
    :class:`~repro.sim.errors.ConfigurationError` when it is absent.
    """
    try:
        from numpy.random import PCG64, Generator
    except ImportError as exc:  # pragma: no cover - exercised without numpy
        raise ConfigurationError(
            "derive_np_generator requires numpy, an optional dependency "
            "(pip install numpy)"
        ) from exc
    return Generator(PCG64(derive_seed(seed, *tokens)))
