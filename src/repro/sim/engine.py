"""Round execution engines: the reference loop and its fast paths.

:func:`~repro.sim.runner.run_protocol` owns run *setup* (topology, fault
slots, process construction) and result assembly; everything between —
"execute synchronous rounds until every correct process is done" — is an
:class:`Engine`. Three implementations ship:

* :class:`ReferenceEngine` (``"reference"``) — the original, obviously-correct
  loop: per-round ``Outbox`` dicts expanded into ``(link, message)``
  transmission lists by :meth:`~repro.sim.network.SynchronousNetwork.route`,
  then frozen into per-recipient inboxes. One Python object per message hop.
* :class:`BatchedEngine` (``"batched"``, the default) — one routing pass per
  round over precomputed ``(sender, link) → (recipient, recipient_link)``
  tables, preallocated per-link inbox buffers reused across rounds, interned
  instances for the high-volume message types, and per-*message* (not
  per-transmission) traffic accounting with cached bit sizes.
* :class:`~repro.sim.engine_vector.VectorEngine` (``"vector"``, optional —
  requires numpy) — dense port matrices, one shared tuple per broadcasting
  sender instead of per-recipient buffers, and lazy gather-view inboxes, so
  a substrate-bound round costs O(n) Python operations instead of O(n²).
  Message shapes the dense layout cannot express fall back to a scalar
  overlay (see :mod:`repro.sim.engine_vector`). Registered only when numpy
  imports; ``resolve_engine("vector")`` explains the missing dependency
  otherwise.

The engines are **behaviour-identical by contract**: same process calls
in the same order, equal inboxes, equal metrics, equal traces, same errors —
under every adversary, because the adversary's rushing view and observation
inboxes are built identically. ``tests/test_engine_differential.py`` enforces
the contract across every registered algorithm × attack × seed grid; any
optimisation that cannot keep the contract does not belong here. All traffic
accounting flows through the single shared primitive
:meth:`~repro.sim.metrics.RunMetrics.observe_send`, so the encoding model
cannot drift between engines.

Both engines honour two opt-in collection knobs: tracing costs nothing
unless a :class:`~repro.sim.trace.TraceRecorder` was attached at setup, and
``collect_metrics=False`` skips all traffic accounting (round count is
always maintained — it is load-bearing for every caller).

They also share two opt-in robustness hooks, wired at identical points of
the round loop so the behavioural contract extends to them: a
:class:`~repro.sim.chaos.ChaosInjector` perturbs outboxes between adversary
selection and routing (beyond-model fault injection), and a
:class:`~repro.sim.monitor.SafetyMonitor` checks the round budget at round
start and every emitted name after delivery. Both are ``None`` by default
and add zero work when absent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .chaos import ChaosInjector
from .errors import ConfigurationError, ProtocolViolationError, RoundLimitExceeded
from .faults import Adversary
from .messages import Message
from .metrics import RunMetrics
from .monitor import SafetyMonitor
from .network import SynchronousNetwork
from .process import BROADCAST, Inbox, Outbox, Process


def _roundtrip_outbox(outbox: Outbox) -> Outbox:
    """Encode and decode every message (the ``through_wire`` fidelity drill).

    Imported lazily: the codec lives above this layer (it knows every
    protocol's message types), so the engine must not import it at module
    scope.
    """
    from ..wire import decode_message, encode_message

    return {
        link: [decode_message(encode_message(message)) for message in messages]
        for link, messages in outbox.items()
    }


def _pooled_types() -> Tuple[type, ...]:
    """The high-volume message types worth interning.

    Imported lazily for the same layering reason as the codec: the concrete
    protocol messages live above the simulator substrate.
    """
    from ..core.messages import EchoMessage, IdMessage, RanksMessage
    from .compose import EnvelopeMessage

    return (IdMessage, EchoMessage, RanksMessage, EnvelopeMessage)


class Engine(ABC):
    """One strategy for executing the synchronous round loop.

    Engines are stateless between runs — all per-run working state lives
    inside :meth:`execute` — so the registry can hand out shared instances
    (including across process-pool forks).
    """

    #: Registry name, set by subclasses.
    name: str

    @abstractmethod
    def execute(
        self,
        *,
        processes: Dict[int, Process],
        adversary: Adversary,
        byzantine: Sequence[int],
        network: SynchronousNetwork,
        metrics: RunMetrics,
        through_wire: bool = False,
        max_rounds: int = 1000,
        collect_metrics: bool = True,
        chaos: Optional[ChaosInjector] = None,
        monitor: Optional[SafetyMonitor] = None,
    ) -> None:
        """Run rounds until every correct process is done.

        Raises :class:`RoundLimitExceeded` if ``max_rounds`` fires first.

        ``chaos`` (a bound :class:`~repro.sim.chaos.ChaosInjector`) perturbs
        each round's outboxes between collection and routing; ``monitor`` (a
        :class:`~repro.sim.monitor.SafetyMonitor`) checks round budgets and
        emitted names, raising :class:`~repro.sim.errors.SafetyViolation` on
        the first breach. Both default to ``None`` and cost nothing when
        absent; both are engine-independent, so the cross-engine behavioural
        contract extends to chaotic and monitored runs.
        """


class ReferenceEngine(Engine):
    """The original per-object round loop (see module docstring)."""

    name = "reference"

    def execute(
        self,
        *,
        processes: Dict[int, Process],
        adversary: Adversary,
        byzantine: Sequence[int],
        network: SynchronousNetwork,
        metrics: RunMetrics,
        through_wire: bool = False,
        max_rounds: int = 1000,
        collect_metrics: bool = True,
        chaos: Optional[ChaosInjector] = None,
        monitor: Optional[SafetyMonitor] = None,
    ) -> None:
        byz_set = set(byzantine)
        for round_no in range(1, max_rounds + 1):
            pending = [i for i, p in processes.items() if not p.done]
            if not pending:
                break
            if monitor is not None:
                monitor.begin_round(round_no)
            record = metrics.begin_round(round_no)

            correct_outboxes: Dict[int, Outbox] = {
                i: processes[i].send(round_no) for i in pending
            }
            if through_wire:
                correct_outboxes = {
                    i: _roundtrip_outbox(outbox)
                    for i, outbox in correct_outboxes.items()
                }
            byz_outboxes = adversary.send(round_no, correct_outboxes)
            for index in byz_outboxes:
                if index not in byz_set:
                    raise ConfigurationError(
                        f"adversary tried to send as correct process {index}"
                    )
            if chaos is not None:
                correct_outboxes, byz_outboxes = chaos.perturb(
                    round_no, correct_outboxes, byz_outboxes
                )

            all_outboxes: Dict[int, Outbox] = dict(correct_outboxes)
            all_outboxes.update(byz_outboxes)
            # route() expands each outbox exactly once and hands the expanded
            # transmission lists back for accounting — the hot path must never
            # re-expand what the network already walked.
            delivery = network.route(all_outboxes)
            plan = delivery.plan

            if collect_metrics:
                for index in correct_outboxes:
                    metrics.count_correct(
                        record, (m for _, m in delivery.transmissions[index])
                    )
                record.byzantine_messages += sum(
                    delivery.sent_count(index) for index in byz_outboxes
                )

            empty: Inbox = {}
            for index in pending:
                links = plan.get(index)
                inbox = network.freeze_inbox(links) if links else empty
                processes[index].deliver(round_no, inbox)
            if monitor is not None:
                monitor.after_deliver(round_no, processes)
            if adversary.wants_observations:
                byz_inboxes: Mapping[int, Inbox] = {
                    index: network.freeze_inbox(plan[index])
                    for index in byzantine
                    if index in plan
                }
                adversary.observe(round_no, byz_inboxes)
        else:
            _raise_round_limit(processes, max_rounds)


class BatchedEngine(Engine):
    """Array-of-buffers round loop (see module docstring).

    Behaviour-identical to :class:`ReferenceEngine`; every deviation below is
    an implementation detail that provably cannot be observed:

    * routing goes through a per-run ``(sender, link) → (recipient,
      recipient_link)`` table instead of two topology dict lookups per
      transmission — the table is built *from* the topology, so the mapping
      is the same;
    * per-recipient per-link buffers are reused across rounds and frozen into
      ascending-link-order inboxes exactly like
      :meth:`~repro.sim.network.SynchronousNetwork.freeze_inbox`;
    * equal messages of the high-volume types are interned to one canonical
      instance — safe because messages are frozen (the reference engine
      already aliases one object across all recipients of a broadcast) and
      delivered objects compare equal either way;
    * traffic is accounted per message with a broadcast fan-out multiplier
      and a per-canonical-instance bit-size cache, which sums to exactly the
      reference's per-transmission accounting.
    """

    name = "batched"

    def execute(
        self,
        *,
        processes: Dict[int, Process],
        adversary: Adversary,
        byzantine: Sequence[int],
        network: SynchronousNetwork,
        metrics: RunMetrics,
        through_wire: bool = False,
        max_rounds: int = 1000,
        collect_metrics: bool = True,
        chaos: Optional[ChaosInjector] = None,
        monitor: Optional[SafetyMonitor] = None,
    ) -> None:
        topology = network.topology
        n = topology.n
        self_link = topology.self_link
        byz_set = set(byzantine)

        # Preallocated inbox fabric: per-recipient per-link message buffers
        # (indexed by link label, slot 0 unused) that live for the whole run;
        # `active[r]` lists the links that received at least one message this
        # round (cleared, not reallocated).
        buffers: List[List[List[Message]]] = [
            [[] for _ in range(n + 1)] for _ in range(n)
        ]
        active: List[List[int]] = [[] for _ in range(n)]

        # fanout[s][link-1] = (slot, active[r], recipient_link) resolves the
        # whole routing fabric — including the recipient-side buffer — to
        # direct references, built once per run from the topology. fanout[s]
        # doubles as the expansion of a BROADCAST from s (labels 1..n include
        # the self-loop). Built via bulk table iteration: n² method calls
        # would dominate short runs at large n.
        label_at: List[List[int]] = [[0] * n for _ in range(n)]
        for process in range(n):
            row_labels = label_at[process]
            for label, peer in topology.link_items(process):
                row_labels[peer] = label
        fanout: List[List[Tuple[List[Message], List[int], int]]] = []
        for sender in range(n):
            row: List[Tuple[List[Message], List[int], int]] = [None] * n  # type: ignore[list-item]
            for link, recipient in topology.link_items(sender):
                recipient_link = (
                    self_link if recipient == sender else label_at[recipient][sender]
                )
                row[link - 1] = (
                    buffers[recipient][recipient_link],
                    active[recipient],
                    recipient_link,
                )
            fanout.append(row)

        pooled = frozenset(_pooled_types())
        pool: Dict[Message, Message] = {}
        bits_of: Dict[int, int] = {}  # id(canonical) -> cached bit size
        id_bits = metrics.id_bits
        rank_bits = metrics.rank_bits
        observe_send = metrics.observe_send

        def route(sender: int, outbox: Outbox, count_correct: bool) -> int:
            """Route one outbox; returns the transmission count."""
            row = fanout[sender]
            sent = 0
            for link, messages in outbox.items():
                if link == BROADCAST:
                    targets = row
                    fan = n
                elif 1 <= link <= n:
                    targets = row[link - 1 : link]
                    fan = 1
                else:
                    raise ProtocolViolationError(
                        f"process {sender} addressed invalid link {link} (n={n})"
                    )
                for message in messages:
                    if not isinstance(message, Message):
                        raise ProtocolViolationError(
                            f"process {sender} sent a non-Message object: "
                            f"{message!r}"
                        )
                    if count_correct:
                        is_pooled = type(message) in pooled
                        if is_pooled:
                            canonical = pool.get(message)
                            if canonical is None:
                                pool[message] = message
                            else:
                                message = canonical
                        if collect_metrics:
                            if is_pooled:
                                # Pooled instances stay alive for the whole
                                # run, so caching their size by id() is safe;
                                # an ephemeral object's id could be recycled.
                                key = id(message)
                                bits = bits_of.get(key)
                                if bits is None:
                                    bits = message.bit_size(
                                        id_bits=id_bits, rank_bits=rank_bits
                                    )
                                    bits_of[key] = bits
                            else:
                                bits = message.bit_size(
                                    id_bits=id_bits, rank_bits=rank_bits
                                )
                            observe_send(record, bits, fan)
                    sent += fan
                    for slot, recipient_active, recipient_link in targets:
                        if not slot:
                            recipient_active.append(recipient_link)
                        slot.append(message)
            return sent

        for round_no in range(1, max_rounds + 1):
            pending = [i for i, p in processes.items() if not p.done]
            if not pending:
                break
            if monitor is not None:
                monitor.begin_round(round_no)
            record = metrics.begin_round(round_no)

            correct_outboxes: Dict[int, Outbox] = {
                i: processes[i].send(round_no) for i in pending
            }
            if through_wire:
                correct_outboxes = {
                    i: _roundtrip_outbox(outbox)
                    for i, outbox in correct_outboxes.items()
                }
            byz_outboxes = adversary.send(round_no, correct_outboxes)
            for index in byz_outboxes:
                if index not in byz_set:
                    raise ConfigurationError(
                        f"adversary tried to send as correct process {index}"
                    )
            if chaos is not None:
                correct_outboxes, byz_outboxes = chaos.perturb(
                    round_no, correct_outboxes, byz_outboxes
                )

            for index, outbox in correct_outboxes.items():
                route(index, outbox, count_correct=True)
            byz_sent = 0
            for index, outbox in byz_outboxes.items():
                byz_sent += route(index, outbox, count_correct=False)
            if collect_metrics:
                record.byzantine_messages += byz_sent

            empty: Inbox = {}
            for index in pending:
                links = active[index]
                if links:
                    buf = buffers[index]
                    inbox: Inbox = {
                        link: tuple(buf[link]) for link in sorted(links)
                    }
                else:
                    inbox = empty
                processes[index].deliver(round_no, inbox)
            if monitor is not None:
                monitor.after_deliver(round_no, processes)
            if adversary.wants_observations:
                byz_inboxes: Dict[int, Inbox] = {}
                for index in byzantine:
                    links = active[index]
                    if links:
                        buf = buffers[index]
                        byz_inboxes[index] = {
                            link: tuple(buf[link]) for link in sorted(links)
                        }
                adversary.observe(round_no, byz_inboxes)

            for recipient in range(n):
                links = active[recipient]
                if links:
                    buf = buffers[recipient]
                    for link in links:
                        buf[link].clear()
                    links.clear()
        else:
            _raise_round_limit(processes, max_rounds)


def _raise_round_limit(processes: Dict[int, Process], max_rounds: int) -> None:
    stuck = [i for i, p in processes.items() if not p.done]
    raise RoundLimitExceeded(
        f"{len(stuck)} correct processes undecided after {max_rounds} rounds: "
        f"{stuck[:8]}"
    )


#: Shared, stateless engine instances keyed by selector name.
ENGINES: Dict[str, Engine] = {
    engine.name: engine for engine in (ReferenceEngine(), BatchedEngine())
}

# The vector engine needs numpy, which is an optional dependency: without
# it the engine simply is not registered (engine_names() omits it and the
# CLI does not offer it), and resolve_engine("vector") explains what is
# missing instead of calling the name unknown.
try:
    from .engine_vector import VectorEngine
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    VectorEngine = None  # type: ignore[assignment, misc]
else:
    ENGINES[VectorEngine.name] = VectorEngine()

#: The engine ``run_protocol`` uses when none is requested. Stays "batched":
#: the default must work on a dependency-free install.
DEFAULT_ENGINE = "batched"


def resolve_engine(name: str) -> Engine:
    """Look up an engine by selector name (``"reference"`` | ``"batched"`` |
    ``"vector"``)."""
    try:
        return ENGINES[name]
    except KeyError:
        known = ", ".join(sorted(ENGINES))
        if name == "vector":
            raise ConfigurationError(
                "engine 'vector' requires numpy, an optional dependency "
                "(pip install numpy); available engines: " + known
            ) from None
        raise ConfigurationError(
            f"unknown engine {name!r}; known engines: {known}"
        ) from None


def engine_names() -> List[str]:
    """All registered engine selector names, sorted."""
    return sorted(ENGINES)
