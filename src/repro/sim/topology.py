"""Fully-connected topology with per-process link labelling.

Section II of the paper: processes are arranged in a fully connected
synchronous network; the links of each process are labelled ``1..N`` where
``1..N-1`` go to the other processes and link ``N`` is a self-loop. Crucially,
a receiver learns only the *label of the link* a message arrived on — link
labels are private to each endpoint and carry no global identity. This class
realises that model: each process gets an independent random permutation
mapping its local labels to peers, so nothing about a peer's identity can be
inferred from a label.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .errors import ConfigurationError
from .rng import derive_rng


class FullMeshTopology:
    """Link-labelled full mesh over ``n`` processes (global indices ``0..n-1``).

    The labelling is fixed for the lifetime of a run: messages sent by ``p``
    on a given label always reach the same peer, and all messages from a given
    peer arrive at ``q`` on the same label — the standard "ports" model.
    """

    def __init__(self, n: int, seed: int = 0) -> None:
        if n < 1:
            raise ConfigurationError(f"topology needs at least one process, got n={n}")
        self._n = n
        # _peer_of[p][lnk] -> global index of the peer reached via label lnk.
        self._peer_of: List[Dict[int, int]] = []
        # _label_of[p][q] -> label at p on which messages from/to q travel.
        self._label_of: List[Dict[int, int]] = []
        for p in range(n):
            others = [q for q in range(n) if q != p]
            derive_rng(seed, "topology", p).shuffle(others)
            peer_of = {label: peer for label, peer in enumerate(others, start=1)}
            peer_of[n] = p  # self-loop, per the paper's model
            self._peer_of.append(peer_of)
            self._label_of.append({peer: label for label, peer in peer_of.items()})

    @property
    def n(self) -> int:
        """Number of processes."""
        return self._n

    @property
    def self_link(self) -> int:
        """The self-loop label (always ``n``)."""
        return self._n

    def labels(self) -> Sequence[int]:
        """All valid link labels, ``1..n`` (``n`` being the self-loop)."""
        return range(1, self._n + 1)

    def link_items(self, process: int):
        """Iterate ``(label, peer)`` pairs of ``process``'s ports table.

        Bulk accessor for consumers that walk every link (the batched engine
        builds its routing fabric from this); per-label queries should use
        :meth:`peer_of` / :meth:`label_of`, which validate their arguments.
        """
        try:
            return self._peer_of[process].items()
        except IndexError:
            raise ConfigurationError(
                f"invalid process index {process} (n={self._n})"
            ) from None

    def peer_of(self, process: int, label: int) -> int:
        """Global index of the peer that ``process`` reaches via ``label``."""
        try:
            return self._peer_of[process][label]
        except (IndexError, KeyError):
            raise ConfigurationError(
                f"invalid link label {label} at process {process} (n={self._n})"
            ) from None

    def label_of(self, process: int, peer: int) -> int:
        """Label at ``process`` on which traffic to/from ``peer`` travels."""
        try:
            return self._label_of[process][peer]
        except (IndexError, KeyError):
            raise ConfigurationError(
                f"no link between process {process} and peer {peer} (n={self._n})"
            ) from None
