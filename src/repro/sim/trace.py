"""Event tracing for debugging and for white-box experiments.

Several experiments need to look *inside* a run rather than only at outputs —
e.g. E3 measures the spread of correct processes' rank estimates after every
voting round. Processes emit structured events through their context's
``trace`` callback; :class:`TraceRecorder` collects them with the emitting
process's global index attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: who, when, what."""

    process: int
    round_no: int
    event: str
    detail: Any


class TraceRecorder:
    """Collects :class:`TraceEvent` records for a run."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def bind(self, process: int) -> Callable[[int, str, Any], None]:
        """Return a per-process trace callback tagging events with ``process``."""

        def _trace(round_no: int, event: str, detail: Any = None) -> None:
            self._events.append(TraceEvent(process, round_no, event, detail))

        return _trace

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def select(
        self,
        event: Optional[str] = None,
        round_no: Optional[int] = None,
        process: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Filter events by any combination of event name, round, process."""
        out = []
        for record in self._events:
            if event is not None and record.event != event:
                continue
            if round_no is not None and record.round_no != round_no:
                continue
            if process is not None and record.process != process:
                continue
            out.append(record)
        return out

    def rounds(self) -> List[int]:
        """Sorted distinct round numbers that produced at least one event."""
        return sorted({record.round_no for record in self._events})
