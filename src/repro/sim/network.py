"""Synchronous delivery: turn per-sender outboxes into per-recipient inboxes.

Delivery is reliable and within-round (Section II: reliable channels,
synchronous network). Addressing happens entirely in terms of each
endpoint's *local* link labels: a sender puts messages on its own labels, and
the network re-keys them onto the recipient's label for that sender. No
global identity ever reaches a protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from .errors import ProtocolViolationError
from .messages import Message
from .process import BROADCAST, Inbox, Outbox
from .topology import FullMeshTopology

#: Delivery plan: recipient global index -> recipient link label -> messages.
DeliveryMap = Dict[int, Dict[int, List[Message]]]


@dataclass
class Delivery:
    """Outcome of routing one round's outboxes.

    ``plan`` is the per-recipient inbox material; ``transmissions`` keeps the
    per-sender expanded ``(sender_link, message)`` lists from the same single
    expansion pass, so callers (metrics accounting, adversary bookkeeping)
    never re-expand an outbox the network already walked.
    """

    plan: DeliveryMap = field(default_factory=dict)
    transmissions: Dict[int, List[Tuple[int, Message]]] = field(
        default_factory=dict
    )

    def sent_count(self, sender: int) -> int:
        """Number of link transmissions ``sender`` made this round."""
        return len(self.transmissions.get(sender, ()))


class SynchronousNetwork:
    """Per-round message switch over a :class:`FullMeshTopology`."""

    def __init__(self, topology: FullMeshTopology) -> None:
        self._topology = topology

    @property
    def topology(self) -> FullMeshTopology:
        return self._topology

    def expand_outbox(self, sender: int, outbox: Outbox) -> List[Tuple[int, Message]]:
        """Flatten an outbox into ``(sender_link, message)`` transmissions.

        The :data:`BROADCAST` key expands to every link including the
        self-loop, matching the paper's ``broadcast``. Raises
        :class:`ProtocolViolationError` on malformed outboxes so protocol bugs
        fail loudly instead of being silently dropped.
        """
        n = self._topology.n
        transmissions: List[Tuple[int, Message]] = []
        for link, messages in outbox.items():
            if link == BROADCAST:
                links = list(self._topology.labels())
            elif 1 <= link <= n:
                links = [link]
            else:
                raise ProtocolViolationError(
                    f"process {sender} addressed invalid link {link} (n={n})"
                )
            for message in messages:
                if not isinstance(message, Message):
                    raise ProtocolViolationError(
                        f"process {sender} sent a non-Message object: {message!r}"
                    )
                for out_link in links:
                    transmissions.append((out_link, message))
        return transmissions

    def route(self, outboxes: Mapping[int, Outbox]) -> Delivery:
        """Route every sender's transmissions to recipient-local inboxes.

        Each outbox is expanded exactly once; the expanded transmission lists
        are returned alongside the plan (see :class:`Delivery`) so traffic
        accounting reuses them instead of expanding again. This is the
        innermost loop of every run.
        """
        delivery = Delivery()
        plan = delivery.plan
        for sender, outbox in outboxes.items():
            transmissions = self.expand_outbox(sender, outbox)
            delivery.transmissions[sender] = transmissions
            for sender_link, message in transmissions:
                recipient = self._topology.peer_of(sender, sender_link)
                if recipient == sender:
                    recipient_link = self._topology.self_link
                else:
                    recipient_link = self._topology.label_of(recipient, sender)
                plan.setdefault(recipient, {}).setdefault(recipient_link, []).append(
                    message
                )
        return delivery

    def deliver(self, outboxes: Mapping[int, Outbox]) -> DeliveryMap:
        """Plan-only convenience wrapper over :meth:`route`."""
        return self.route(outboxes).plan

    @staticmethod
    def freeze_inbox(links: Dict[int, List[Message]]) -> Inbox:
        """Freeze per-link message lists into an ascending-link-order inbox.

        Sorting once here is what lets every protocol hot loop walk its
        inbox without re-sorting (the ordering guarantee documented on
        :data:`~repro.sim.process.Inbox`).
        """
        return {link: tuple(links[link]) for link in sorted(links)}
