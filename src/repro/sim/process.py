"""Process abstraction for synchronous round-based protocols.

A protocol is written as a state machine with two hooks per round:

* :meth:`Process.send` — called at the *start* of round ``r``; returns the
  outbox of messages to put on the wire this round.
* :meth:`Process.deliver` — called at the *end* of round ``r`` with the inbox
  of everything that arrived, keyed by local link label.

This split mirrors the paper's "In Step r: broadcast(...); foreach ...
received" structure one-to-one, and lets the runner implement a *rushing*
adversary (which sees all correct round-``r`` messages before choosing its
own) without any protocol cooperation.

Once a process assigns :attr:`Process.output_value` it is done: the runner
stops invoking it and the run completes when every correct process is done.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .messages import Message

#: Sentinel outbox key meaning "send these messages on every link 1..N,
#: including the self-loop" — the paper's ``broadcast``.
BROADCAST = 0

#: An outbox maps a link label (or :data:`BROADCAST`) to the messages to send
#: on it this round.
Outbox = Dict[int, List[Message]]

#: An inbox maps a link label to the tuple of messages that arrived on it.
#:
#: Ordering guarantee: inboxes produced by the simulator
#: (:meth:`SynchronousNetwork.freeze_inbox`) iterate in ascending link order,
#: so per-round protocol loops can walk them directly without re-sorting.
#: Hand-built inboxes (tests, adversarial harnesses) need not be sorted;
#: :func:`ordered_links` normalises either kind at O(n) cost when already
#: sorted.
Inbox = Mapping[int, Tuple[Message, ...]]

#: Optional tracing callback: ``trace(round, event, detail)``.
TraceFn = Callable[[int, str, object], None]


@dataclass
class ProcessContext:
    """Everything a process is allowed to know about its environment.

    Deliberately minimal, matching Section II of the paper: the process knows
    ``n``, the fault bound ``t``, its own original id, and its link labels.
    It does *not* know which peer sits behind which label, nor anyone else's
    id.
    """

    n: int
    t: int
    my_id: int
    #: Defaults to a *fixed-seed* generator: a factory that forgets to pass a
    #: derived rng must never silently produce irreproducible runs. The
    #: runner always overrides this with ``derive_rng(seed, "process", i)``.
    rng: Random = field(default_factory=lambda: Random(0))
    trace: Optional[TraceFn] = None

    @property
    def self_link(self) -> int:
        """Label of the self-loop link (``n``)."""
        return self.n

    def log(self, round_no: int, event: str, detail: object = None) -> None:
        """Record a trace event if tracing is enabled (cheap no-op otherwise)."""
        if self.trace is not None:
            self.trace(round_no, event, detail)


class Process(ABC):
    """Base class for correct protocol processes.

    Subclasses implement :meth:`send` and :meth:`deliver` and eventually set
    :attr:`output_value`. Helper :meth:`broadcast` builds the common
    all-links outbox.
    """

    def __init__(self, ctx: ProcessContext) -> None:
        self.ctx = ctx
        self.output_value: Optional[object] = None

    @property
    def done(self) -> bool:
        """True once the process has produced its protocol output."""
        return self.output_value is not None

    @staticmethod
    def broadcast(*messages: Message) -> Outbox:
        """Outbox that sends ``messages`` on every link (incl. self-loop)."""
        return {BROADCAST: list(messages)}

    @abstractmethod
    def send(self, round_no: int) -> Outbox:
        """Messages to transmit at the start of round ``round_no``."""

    @abstractmethod
    def deliver(self, round_no: int, inbox: Inbox) -> None:
        """Consume everything received during round ``round_no``."""


def ordered_links(inbox: Inbox):
    """The inbox's link labels in ascending order, sorting only if needed.

    Simulator-produced inboxes are already link-sorted (see :data:`Inbox`),
    so the common case is a single O(n) sortedness check; hand-built
    unsorted inboxes pay for one sort.
    """
    links = list(inbox)
    if all(links[i] < links[i + 1] for i in range(len(links) - 1)):
        return links
    return sorted(links)


def iter_inbox(inbox: Inbox):
    """Yield ``(link, message)`` pairs over an inbox in link order.

    Handy for the ubiquitous "foreach <msg> received from a distinct link"
    loops in the paper's pseudo-code.
    """
    for link in ordered_links(inbox):
        for message in inbox[link]:
            yield link, message
