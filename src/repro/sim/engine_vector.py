"""Array-native round execution: the ``"vector"`` engine.

The batched engine still performs O(n²) Python-level work per round — one
buffer append per (sender, recipient) pair and one dict store per delivered
link. This module replaces that per-link object shuffling with dense arrays
and shared immutable views:

* the topology's two port permutations become dense numpy matrices built
  once per run — ``peer_at[p, link] -> peer`` and ``label_at[r, s] ->
  r's label for traffic from s`` — so routing any transmission is two array
  indexings instead of two dict lookups;
* a round's broadcast traffic lives in one *dense layer*: per-sender rows
  (``dense[s]`` = the tuple of messages ``s`` put on every link, ``None``
  for senders with nothing dense this round) plus a boolean mask over the
  rows. Because messages are frozen and a broadcast delivers the same
  objects to every recipient anyway, one tuple per sender serves all ``n``
  recipients — fan-out is never materialised;
* inboxes are :class:`VectorInbox` gather views over that layer: content-
  equal to the dict the reference engine would build, but constructed in
  O(1) and resolved lazily through the recipient's port row
  (``dense[peer_at[r, link]]``). The present-link list is one vectorised
  mask gather (``dense_mask[peer_row]``), not a Python loop;
* traffic accounting is per *message* with a fan-out multiplier through
  :meth:`~repro.sim.metrics.RunMetrics.observe_send` — the same shared
  accounting primitive the other engines use — with the batched engine's
  canonical-instance interning and bit-size cache.

Message shapes the dense layout cannot express fall back to a *scalar
overlay*: any outbox that is not a single pure ``BROADCAST`` entry —
point-to-point sends, Byzantine traffic aimed at specific links, and
every chaos-perturbed round (the injector expands broadcasts into explicit
per-link entries, including corrupted payloads and duplicated frames) — is
walked message by message into sparse per-recipient buckets, exactly like
the batched engine would. Dense layer and overlay compose per link without
ambiguity because each link label names exactly one sender.

Byzantine slots occupy rows of the same dense fabric, masked out of the
correct-traffic accounting: their broadcasts land in ``dense`` like anyone
else's (recipients cannot tell — that is the model), but nothing they send
is charged to the correct counters.

Behaviour identity with the reference loop is the same hard contract the
batched engine carries — same process-call order, equal inbox contents in
ascending link order, equal metrics, traces and errors —  enforced by the
three-engine grids in ``tests/test_engine_differential.py`` and
``tests/test_chaos_differential.py``.

numpy is an **optional dependency**: importing this module without it
raises ``ImportError``, which :mod:`repro.sim.engine` catches to leave the
``"vector"`` entry out of the registry (``resolve_engine("vector")`` then
explains the missing dependency instead of failing obscurely).
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .chaos import ChaosInjector
from .engine import Engine, _pooled_types, _raise_round_limit, _roundtrip_outbox
from .errors import ConfigurationError, ProtocolViolationError
from .faults import Adversary
from .messages import Message
from .metrics import RunMetrics
from .monitor import SafetyMonitor
from .network import SynchronousNetwork
from .process import BROADCAST, Inbox, Outbox, Process

__all__ = ["VectorEngine", "VectorInbox"]


class VectorInbox(MappingABC):
    """Read-only gather view over one round's dense layer + scalar overlay.

    Content-equal to the ascending-link-order dict inbox the reference
    engine builds (same links, same per-link message tuples, same iteration
    order) but constructed in O(1): link ``l`` resolves through the
    recipient's port row to ``dense[peer_row[l]]``, falling back to the
    sparse ``overlay`` for scalar-path traffic. A protocol that ignores its
    inbox — or reads only a few links — never pays for ``n``.

    The view is stable after the round ends: ``dense``/``dense_mask`` are
    rebuilt per round (never cleared in place), so a process that retains
    its inbox across rounds keeps seeing the round it was delivered in.
    """

    __slots__ = ("_peer_row", "_dense", "_dense_mask", "_overlay", "_links")

    def __init__(
        self,
        peer_row,  # np row view, length n+1; slot 0 unused (BROADCAST)
        dense: Sequence[Optional[Tuple[Message, ...]]],
        dense_mask,  # np bool array over senders
        overlay: Optional[Dict[int, Tuple[Message, ...]]],
    ) -> None:
        self._peer_row = peer_row
        self._dense = dense
        self._dense_mask = dense_mask
        self._overlay = overlay
        self._links: Optional[List[int]] = None

    def _link_list(self) -> List[int]:
        links = self._links
        if links is None:
            # One mask gather resolves which of the n links carried dense
            # traffic; the sparse overlay links are OR-ed on top.
            present = self._dense_mask[self._peer_row[1:]]
            overlay = self._overlay
            if overlay:
                present = present.copy()
                present[np.fromiter(overlay, dtype=np.intp, count=len(overlay)) - 1] = True
            links = self._links = (np.flatnonzero(present) + 1).tolist()
        return links

    def __getitem__(self, link) -> Tuple[Message, ...]:
        overlay = self._overlay
        if overlay is not None:
            got = overlay.get(link)
            if got is not None:
                return got
        # Match plain-dict key semantics: only the int labels 1..n resolve.
        # ``int(link)`` keeps bool keys dict-equivalent (``inbox[True]`` is
        # ``inbox[1]``) — raw ``peer_row[True]`` would be a boolean *mask*.
        if isinstance(link, int) and 1 <= link < len(self._peer_row):
            got = self._dense[self._peer_row[int(link)]]
            if got is not None:
                return got
        raise KeyError(link)

    def __iter__(self):
        return iter(self._link_list())

    def __len__(self) -> int:
        return len(self._link_list())

    def __eq__(self, other) -> bool:
        if isinstance(other, MappingABC):
            if len(other) != len(self):
                return False
            try:
                return all(other[link] == self[link] for link in self)
            except KeyError:
                return False
        return NotImplemented

    def __repr__(self) -> str:  # debugging aid; resolves the full view
        return f"VectorInbox({dict(self.items())!r})"


class VectorEngine(Engine):
    """Dense-matrix round loop (see module docstring).

    Behaviour-identical to :class:`~repro.sim.engine.ReferenceEngine` by
    the same contract the batched engine carries; every deviation is an
    implementation detail that provably cannot be observed:

    * port permutations are dense integer matrices built from the topology,
      so the (sender, link) → (recipient, recipient link) mapping is the
      same function in array form;
    * a broadcast's fan-out is one shared tuple instead of n buffer
      appends — safe because messages are frozen and the reference engine
      already aliases one object across all recipients of a broadcast;
    * inboxes are lazy :class:`VectorInbox` views with the documented
      ascending-link iteration order and dict-equal contents;
    * accounting goes through the shared
      :meth:`~repro.sim.metrics.RunMetrics.observe_send` primitive with the
      batched engine's interning and per-canonical-instance size cache,
      which sums to exactly the reference's per-transmission accounting.
    """

    name = "vector"

    def execute(
        self,
        *,
        processes: Dict[int, Process],
        adversary: Adversary,
        byzantine: Sequence[int],
        network: SynchronousNetwork,
        metrics: RunMetrics,
        through_wire: bool = False,
        max_rounds: int = 1000,
        collect_metrics: bool = True,
        chaos: Optional[ChaosInjector] = None,
        monitor: Optional[SafetyMonitor] = None,
    ) -> None:
        topology = network.topology
        n = topology.n
        byz_set = set(byzantine)

        # Dense port fabric, built once per run. peer_at[p, l] is the peer
        # that p reaches via label l (slot 0 is BROADCAST, never routed);
        # label_at[r, s] is r's label for traffic from s, with
        # label_at[p, p] = n (the self-loop).
        peer_at = np.empty((n, n + 1), dtype=np.intp)
        peer_at[:, 0] = 0
        for p in range(n):
            peer_at[p, 1:] = np.fromiter(
                (peer for _, peer in topology.link_items(p)),
                dtype=np.intp,
                count=n,
            )
        label_at = np.empty((n, n), dtype=np.intp)
        label_at[
            np.repeat(np.arange(n), n), peer_at[:, 1:].ravel()
        ] = np.tile(np.arange(1, n + 1), n)

        pooled = frozenset(_pooled_types())
        pool: Dict[Message, Message] = {}
        bits_of: Dict[int, int] = {}  # id(canonical) -> cached bit size
        id_bits = metrics.id_bits
        rank_bits = metrics.rank_bits
        observe_send = metrics.observe_send
        link_range = range(1, n + 1)

        def route(
            sender: int,
            outbox: Outbox,
            *,
            correct: bool,
            dense: List[Optional[Tuple[Message, ...]]],
            dense_mask,
            overlays: Dict[int, Dict[int, List[Message]]],
            record,
        ) -> int:
            """Route one outbox; returns its transmission count.

            ``record`` is the round's metric record, or ``None`` when
            accounting is off (interning still runs — it is a routing
            concern, not a metrics one).
            """
            if len(outbox) == 1 and BROADCAST in outbox:
                # Dense path: pure broadcast — one shared tuple serves every
                # recipient; no per-link expansion ever happens.
                out: List[Message] = []
                sent = 0
                for message in outbox[BROADCAST]:
                    if not isinstance(message, Message):
                        raise ProtocolViolationError(
                            f"process {sender} sent a non-Message object: "
                            f"{message!r}"
                        )
                    if correct:
                        is_pooled = type(message) in pooled
                        if is_pooled:
                            canonical = pool.get(message)
                            if canonical is None:
                                pool[message] = message
                            else:
                                message = canonical
                        if record is not None:
                            if is_pooled:
                                key = id(message)
                                bits = bits_of.get(key)
                                if bits is None:
                                    bits = message.bit_size(
                                        id_bits=id_bits, rank_bits=rank_bits
                                    )
                                    bits_of[key] = bits
                            else:
                                bits = message.bit_size(
                                    id_bits=id_bits, rank_bits=rank_bits
                                )
                            observe_send(record, bits, n)
                    out.append(message)
                    sent += n
                if out:
                    dense[sender] = tuple(out)
                    dense_mask[sender] = True
                return sent

            # Scalar overlay: anything the dense layer cannot express —
            # point-to-point sends, mixed outboxes, chaos-expanded rounds.
            prow = peer_at[sender]
            sent = 0
            for link, messages in outbox.items():
                if link == BROADCAST:
                    fan = n
                elif 1 <= link <= n:
                    fan = 1
                else:
                    raise ProtocolViolationError(
                        f"process {sender} addressed invalid link {link} (n={n})"
                    )
                for message in messages:
                    if not isinstance(message, Message):
                        raise ProtocolViolationError(
                            f"process {sender} sent a non-Message object: "
                            f"{message!r}"
                        )
                    if correct:
                        is_pooled = type(message) in pooled
                        if is_pooled:
                            canonical = pool.get(message)
                            if canonical is None:
                                pool[message] = message
                            else:
                                message = canonical
                        if record is not None:
                            if is_pooled:
                                key = id(message)
                                bits = bits_of.get(key)
                                if bits is None:
                                    bits = message.bit_size(
                                        id_bits=id_bits, rank_bits=rank_bits
                                    )
                                    bits_of[key] = bits
                            else:
                                bits = message.bit_size(
                                    id_bits=id_bits, rank_bits=rank_bits
                                )
                            observe_send(record, bits, fan)
                    sent += fan
                    if fan == 1:
                        recipient = int(prow[link])
                        overlays.setdefault(recipient, {}).setdefault(
                            int(label_at[recipient, sender]), []
                        ).append(message)
                    else:
                        for lnk in link_range:
                            recipient = int(prow[lnk])
                            overlays.setdefault(recipient, {}).setdefault(
                                int(label_at[recipient, sender]), []
                            ).append(message)
            return sent

        def freeze(overlay: Dict[int, List[Message]]) -> Dict[int, Tuple[Message, ...]]:
            return {link: tuple(overlay[link]) for link in sorted(overlay)}

        empty: Inbox = {}
        for round_no in range(1, max_rounds + 1):
            pending = [i for i, p in processes.items() if not p.done]
            if not pending:
                break
            if monitor is not None:
                monitor.begin_round(round_no)
            record = metrics.begin_round(round_no)

            correct_outboxes: Dict[int, Outbox] = {
                i: processes[i].send(round_no) for i in pending
            }
            if through_wire:
                correct_outboxes = {
                    i: _roundtrip_outbox(outbox)
                    for i, outbox in correct_outboxes.items()
                }
            byz_outboxes = adversary.send(round_no, correct_outboxes)
            for index in byz_outboxes:
                if index not in byz_set:
                    raise ConfigurationError(
                        f"adversary tried to send as correct process {index}"
                    )
            if chaos is not None:
                correct_outboxes, byz_outboxes = chaos.perturb(
                    round_no, correct_outboxes, byz_outboxes
                )

            # Fresh per-round layers (never cleared in place: delivered
            # VectorInbox views must stay valid if a process retains them).
            dense: List[Optional[Tuple[Message, ...]]] = [None] * n
            dense_mask = np.zeros(n, dtype=bool)
            overlays: Dict[int, Dict[int, List[Message]]] = {}
            rec = record if collect_metrics else None
            for index, outbox in correct_outboxes.items():
                route(
                    index, outbox, correct=True,
                    dense=dense, dense_mask=dense_mask, overlays=overlays,
                    record=rec,
                )
            byz_sent = 0
            for index, outbox in byz_outboxes.items():
                byz_sent += route(
                    index, outbox, correct=False,
                    dense=dense, dense_mask=dense_mask, overlays=overlays,
                    record=rec,
                )
            if collect_metrics:
                record.byzantine_messages += byz_sent

            # Any dense sender broadcast to *every* link, so with a
            # non-empty dense layer every recipient has a non-empty inbox.
            has_dense = bool(dense_mask.any())
            for index in pending:
                overlay = overlays.get(index)
                if has_dense:
                    inbox: Inbox = VectorInbox(
                        peer_at[index], dense, dense_mask,
                        freeze(overlay) if overlay else None,
                    )
                elif overlay:
                    inbox = freeze(overlay)
                else:
                    inbox = empty
                processes[index].deliver(round_no, inbox)
            if monitor is not None:
                monitor.after_deliver(round_no, processes)
            if adversary.wants_observations:
                byz_inboxes: Dict[int, Inbox] = {}
                for index in byzantine:
                    overlay = overlays.get(index)
                    if has_dense:
                        byz_inboxes[index] = VectorInbox(
                            peer_at[index], dense, dense_mask,
                            freeze(overlay) if overlay else None,
                        )
                    elif overlay:
                        byz_inboxes[index] = freeze(overlay)
                adversary.observe(round_no, byz_inboxes)
        else:
            _raise_round_limit(processes, max_rounds)
