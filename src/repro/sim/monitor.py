"""Runtime safety monitors: abort property-violating or runaway runs.

Post-hoc property checking (:func:`repro.analysis.properties.check_renaming`)
judges a run after it finishes — which presumes the run *does* finish, and
finishes with judgeable output. Under beyond-model fault injection
(:mod:`repro.sim.chaos`) neither holds: a run may stall forever against
``max_rounds``, or mint garbage names that downstream code trips over. A
:class:`SafetyMonitor` closes that gap inside the engine loop:

* **round-budget watchdog** — every synchronous algorithm here has a proven
  round bound; a run exceeding its budget is aborted with a typed
  :class:`~repro.sim.errors.SafetyViolation` at ``budget + 1`` instead of
  burning hundreds of rounds into ``max_rounds``;
* **incremental validity** — each name is checked against the promised
  namespace the moment its process emits it;
* **incremental uniqueness** — a name claimed twice aborts the run at the
  round of the second claim, naming both offenders.

The violation carries the offending round, the original ids involved, and a
trace pointer (the number of trace events recorded so far, when tracing is
on) so the failure can be located inside an archived timeline.

Monitors are deterministic observers: on a healthy run every check passes
and no state outside the monitor changes, so both execution engines remain
behaviour-identical with a monitor attached — in the failing case too, since
both raise at the same round with the same message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set

from .errors import SafetyViolation
from .process import Process

__all__ = ["SafetyMonitor", "SafetyPolicy"]


@dataclass(frozen=True)
class SafetyPolicy:
    """What a :class:`SafetyMonitor` enforces.

    ``namespace`` is the promised name bound ``M`` (validity is skipped when
    ``None`` — e.g. when an algorithm is run outside its regime and its
    closed-form bound is meaningless). ``round_budget`` is the proven round
    bound (watchdog skipped when ``None``); ``check_uniqueness`` can be
    dropped for protocols whose outputs are not names at all.
    """

    namespace: Optional[int] = None
    round_budget: Optional[int] = None
    check_uniqueness: bool = True


class SafetyMonitor:
    """Incremental per-round safety checks over the live process table.

    The engines call :meth:`begin_round` before collecting outboxes and
    :meth:`after_deliver` once every pending process has consumed its inbox.
    Both calls either pass silently or raise :class:`SafetyViolation`.
    """

    def __init__(
        self,
        policy: SafetyPolicy,
        *,
        ids: Mapping[int, int],
        trace=None,
    ) -> None:
        self.policy = policy
        self._ids = dict(ids)
        self._trace = trace
        self._claimed: Dict[object, int] = {}  # name -> global index
        self._recorded: Set[int] = set()

    def _pointer(self) -> Optional[int]:
        return len(self._trace) if self._trace is not None else None

    def begin_round(self, round_no: int) -> None:
        """Watchdog: trip once the proven round budget is exceeded."""
        budget = self.policy.round_budget
        if budget is not None and round_no > budget:
            raise SafetyViolation(
                f"round budget exceeded: round {round_no} began but the "
                f"algorithm's proven bound is {budget} rounds",
                violated="round-budget",
                round_no=round_no,
                trace_pointer=self._pointer(),
            )

    def after_deliver(
        self, round_no: int, processes: Mapping[int, Process]
    ) -> None:
        """Check every output emitted this round, as it is emitted."""
        policy = self.policy
        for index, process in processes.items():
            if not process.done or index in self._recorded:
                continue
            self._recorded.add(index)
            value = process.output_value
            original = self._ids.get(index, index)
            if policy.namespace is not None:
                if (
                    isinstance(value, bool)
                    or not isinstance(value, int)
                    or not 1 <= value <= policy.namespace
                ):
                    raise SafetyViolation(
                        f"validity violated in round {round_no}: id "
                        f"{original} emitted {value!r}, outside "
                        f"[1..{policy.namespace}]",
                        violated="validity",
                        round_no=round_no,
                        ids=(original,),
                        trace_pointer=self._pointer(),
                    )
            if policy.check_uniqueness:
                try:
                    holder = self._claimed.get(value)
                except TypeError:
                    continue  # unhashable output: not a name, nothing to claim
                if holder is not None:
                    raise SafetyViolation(
                        f"uniqueness violated in round {round_no}: ids "
                        f"{self._ids.get(holder, holder)} and {original} "
                        f"both emitted {value!r}",
                        violated="uniqueness",
                        round_no=round_no,
                        ids=(self._ids.get(holder, holder), original),
                        trace_pointer=self._pointer(),
                    )
                self._claimed[value] = index
