"""Fault injection *beyond* the paper's model.

Every theorem in the paper holds inside a strict model: reliable synchronous
links, at most ``t`` adversary-controlled slots, ``N > 3t`` (or the tighter
regimes of Algorithms 1-constant and 4). The simulator enforces that model —
adversaries in :mod:`repro.adversary` can only misbehave through the ``t``
faulty slots the runner hands them. This module deliberately breaks the
model, so the reproduction can characterise *how the system fails* when its
assumptions do not hold — the boundary probed by impersonation-style attacks
in the related literature (Okun & Barak).

A :class:`FaultPlan` is a declarative, seeded description of model
violations; a :class:`ChaosInjector` (built per run from the plan) perturbs
delivery between outbox collection and inbox freeze, inside both execution
engines through one shared hook:

* **drop** — per-link message loss (breaks "reliable links");
* **duplicate** — per-link message duplication (breaks "exactly-once");
* **corrupt** — payload corruption through the real wire codec: the message
  is encoded, 1–3 bits are flipped, and the result is decoded. Frames the
  codec rejects are discarded (a real link layer drops bad checksums);
  frames that still parse are delivered *as whatever they now decode to* —
  including a different message type;
* **crash** — send-crash of *correct* processes at a given round. Combined
  with the ``t`` adversary slots this yields over-threshold fault
  populations (``t' > t``), the canonical beyond-model regime.

Determinism: every random choice derives from ``FaultPlan.seed`` via
:func:`repro.sim.rng.derive_rng` with a per-round token, and the injector
walks outboxes in their (engine-identical) insertion order — so a plan
perturbs a run identically under the reference and the batched engine, and
the cross-engine differential contract extends to chaotic runs. An *empty*
plan is never installed at all (:func:`repro.sim.runner.run_protocol` skips
the hook entirely), so chaos costs nothing when disabled.

The self-loop link (label ``n``) is exempt from perturbation: it models
process-local delivery, not a network link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import ConfigurationError
from .process import BROADCAST, Outbox
from .rng import derive_rng

__all__ = ["ChaosInjector", "ChaosReport", "FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative specification of beyond-model fault injection.

    Probabilities are per link transmission. ``crashes`` pins explicit
    ``(global index, round)`` send-crashes of correct processes;
    ``extra_crashes`` additionally crashes that many correct processes
    (chosen deterministically from ``seed``) at ``crash_round``. A crashed
    process stops transmitting — on every link, self-loop included — from
    its crash round onward, but keeps receiving; that is exactly a crash
    fault outside the adversary's ``t`` budget.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    crashes: Tuple[Tuple[int, int], ...] = ()
    extra_crashes: int = 0
    crash_round: int = 1

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"fault plan {name} must be a probability in [0, 1], "
                    f"got {value!r}"
                )
        if self.extra_crashes < 0:
            raise ConfigurationError(
                f"extra_crashes must be >= 0, got {self.extra_crashes}"
            )
        if self.crash_round < 1:
            raise ConfigurationError(
                f"crash_round must be >= 1, got {self.crash_round}"
            )
        for index, round_no in self.crashes:
            if index < 0 or round_no < 1:
                raise ConfigurationError(
                    f"invalid crash entry ({index}, {round_no}): need "
                    f"index >= 0 and round >= 1"
                )

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (the hook is then skipped)."""
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.corrupt == 0.0
            and not self.crashes
            and self.extra_crashes == 0
        )

    def describe(self) -> str:
        """Compact human-readable summary (used in triage tables)."""
        if self.is_empty:
            return "none"
        parts = []
        if self.drop:
            parts.append(f"drop={self.drop:g}")
        if self.duplicate:
            parts.append(f"dup={self.duplicate:g}")
        if self.corrupt:
            parts.append(f"corrupt={self.corrupt:g}")
        if self.crashes:
            parts.append(
                "crash=" + ",".join(f"{i}@{r}" for i, r in self.crashes)
            )
        if self.extra_crashes:
            parts.append(f"crash+{self.extra_crashes}@{self.crash_round}")
        parts.append(f"seed={self.seed}")
        return " ".join(parts)


@dataclass
class ChaosReport:
    """What a :class:`ChaosInjector` actually did during one run.

    Picklable and cheap: plain counters plus the resolved crash schedule.
    ``crashed`` lists every planned ``(global index, round)`` send-crash
    (explicit and seed-chosen); ``crash_engaged`` the subset whose round was
    actually reached before the run ended.
    """

    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    corrupted_dropped: int = 0
    crashed: Tuple[Tuple[int, int], ...] = ()
    crash_engaged: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)

    @property
    def injected(self) -> bool:
        """True when at least one model violation actually happened."""
        return bool(
            self.dropped
            or self.duplicated
            or self.corrupted
            or self.corrupted_dropped
            or self.crash_engaged
        )

    def labels(self) -> Tuple[str, ...]:
        """The kinds of violation that occurred, as stable short labels."""
        out: List[str] = []
        if self.dropped:
            out.append(f"drop x{self.dropped}")
        if self.duplicated:
            out.append(f"duplicate x{self.duplicated}")
        if self.corrupted:
            out.append(f"corrupt x{self.corrupted}")
        if self.corrupted_dropped:
            out.append(f"corrupt-drop x{self.corrupted_dropped}")
        if self.crash_engaged:
            out.append(
                "crash " + ",".join(f"{i}@{r}" for i, r in self.crash_engaged)
            )
        return tuple(out)

    def as_dict(self) -> dict:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "corrupted_dropped": self.corrupted_dropped,
            "crashed": [list(pair) for pair in self.crashed],
            "crash_engaged": [list(pair) for pair in self.crash_engaged],
        }


class ChaosInjector:
    """Per-run fault injector compiled from a :class:`FaultPlan`.

    Both engines call :meth:`perturb` at the same point of the round loop —
    after the (rushing) adversary has chosen the Byzantine outboxes, before
    routing — with the same dictionaries in the same order, so the injected
    perturbation is engine-independent. Link-level chaos (drop, duplicate,
    corrupt) applies to correct *and* Byzantine traffic alike (the network
    does not know who is faulty); crashes apply only to correct processes —
    the adversary's slots are already under hostile control.
    """

    def __init__(
        self, plan: FaultPlan, *, n: int, byzantine: Tuple[int, ...] = ()
    ) -> None:
        self.plan = plan
        self._n = n
        byz = set(byzantine)
        crash_at: Dict[int, int] = {}
        for index, round_no in plan.crashes:
            if index >= n:
                raise ConfigurationError(
                    f"crash entry names process {index}, but n={n}"
                )
            if index in byz:
                raise ConfigurationError(
                    f"crash entry names Byzantine slot {index}; crashes "
                    f"model faults beyond the adversary's budget, so they "
                    f"must hit correct processes"
                )
            crash_at[index] = min(round_no, crash_at.get(index, round_no))
        if plan.extra_crashes:
            candidates = [
                i for i in range(n) if i not in byz and i not in crash_at
            ]
            if plan.extra_crashes > len(candidates):
                raise ConfigurationError(
                    f"cannot crash {plan.extra_crashes} extra processes: "
                    f"only {len(candidates)} correct processes available"
                )
            rng = derive_rng(plan.seed, "chaos", "extra-crashes")
            for index in sorted(rng.sample(candidates, plan.extra_crashes)):
                crash_at[index] = plan.crash_round
        self._crash_at = crash_at
        self._engaged: Dict[int, int] = {}
        self.report = ChaosReport(crashed=tuple(sorted(crash_at.items())))

    # ------------------------------------------------------------- round hook

    def perturb(
        self,
        round_no: int,
        correct_outboxes: Dict[int, Outbox],
        byz_outboxes: Dict[int, Outbox],
    ) -> Tuple[Dict[int, Outbox], Dict[int, Outbox]]:
        """Apply the plan to one round's outboxes; returns perturbed copies.

        Inputs are never mutated (the adversary may alias its own
        structures). The per-round RNG is re-derived from the plan seed, so
        the perturbation is a pure function of (plan, round, outboxes).
        """
        rng = derive_rng(self.plan.seed, "chaos", round_no)
        plan = self.plan
        link_chaos = plan.drop or plan.duplicate or plan.corrupt

        new_correct: Dict[int, Outbox] = {}
        for sender, outbox in correct_outboxes.items():
            crash_round = self._crash_at.get(sender)
            if crash_round is not None and round_no >= crash_round:
                if sender not in self._engaged:
                    self._engaged[sender] = crash_round
                    self.report.crash_engaged = tuple(
                        sorted(self._engaged.items())
                    )
                new_correct[sender] = {}
                continue
            new_correct[sender] = (
                self._perturb_outbox(rng, outbox) if link_chaos else outbox
            )
        if not link_chaos:
            return new_correct, byz_outboxes
        new_byz = {
            sender: self._perturb_outbox(rng, outbox)
            for sender, outbox in byz_outboxes.items()
        }
        return new_correct, new_byz

    # ---------------------------------------------------------------- helpers

    def _perturb_outbox(self, rng, outbox: Outbox) -> Outbox:
        n = self._n
        plan = self.plan
        report = self.report
        result: Outbox = {}
        for link, messages in outbox.items():
            if link == BROADCAST:
                labels = range(1, n + 1)
            elif 1 <= link <= n:
                labels = (link,)
            else:
                # Invalid label: pass through untouched so the engine raises
                # its usual ProtocolViolationError (error identity).
                result[link] = list(messages)
                continue
            for label in labels:
                bucket = result.setdefault(label, [])
                if label == n:  # self-loop: local delivery, not a network link
                    bucket.extend(messages)
                    continue
                for message in messages:
                    if plan.drop and rng.random() < plan.drop:
                        report.dropped += 1
                        continue
                    delivered = message
                    if plan.corrupt and rng.random() < plan.corrupt:
                        delivered = self._corrupt(rng, message)
                        if delivered is None:
                            report.corrupted_dropped += 1
                            continue
                    bucket.append(delivered)
                    if plan.duplicate and rng.random() < plan.duplicate:
                        report.duplicated += 1
                        bucket.append(delivered)
        return result

    def _corrupt(self, rng, message):
        """Flip 1–3 bits of the wire encoding and re-decode.

        Returns the decoded (possibly type-confused) message, the original
        message when the codec does not know its type (Byzantine senders may
        emit arbitrary objects), or ``None`` when the corrupted frame no
        longer parses — the link layer's checksum would have discarded it.
        """
        # Lazy import: the codec lives above the simulator substrate.
        from ..wire import WireError, decode_message, encode_message

        try:
            blob = bytearray(encode_message(message))
        except WireError:
            return message
        flips = rng.randrange(1, 4)
        for _ in range(flips):
            position = rng.randrange(len(blob) * 8)
            blob[position // 8] ^= 1 << (position % 8)
        try:
            corrupted = decode_message(bytes(blob))
        except WireError:
            return None
        self.report.corrupted += 1
        return corrupted
