"""Run metrics: rounds, message counts, and bit counts.

The paper's complexity claims (Sections IV-D and VI-B) are stated in
communication steps, total messages, and per-message bits. The runner feeds
this collector every round so experiment E6 can compare measured traffic
against the closed-form bounds.

Correct and Byzantine traffic are counted separately: the paper's bounds
govern what *correct* processes transmit, while Byzantine senders may emit
anything (including nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from .messages import Message


@dataclass
class RoundMetrics:
    """Traffic observed during one synchronous round."""

    round_no: int
    correct_messages: int = 0
    correct_bits: int = 0
    byzantine_messages: int = 0


@dataclass
class RunMetrics:
    """Aggregated traffic for a whole run.

    ``id_bits``/``rank_bits`` fix the encoding model used for bit accounting
    (see :mod:`repro.sim.messages`). ``peak_message_bits`` tracks the largest
    single message sent by a correct process — the quantity the paper's
    message-size bounds govern.
    """

    id_bits: int = 64
    rank_bits: int = 16
    peak_message_bits: int = 0
    rounds: List[RoundMetrics] = field(default_factory=list)

    def begin_round(self, round_no: int) -> RoundMetrics:
        """Open the accounting record for a new round."""
        record = RoundMetrics(round_no=round_no)
        self.rounds.append(record)
        return record

    def observe_send(self, record: RoundMetrics, bits: int, count: int = 1) -> None:
        """Charge ``count`` transmissions of one ``bits``-sized correct message.

        The single accounting primitive every engine goes through: message
        count, bit count, and peak-size tracking live here and nowhere else,
        so a change to the encoding model can never drift between engines.
        ``count`` is the fan-out (``n`` for a broadcast accounted per
        message, ``1`` for a per-transmission caller).
        """
        record.correct_messages += count
        record.correct_bits += count * bits
        if bits > self.peak_message_bits:
            self.peak_message_bits = bits

    def count_correct(self, record: RoundMetrics, messages: Iterable[Message]) -> None:
        """Charge correct-process messages to ``record`` and track peak size."""
        for message in messages:
            self.observe_send(
                record,
                message.bit_size(id_bits=self.id_bits, rank_bits=self.rank_bits),
            )

    @property
    def round_count(self) -> int:
        """Number of communication rounds executed."""
        return len(self.rounds)

    @property
    def correct_messages(self) -> int:
        """Total messages sent by correct processes."""
        return sum(r.correct_messages for r in self.rounds)

    @property
    def correct_bits(self) -> int:
        """Total bits sent by correct processes under the encoding model."""
        return sum(r.correct_bits for r in self.rounds)

    @property
    def byzantine_messages(self) -> int:
        """Total messages injected by the adversary."""
        return sum(r.byzantine_messages for r in self.rounds)
