"""The synchronous round executor.

:func:`run_protocol` wires together a topology, a set of correct protocol
processes, an adversary driving the faulty slots, metrics, and tracing, and
executes lock-step rounds until every correct process has produced an output
(or ``max_rounds`` fires, which for a synchronous algorithm is always a bug).

Round structure (matching the paper's "Step r"):

1. every correct, not-yet-done process is asked for its round-``r`` outbox;
2. the (rushing) adversary sees those outboxes and picks the Byzantine ones;
3. the network delivers everything simultaneously;
4. every correct, not-yet-done process consumes its inbox;
5. the adversary observes what reached the faulty slots.

The loop itself lives in :mod:`repro.sim.engine`: ``engine="reference"``
executes it one Python object per message hop, ``engine="batched"`` (the
default) runs the same rounds through precomputed routing tables and reused
inbox buffers, and ``engine="vector"`` (:mod:`repro.sim.engine_vector`,
present when numpy is installed) runs them over dense port matrices with
lazy gather-view inboxes. All are behaviour-identical under every
adversary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from .chaos import ChaosInjector, ChaosReport, FaultPlan
from .engine import DEFAULT_ENGINE, resolve_engine
from .errors import ConfigurationError
from .faults import Adversary, AdversaryContext, NullAdversary, split_fault_slots
from .messages import int_bits
from .metrics import RunMetrics
from .model import ModelReport, SystemModel
from .monitor import SafetyMonitor, SafetyPolicy
from .network import SynchronousNetwork
from .process import Process, ProcessContext
from .rng import derive_rng
from .topology import FullMeshTopology
from .trace import TraceRecorder

#: Builds a protocol instance from a context; the same factory serves correct
#: processes and the adversary's "run the real protocol" strategies.
ProcessFactory = Callable[[ProcessContext], Process]


class _PerturbChain:
    """Compose several perturb hooks at the engines' single hook point.

    The engines accept exactly one ``chaos``-shaped hook; when a run carries
    both a system model and a chaos plan, this chains them — model first
    (it *defines* what the network delivers), chaos second (beyond-model
    breakage applies to whatever network the model produced). Each stage
    honours the no-input-mutation contract, so the chain does too.
    """

    def __init__(self, *hooks) -> None:
        self._hooks = hooks

    def perturb(self, round_no, correct_outboxes, byz_outboxes):
        for hook in self._hooks:
            correct_outboxes, byz_outboxes = hook.perturb(
                round_no, correct_outboxes, byz_outboxes
            )
        return correct_outboxes, byz_outboxes


@dataclass
class RunResult:
    """Everything observable about a finished run."""

    n: int
    t: int
    byzantine: Tuple[int, ...]
    ids: Dict[int, int]
    outputs: Dict[int, object]
    metrics: RunMetrics
    trace: Optional[TraceRecorder]
    processes: Dict[int, Process]
    #: What beyond-model fault injection actually did (``None`` when the run
    #: had no chaos plan — the overwhelmingly common case).
    chaos: Optional[ChaosReport] = None
    #: What the system model's injector actually did (``None`` when the run
    #: used the classic model or an inert parameterization).
    model: Optional[ModelReport] = None

    @property
    def correct(self) -> Tuple[int, ...]:
        """Global indices of correct processes."""
        byz = set(self.byzantine)
        return tuple(i for i in range(self.n) if i not in byz)

    def outputs_by_id(self) -> Dict[int, object]:
        """Map each correct process's *original id* to its output."""
        return {self.ids[i]: self.outputs[i] for i in self.correct}

    def new_names(self) -> Dict[int, int]:
        """``outputs_by_id`` narrowed to integer names (the renaming case).

        ``bool`` is rejected explicitly: it passes ``isinstance(..., int)``,
        so a protocol that buggily outputs ``True`` would otherwise be
        silently treated as name 1.
        """
        named = {}
        for original, output in self.outputs_by_id().items():
            if isinstance(output, bool) or not isinstance(output, int):
                raise TypeError(
                    f"output for id {original} is {output!r}, not an int name"
                )
            named[original] = output
        return named


def run_protocol(
    factory: ProcessFactory,
    *,
    n: int,
    t: int,
    ids: Sequence[int],
    adversary: Optional[Adversary] = None,
    byzantine: Sequence[int] = (),
    seed: int = 0,
    max_rounds: int = 1000,
    collect_trace: bool = False,
    through_wire: bool = False,
    engine: str = DEFAULT_ENGINE,
    collect_metrics: bool = True,
    topology_seed: Optional[int] = None,
    chaos: Optional[FaultPlan] = None,
    safety: Optional[SafetyPolicy] = None,
    model: Optional[SystemModel] = None,
) -> RunResult:
    """Execute one synchronous run and return its :class:`RunResult`.

    ``ids[i]`` is the original id of the process at global index ``i`` —
    faulty slots get ids too (the adversary may use, abuse, or ignore them).
    ``byzantine`` pins specific slots as faulty; remaining faulty slots (up to
    ``t``) are drawn from the seed. With ``adversary=None`` the faulty slots
    are silent (:class:`NullAdversary`).

    ``through_wire=True`` round-trips every correct process's messages
    through the binary codec (:mod:`repro.wire`) before delivery — a
    fidelity drill proving the codec carries the full protocol (Byzantine
    traffic is exempt: adversaries may emit objects no codec knows).

    ``engine`` selects the round-loop implementation (see
    :mod:`repro.sim.engine`): ``"batched"`` (default), ``"reference"``,
    or ``"vector"`` (numpy-backed; registered only when numpy is
    installed). All produce identical results; the reference engine
    exists as the obviously-correct oracle the other engines are
    differentially tested against.

    ``collect_metrics=False`` skips all traffic accounting (message and bit
    counters stay zero); round counts are always recorded. ``topology_seed``
    overrides the seed used for link labelling only — metamorphic tests use
    it to relabel every link while keeping fault slots, process randomness,
    and the adversary unchanged.

    ``chaos`` (a :class:`~repro.sim.chaos.FaultPlan`) injects beyond-model
    faults — message drop/duplication/corruption, send-crashes of correct
    processes — deterministically from the plan's own seed; an empty plan is
    skipped entirely, so the engines' differential contract is untouched.
    The injection record lands on :attr:`RunResult.chaos`. ``safety`` (a
    :class:`~repro.sim.monitor.SafetyPolicy`) attaches a runtime monitor
    that aborts property-violating or over-budget runs with a typed
    :class:`~repro.sim.errors.SafetyViolation`.

    ``model`` (a :class:`~repro.sim.model.SystemModel`) selects the system
    model the run executes under — ``classic`` (the paper's, the default),
    ``impersonation(k)`` or ``partial_synchrony(rate, max_delay)``. A
    non-inert model compiles into an injector sharing the chaos hook (model
    first — it *defines* the network; chaos then breaks it), so all engines
    stay behaviour-identical under every model; an inert model installs
    nothing and the run is bit-identical to a model-free one. The model's
    record lands on :attr:`RunResult.model`.
    """
    if n < 1:
        raise ConfigurationError(f"need at least one process, got n={n}")
    if not 0 <= t < n:
        raise ConfigurationError(f"fault bound t={t} must satisfy 0 <= t < n={n}")
    if len(ids) != n:
        raise ConfigurationError(f"got {len(ids)} ids for n={n} processes")
    if len(set(ids)) != n:
        raise ConfigurationError("original ids must be unique")
    if any(identifier < 1 for identifier in ids):
        raise ConfigurationError("original ids must be positive integers")

    engine_impl = resolve_engine(engine)
    topology = FullMeshTopology(n, seed=seed if topology_seed is None else topology_seed)
    network = SynchronousNetwork(topology)
    byz = split_fault_slots(n, t, derive_rng(seed, "fault-slots"), fixed=byzantine)
    byz_set = set(byz)
    id_of = {i: int(ids[i]) for i in range(n)}

    trace = TraceRecorder() if collect_trace else None
    metrics = RunMetrics(
        id_bits=int_bits(max(ids) + 1),
        rank_bits=int_bits(n * n + 1),
    )

    def build(index: int) -> Process:
        ctx = ProcessContext(
            n=n,
            t=t,
            my_id=id_of[index],
            rng=derive_rng(seed, "process", index),
            trace=trace.bind(index) if trace is not None else None,
        )
        return factory(ctx)

    processes: Dict[int, Process] = {i: build(i) for i in range(n) if i not in byz_set}

    if adversary is None:
        adversary = NullAdversary()
    adversary.bind(
        AdversaryContext(
            n=n,
            t=t,
            byzantine=byz,
            ids=id_of,
            topology=topology,
            rng=derive_rng(seed, "adversary"),
            make_process=build,
        )
    )

    injector = None
    if chaos is not None and not chaos.is_empty:
        injector = ChaosInjector(chaos, n=n, byzantine=byz)
    model_injector = None
    if model is not None:
        model_injector = model.build_injector(n=n, byzantine=byz)
    if model_injector is not None and injector is not None:
        hook = _PerturbChain(model_injector, injector)
    else:
        hook = model_injector if model_injector is not None else injector
    monitor = None
    if safety is not None:
        monitor = SafetyMonitor(safety, ids=id_of, trace=trace)

    engine_impl.execute(
        processes=processes,
        adversary=adversary,
        byzantine=byz,
        network=network,
        metrics=metrics,
        through_wire=through_wire,
        max_rounds=max_rounds,
        collect_metrics=collect_metrics,
        chaos=hook,
        monitor=monitor,
    )

    outputs = {i: p.output_value for i, p in processes.items()}
    return RunResult(
        n=n,
        t=t,
        byzantine=byz,
        ids=id_of,
        outputs=outputs,
        metrics=metrics,
        trace=trace,
        processes=processes,
        chaos=injector.report if injector is not None else None,
        model=model_injector.report if model_injector is not None else None,
    )
