"""First-class system-model axes: the paper's model as a parameter.

The paper proves its theorems inside one fixed model — reliable synchronous
links, a full mesh, at most ``t`` corrupted processes. This module promotes
the *model itself* to a run parameter, a :class:`SystemModel`:

* **classic** — the paper's model, unchanged. No injector is installed, so
  a classic run is bit-for-bit the run we always executed.
* **impersonation(k)** — Okun & Barak's "On the Power of Impersonation
  Attacks" axis: an *external* adversary injects up to ``k`` forged-sender
  frames per round without corrupting any process. Forged frames are real
  codec round-trips of this round's correct traffic, attributed to a spoofed
  sender on a network link of the adversary's choosing; existing
  correct↔correct traffic is never touched, reordered or re-encoded — the
  forgeries are strictly appended frames, so stripping them recovers the
  classic run byte-for-byte (the metamorphic property the test suite pins).
* **partial_synchrony(omission_rate, max_delay)** — rounds stop being
  reliable: each network transmission is independently omitted (or, with
  ``max_delay > 0``, buffered and re-delivered 1..``max_delay`` rounds
  late). This promotes the chaos harness's beyond-model omission/late
  delivery into a seeded, parameterized model with round-offset delivery
  buffers and its own property expectations.

Mechanically a model compiles (via :meth:`SystemModel.build_injector`) into
an injector with the exact ``perturb(round_no, correct_outboxes,
byz_outboxes)`` contract of :class:`~repro.sim.chaos.ChaosInjector`, and the
runner threads it through the *same single engine hook* chaos uses — so all
three engines (reference, batched, vector) stay trace-byte-identical to each
other under every model, and the cross-engine differential contract extends
to modelled runs for free. Degenerate models (``classic``,
``impersonation(k=0)``, ``partial_synchrony(rate=0)``) are *inert*: no
injector is built, the hook is skipped, and the run is bit-identical to a
model-free run by construction.

Determinism mirrors chaos: every random choice derives from the model's own
seed via :func:`repro.sim.rng.derive_rng` with a per-round token, and
injectors walk outboxes in (engine-identical) insertion order. The self-loop
link (label ``n``) models process-local delivery, not a network link, and is
exempt from both axes.

Each model kind registers its *property expectations*
(:class:`ModelExpectations`, looked up through :data:`EXPECTATIONS`): which
renaming properties must still hold inside the model's bound, which are
expected to degrade, and whether the paper's round budgets survive.
:mod:`repro.analysis.properties` stamps the model onto every
:class:`~repro.analysis.properties.PropertyReport` so violations classify
against those expectations instead of reading as algorithm bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .errors import ConfigurationError
from .process import BROADCAST, Outbox
from .rng import derive_rng

__all__ = [
    "EXPECTATIONS",
    "MODEL_KINDS",
    "ModelExpectations",
    "ModelInjector",
    "ModelReport",
    "SystemModel",
    "parse_model",
]

#: Registered model kinds, in presentation order.
MODEL_KINDS: Tuple[str, ...] = ("classic", "impersonation", "partial-synchrony")


@dataclass(frozen=True)
class SystemModel:
    """One point on the system-model axis (frozen, hashable, picklable).

    Prefer the named constructors (:meth:`classic`, :meth:`impersonation`,
    :meth:`partial_synchrony`) over spelling fields out: each kind only
    *has* some of the fields, and validation pins the foreign-axis fields to
    their defaults so every model has exactly one canonical representation
    (cache keys and journal fingerprints depend on that).
    """

    kind: str = "classic"
    #: Impersonation: forged-sender frames injected per round.
    k: int = 0
    #: Partial synchrony: per-transmission omission/delay probability.
    omission_rate: float = 0.0
    #: Partial synchrony: maximum delivery delay in rounds (0 = pure
    #: omission: an affected transmission is simply lost).
    max_delay: int = 1
    #: Seed for the model's own randomness (independent of the run seed,
    #: exactly like :attr:`~repro.sim.chaos.FaultPlan.seed`).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in MODEL_KINDS:
            known = ", ".join(MODEL_KINDS)
            raise ConfigurationError(
                f"unknown system model {self.kind!r}; known models: {known}"
            )
        if isinstance(self.k, bool) or not isinstance(self.k, int) or self.k < 0:
            raise ConfigurationError(
                f"impersonation k must be an int >= 0, got {self.k!r}"
            )
        if not 0.0 <= self.omission_rate <= 1.0:
            raise ConfigurationError(
                f"omission_rate must be a probability in [0, 1], "
                f"got {self.omission_rate!r}"
            )
        if (
            isinstance(self.max_delay, bool)
            or not isinstance(self.max_delay, int)
            or self.max_delay < 0
        ):
            raise ConfigurationError(
                f"max_delay must be an int >= 0 rounds, got {self.max_delay!r}"
            )
        # Canonical form: fields from another kind's axis must stay default.
        if self.kind != "impersonation" and self.k != 0:
            raise ConfigurationError(
                f"k={self.k} is an impersonation parameter; "
                f"model kind is {self.kind!r}"
            )
        if self.kind != "partial-synchrony" and (
            self.omission_rate != 0.0 or self.max_delay != 1
        ):
            raise ConfigurationError(
                f"omission_rate/max_delay are partial-synchrony parameters; "
                f"model kind is {self.kind!r}"
            )
        if self.kind == "classic" and self.seed != 0:
            raise ConfigurationError(
                "the classic model takes no parameters (it is the paper's "
                "model); drop seed or pick a non-classic kind"
            )

    # ------------------------------------------------------------ constructors

    @classmethod
    def classic(cls) -> "SystemModel":
        """The paper's model, unchanged (inert: no injector is installed)."""
        return cls()

    @classmethod
    def impersonation(cls, k: int, seed: int = 0) -> "SystemModel":
        """Okun-style external adversary: ``k`` forged frames per round."""
        return cls(kind="impersonation", k=k, seed=seed)

    @classmethod
    def partial_synchrony(
        cls, omission_rate: float, max_delay: int = 1, seed: int = 0
    ) -> "SystemModel":
        """Lossy rounds: transmissions omitted or delayed up to
        ``max_delay`` rounds with probability ``omission_rate`` each."""
        return cls(
            kind="partial-synchrony",
            omission_rate=omission_rate,
            max_delay=max_delay,
            seed=seed,
        )

    # -------------------------------------------------------------- predicates

    @property
    def is_classic(self) -> bool:
        return self.kind == "classic"

    @property
    def is_inert(self) -> bool:
        """True when the model cannot perturb anything (``classic``,
        ``impersonation(k=0)``, ``partial_synchrony(rate=0)``). Inert models
        install no injector, so the run is bit-identical to a model-free
        run *by construction*, not by a no-op code path."""
        if self.kind == "impersonation":
            return self.k == 0
        if self.kind == "partial-synchrony":
            return self.omission_rate == 0.0
        return True

    # ------------------------------------------------------------- description

    def describe(self) -> str:
        """Compact, stable, human-readable summary (tables, reports)."""
        if self.kind == "impersonation":
            parts = [f"k={self.k}"]
            if self.seed:
                parts.append(f"seed={self.seed}")
            return f"impersonation({','.join(parts)})"
        if self.kind == "partial-synchrony":
            parts = [f"rate={self.omission_rate:g}", f"delay={self.max_delay}"]
            if self.seed:
                parts.append(f"seed={self.seed}")
            return f"partial-synchrony({','.join(parts)})"
        return "classic"

    def spec(self) -> str:
        """The :func:`parse_model` spec string for this model — the exact
        inverse of parsing, so scenario tables and CLI flags can carry any
        model as a plain string: ``parse_model(model.spec()) == model``."""
        if self.kind == "impersonation":
            parts = [f"k={self.k}"]
            if self.seed:
                parts.append(f"seed={self.seed}")
            return f"impersonation:{','.join(parts)}"
        if self.kind == "partial-synchrony":
            parts = [f"rate={self.omission_rate:g}", f"delay={self.max_delay}"]
            if self.seed:
                parts.append(f"seed={self.seed}")
            return f"partial-synchrony:{','.join(parts)}"
        return "classic"

    # ------------------------------------------------------------ serialisation

    def to_dict(self) -> dict:
        """JSON-ready payload: the kind plus only the non-default fields,
        so every model serialises to exactly one canonical dict (cache keys
        hash this)."""
        payload: dict = {"kind": self.kind}
        if self.k:
            payload["k"] = self.k
        if self.omission_rate:
            payload["omission_rate"] = self.omission_rate
        if self.max_delay != 1:
            payload["max_delay"] = self.max_delay
        if self.seed:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SystemModel":
        """Inverse of :meth:`to_dict` (journal/cache round-trip)."""
        return cls(
            kind=payload["kind"],
            k=payload.get("k", 0),
            omission_rate=payload.get("omission_rate", 0.0),
            max_delay=payload.get("max_delay", 1),
            seed=payload.get("seed", 0),
        )

    # -------------------------------------------------------------- behaviour

    def expectations(self) -> "ModelExpectations":
        """The model's registered property expectations (see
        :data:`EXPECTATIONS`)."""
        return EXPECTATIONS[self.kind](self)

    def build_injector(
        self, *, n: int, byzantine: Iterable[int] = ()
    ) -> Optional["ModelInjector"]:
        """Compile the model into a per-run injector, or ``None`` when inert.

        The injector carries the chaos hook contract
        (``perturb(round_no, correct_outboxes, byz_outboxes)``), so the
        runner threads it through the engines' existing single hook point.
        """
        if self.is_inert:
            return None
        if self.kind == "impersonation":
            if n < 2:
                raise ConfigurationError(
                    f"impersonation needs a network link to forge on: "
                    f"n={n} has only the self-loop"
                )
            return ImpersonationInjector(self, n=n, byzantine=byzantine)
        return PartialSynchronyInjector(self, n=n, byzantine=byzantine)


def parse_model(text: str) -> SystemModel:
    """Parse a CLI/scenario model spec into a :class:`SystemModel`.

    Grammar: ``classic`` | ``impersonation:k=K[,seed=S]`` |
    ``partial-synchrony:rate=P[,delay=D][,seed=S]``. Raises
    :class:`~repro.sim.errors.ConfigurationError` on anything else, naming
    the accepted forms.
    """
    usage = (
        "expected classic | impersonation:k=K[,seed=S] | "
        "partial-synchrony:rate=P[,delay=D][,seed=S]"
    )
    kind, _, argtext = text.strip().partition(":")
    params: Dict[str, str] = {}
    if argtext:
        for item in argtext.split(","):
            key, eq, value = item.partition("=")
            if not eq or not key.strip() or not value.strip():
                raise ConfigurationError(
                    f"malformed model parameter {item!r} in {text!r}; {usage}"
                )
            params[key.strip()] = value.strip()

    def take_int(name: str, default: int = 0) -> int:
        raw = params.pop(name, None)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ConfigurationError(
                f"model parameter {name}={raw!r} is not an integer; {usage}"
            ) from None

    try:
        if kind == "classic":
            model = SystemModel.classic()
        elif kind == "impersonation":
            if "k" not in params:
                raise ConfigurationError(
                    f"impersonation requires k=; {usage}"
                )
            model = SystemModel.impersonation(
                take_int("k"), seed=take_int("seed")
            )
        elif kind == "partial-synchrony":
            raw_rate = params.pop("rate", None)
            if raw_rate is None:
                raise ConfigurationError(
                    f"partial-synchrony requires rate=; {usage}"
                )
            try:
                rate = float(raw_rate)
            except ValueError:
                raise ConfigurationError(
                    f"model parameter rate={raw_rate!r} is not a number; "
                    f"{usage}"
                ) from None
            model = SystemModel.partial_synchrony(
                rate, max_delay=take_int("delay", 1), seed=take_int("seed")
            )
        else:
            raise ConfigurationError(
                f"unknown system model {kind!r}; {usage}"
            )
    except TypeError:  # pragma: no cover - defensive
        raise ConfigurationError(f"malformed model spec {text!r}; {usage}")
    if params:
        extra = ", ".join(sorted(params))
        raise ConfigurationError(
            f"unknown model parameter(s) {extra} for {kind!r}; {usage}"
        )
    return model


# --------------------------------------------------------------- expectations


@dataclass(frozen=True)
class ModelExpectations:
    """What a model promises about the four renaming properties.

    ``guaranteed`` properties must hold in *every* run inside the model
    (for properties the algorithm itself promises — a baseline that never
    promised order preservation is not held to it); ``degradable``
    properties may break, and a break classifies as an expected degradation
    rather than an algorithm bug. ``round_budget_holds`` says whether the
    paper's proven round budgets survive the model (partial synchrony
    withholds frames, so they do not).
    """

    model: str
    guaranteed: Tuple[str, ...]
    degradable: Tuple[str, ...]
    bound: str
    round_budget_holds: bool = True

    def classify(self, broken: Iterable[str]) -> Dict[str, str]:
        """Map each broken property to ``"expected-degradation"`` (listed
        as degradable) or ``"unexpected"`` (a guaranteed property broke —
        inside the model's bound that is a finding, not noise)."""
        return {
            prop: (
                "expected-degradation"
                if prop in self.degradable
                else "unexpected"
            )
            for prop in broken
        }


def _classic_expectations(model: SystemModel) -> ModelExpectations:
    return ModelExpectations(
        model=model.describe(),
        guaranteed=(
            "validity",
            "termination",
            "uniqueness",
            "order_preservation",
        ),
        degradable=(),
        bound="the paper's model: reliable synchronous links, <= t "
        "Byzantine slots, each algorithm's resilience regime",
        round_budget_holds=True,
    )


def _impersonation_expectations(model: SystemModel) -> ModelExpectations:
    return ModelExpectations(
        model=model.describe(),
        # Forged frames only *add* traffic; no frame is withheld, so every
        # round-scheduled algorithm still reaches its output schedule.
        guaranteed=("termination",),
        degradable=("validity", "uniqueness", "order_preservation"),
        bound=f"<= {model.k} forged-sender frames per round, injected by "
        "an external adversary through the real codec (Okun & Barak); "
        "agreement-bearing properties may degrade once forged frames "
        "outvote real ones",
        round_budget_holds=True,
    )


def _partial_synchrony_expectations(model: SystemModel) -> ModelExpectations:
    return ModelExpectations(
        model=model.describe(),
        # Withheld frames can starve any property, including termination
        # (a process may never assemble the quorum it is waiting for).
        guaranteed=(),
        degradable=(
            "validity",
            "termination",
            "uniqueness",
            "order_preservation",
        ),
        bound=f"each network transmission independently omitted or "
        f"delayed with p={model.omission_rate:g}, delay <= "
        f"{model.max_delay} round(s); synchrony bounds and round "
        "budgets do not survive",
        round_budget_holds=False,
    )


#: Per-kind expectation builders. Every registered model kind must have an
#: entry — ``SystemModel.expectations()`` dispatches through this table, and
#: the contract tests iterate it to keep the matrix total.
EXPECTATIONS: Dict[str, Callable[[SystemModel], ModelExpectations]] = {
    "classic": _classic_expectations,
    "impersonation": _impersonation_expectations,
    "partial-synchrony": _partial_synchrony_expectations,
}


# --------------------------------------------------------------------- report


@dataclass
class ModelReport:
    """What a model injector actually did during one run (picklable).

    ``delayed`` counts frames scheduled for late delivery;
    ``delivered_late`` the subset whose delivery round arrived before the
    run ended — the difference (:attr:`undelivered`) was still in flight at
    the end and is indistinguishable from an omission to the processes.
    """

    model: str
    forged: int = 0
    omitted: int = 0
    delayed: int = 0
    delivered_late: int = 0

    @property
    def undelivered(self) -> int:
        """Delayed frames the run ended before re-delivering."""
        return self.delayed - self.delivered_late

    @property
    def injected(self) -> bool:
        """True when the model actually perturbed at least one frame."""
        return bool(self.forged or self.omitted or self.delayed)

    def labels(self) -> Tuple[str, ...]:
        """Stable short labels of what happened (triage tables)."""
        out: List[str] = []
        if self.forged:
            out.append(f"forge x{self.forged}")
        if self.omitted:
            out.append(f"omit x{self.omitted}")
        if self.delayed:
            out.append(
                f"delay x{self.delayed} (late x{self.delivered_late})"
            )
        return tuple(out)

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "forged": self.forged,
            "omitted": self.omitted,
            "delayed": self.delayed,
            "delivered_late": self.delivered_late,
        }


# ------------------------------------------------------------------ injectors


class ModelInjector:
    """Base for per-run model injectors.

    Subclasses implement :meth:`perturb` with the exact contract of
    :meth:`repro.sim.chaos.ChaosInjector.perturb`: called by every engine at
    the same point of the round loop (after the rushing adversary picked the
    Byzantine outboxes, before routing), must never mutate its inputs, and
    must be a deterministic function of (model, round history, outboxes) so
    the perturbation is engine-independent.
    """

    model: SystemModel
    report: ModelReport

    def perturb(
        self,
        round_no: int,
        correct_outboxes: Dict[int, Outbox],
        byz_outboxes: Dict[int, Outbox],
    ) -> Tuple[Dict[int, Outbox], Dict[int, Outbox]]:
        raise NotImplementedError


class ImpersonationInjector(ModelInjector):
    """Okun-style external adversary: up to ``k`` forged frames per round.

    Each forged frame is a codec round-trip (encode → decode) of one of
    this round's correct frames — the strongest thing an external adversary
    without key material can do is replay plausible traffic under a fake
    sender — attributed to a uniformly chosen spoofed sender on a uniformly
    chosen *network* link of that sender (the self-loop, label ``n``, is
    process-local and cannot be forged onto).

    Existing traffic is passed through by reference, never re-encoded or
    reordered; forgeries are appended to (copy-on-write) outbox buckets.
    Dropping every appended frame therefore reconstructs the classic round
    exactly — the metamorphic guarantee the hypothesis suite pins.
    """

    def __init__(
        self, model: SystemModel, *, n: int, byzantine: Iterable[int] = ()
    ) -> None:
        self.model = model
        self._n = n
        self._byz = frozenset(byzantine)
        self.report = ModelReport(model=model.describe())

    def perturb(
        self,
        round_no: int,
        correct_outboxes: Dict[int, Outbox],
        byz_outboxes: Dict[int, Outbox],
    ) -> Tuple[Dict[int, Outbox], Dict[int, Outbox]]:
        # Lazy import: the codec lives above the simulator substrate.
        from ..wire import WireError, decode_message, encode_message

        templates = [
            message
            for outbox in correct_outboxes.values()
            for messages in outbox.values()
            for message in messages
        ]
        if not templates:
            return correct_outboxes, byz_outboxes

        rng = derive_rng(self.model.seed, "model", "impersonation", round_no)
        new_correct = dict(correct_outboxes)
        new_byz = dict(byz_outboxes)
        copied: set = set()
        for _ in range(self.model.k):
            template = templates[rng.randrange(len(templates))]
            spoofed = rng.randrange(self._n)
            # Labels 1..n-1 are network links; label n is the self-loop.
            link = rng.randrange(1, self._n)
            try:
                forged = decode_message(encode_message(template))
            except WireError:  # pragma: no cover - correct frames encode
                continue
            target = new_byz if spoofed in self._byz else new_correct
            if spoofed not in copied:
                original = target.get(spoofed, {})
                target[spoofed] = {
                    l: list(msgs) for l, msgs in original.items()
                }
                copied.add(spoofed)
            target[spoofed].setdefault(link, []).append(forged)
            self.report.forged += 1
        return new_correct, new_byz


class PartialSynchronyInjector(ModelInjector):
    """Lossy rounds: per-transmission omission and round-offset delivery.

    Stateful across rounds: a delayed frame leaves its round's outboxes and
    re-enters the *delivery round's* outboxes through the same hook,
    appended after that round's fresh traffic (a late frame arrives behind
    the current round's). Frames whose delivery round never comes (the run
    ended) are lost — to the processes that is exactly an omission, and the
    report's :attr:`~ModelReport.undelivered` counts them.

    Like the chaos injector, the filter expands ``BROADCAST`` into explicit
    per-link entries (each copy of a broadcast frame fates independently),
    exempts the self-loop, applies to correct and Byzantine traffic alike
    (the network does not know who is faulty), and passes invalid link
    labels through untouched so the engines raise their usual
    ``ProtocolViolationError`` (error identity).
    """

    def __init__(
        self, model: SystemModel, *, n: int, byzantine: Iterable[int] = ()
    ) -> None:
        self.model = model
        self._n = n
        self._byz = frozenset(byzantine)
        self.report = ModelReport(model=model.describe())
        #: delivery round -> [(sender, link, message)] in scheduling order.
        self._pending: Dict[int, List[Tuple[int, int, object]]] = {}

    def perturb(
        self,
        round_no: int,
        correct_outboxes: Dict[int, Outbox],
        byz_outboxes: Dict[int, Outbox],
    ) -> Tuple[Dict[int, Outbox], Dict[int, Outbox]]:
        rng = derive_rng(
            self.model.seed, "model", "partial-synchrony", round_no
        )
        new_correct = {
            sender: self._filter(rng, round_no, sender, outbox)
            for sender, outbox in correct_outboxes.items()
        }
        new_byz = {
            sender: self._filter(rng, round_no, sender, outbox)
            for sender, outbox in byz_outboxes.items()
        }
        for sender, link, message in self._pending.pop(round_no, ()):
            target = new_byz if sender in self._byz else new_correct
            outbox = target.get(sender)
            if outbox is None:
                outbox = target[sender] = {}
            outbox.setdefault(link, []).append(message)
            self.report.delivered_late += 1
        return new_correct, new_byz

    def _filter(
        self, rng, round_no: int, sender: int, outbox: Outbox
    ) -> Outbox:
        n = self._n
        rate = self.model.omission_rate
        max_delay = self.model.max_delay
        report = self.report
        result: Outbox = {}
        for link, messages in outbox.items():
            if link == BROADCAST:
                labels = range(1, n + 1)
            elif 1 <= link <= n:
                labels = (link,)
            else:
                result[link] = list(messages)
                continue
            for label in labels:
                bucket = result.setdefault(label, [])
                if label == n:  # self-loop: local delivery, never lossy
                    bucket.extend(messages)
                    continue
                for message in messages:
                    if rng.random() >= rate:
                        bucket.append(message)
                        continue
                    if max_delay == 0:
                        report.omitted += 1
                        continue
                    delay = rng.randint(1, max_delay)
                    report.delayed += 1
                    self._pending.setdefault(
                        round_no + delay, []
                    ).append((sender, label, message))
        return result
