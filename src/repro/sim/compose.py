"""Protocol composition: phases, sequencing, and sub-protocol multiplexing.

Every algorithm in this repository is secretly a composition — Alg. 1 is
id-selection followed by iterated approximate agreement, the constant-time
variant is Alg. 1 with a truncated voting schedule, the translated baseline
is id-selection plus a bit-split engine, and the consensus baseline runs
``N`` EIG broadcast instances side by side. This module makes that structure
first-class instead of leaving each protocol to hand-roll its own round
bookkeeping:

* :class:`Phase` — a protocol fragment with *local* step numbering
  (``messages_for_step`` / ``deliver_step``) and a typed completion result.
* :class:`PhaseSequence` — a :class:`~repro.sim.process.Process` that chains
  phases back to back, translating global round numbers into each phase's
  local steps (round-offset virtualization) and threading each phase's
  result into the construction of the next.
* :class:`Multiplexer` — a :class:`~repro.sim.process.Process` that runs
  ``K`` independent sub-protocol instances concurrently behind one process
  by wrapping their traffic in tagged :class:`EnvelopeMessage` frames.

Composed workloads (parallel renaming instances, renaming-then-consensus
pipelines) become one-liners: build the pieces, hand them to a sequence or a
multiplexer, and the runner never knows the difference.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from random import Random
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from .messages import KIND_BITS, Message
from .process import Inbox, Outbox, Process, ProcessContext


class Phase(ABC):
    """A protocol fragment occupying :attr:`steps` consecutive rounds.

    A phase speaks *local* step numbers ``1..steps``; it never sees the
    global round counter. Drive it with ``messages_for_step(s)`` /
    ``deliver_step(s, inbox)`` for ``s = 1..steps``; after the final
    ``deliver_step`` the phase's :meth:`result` is read once. Phases that
    need to trace events or know their global position receive a
    :class:`PhaseContext` at construction time (by convention the first
    builder argument).
    """

    #: Number of synchronous steps this phase occupies. Usually a class
    #: attribute; phases with a configurable schedule set it per instance.
    steps: int

    @abstractmethod
    def messages_for_step(self, step: int) -> List[Message]:
        """Messages to broadcast at the start of local step ``step``."""

    @abstractmethod
    def deliver_step(self, step: int, inbox: Inbox) -> None:
        """Consume the inbox of local step ``step``."""

    def result(self) -> object:
        """Typed completion result, read once after the final step.

        The final phase of a :class:`PhaseSequence` must return a
        non-``None`` result (or the sequence must map it through ``finish``)
        — a ``None`` output would leave the process marked unfinished.
        """
        return None


@dataclass(frozen=True)
class PhaseContext:
    """A phase's window onto its process environment.

    Wraps the owning process's :class:`~repro.sim.process.ProcessContext`
    together with the number of global rounds that elapsed before the phase
    started, so phases can log trace events under the *global* round number
    while speaking local steps internally.
    """

    process: ProcessContext
    offset: int

    @property
    def n(self) -> int:
        return self.process.n

    @property
    def t(self) -> int:
        return self.process.t

    @property
    def my_id(self) -> int:
        return self.process.my_id

    @property
    def rng(self) -> Random:
        return self.process.rng

    def global_round(self, step: int) -> int:
        """The global round number of local step ``step``."""
        return self.offset + step

    def log(self, step: int, event: str, detail: object = None) -> None:
        """Trace ``event`` under the global round of local step ``step``.

        ``step=0`` logs under the phase's entry round (the round whose
        delivery completed the *previous* phase) — the natural place for
        "phase initialised" events like Alg. 1's rank initialisation.
        """
        self.process.log(self.offset + step, event, detail)


#: Builds phase ``k`` from its context and phase ``k−1``'s result
#: (``None`` for the first phase).
PhaseBuilder = Callable[[PhaseContext, object], Phase]


class PhaseSequence(Process):
    """A process that runs a chain of phases back to back.

    Each builder is invoked exactly when its phase starts: the first at
    construction time, each subsequent one the moment the previous phase's
    final step has been delivered — with the previous phase's
    :meth:`Phase.result` as its second argument (result threading). Global
    rounds are translated to local steps automatically (round-offset
    virtualization), so a phase written for steps ``1..k`` composes
    unchanged at any position in any pipeline.

    ``finish`` maps the final phase's result to the process output
    (default: the result itself, which must then be non-``None``).
    """

    def __init__(
        self,
        ctx: ProcessContext,
        builders: Sequence[PhaseBuilder],
        finish: Optional[Callable[[object], object]] = None,
    ) -> None:
        super().__init__(ctx)
        if not builders:
            raise ValueError("a phase sequence needs at least one phase")
        self._builders = list(builders)
        self._finish = finish
        self._index = 0
        self._offset = 0
        #: Completion results of the phases finished so far, in order.
        self.results: List[object] = []
        self.phase: Phase = self._builders[0](PhaseContext(ctx, 0), None)

    # ------------------------------------------------------------------ rounds

    def send(self, round_no: int) -> Outbox:
        return self.broadcast(*self.phase.messages_for_step(round_no - self._offset))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        step = round_no - self._offset
        self.phase.deliver_step(step, inbox)
        if step >= self.phase.steps:
            self._advance(round_no)

    # ------------------------------------------------------------- composition

    def _advance(self, round_no: int) -> None:
        outcome = self.phase.result()
        self.results.append(outcome)
        self._index += 1
        if self._index < len(self._builders):
            self._offset = round_no
            self.phase = self._builders[self._index](
                PhaseContext(self.ctx, round_no), outcome
            )
        else:
            self.output_value = (
                outcome if self._finish is None else self._finish(outcome)
            )


@dataclass(frozen=True)
class EnvelopeMessage(Message):
    """A sub-protocol message wrapped with its instance tag.

    :class:`Multiplexer` traffic travels as envelopes so that ``K``
    independent instances can share one process's links without their
    messages interfering. The bit model charges the kind tag, ``rank_bits``
    for the instance tag (an instance index is bounded by the same
    small-integer budget as a rank), and the payload at its own model —
    making the multiplexing overhead explicit in E6-style accounting. The
    binary codec in :mod:`repro.wire` carries envelopes natively, so
    ``through_wire`` runs and real transports stay honest.
    """

    tag: int
    payload: Message

    def bit_size(self, id_bits: int = 64, rank_bits: int = 16) -> int:
        return KIND_BITS + rank_bits + self.payload.bit_size(
            id_bits=id_bits, rank_bits=rank_bits
        )


class Multiplexer(Process):
    """Run ``K`` independent sub-protocol instances behind one process.

    ``instances`` maps an integer tag to a :class:`Process`; each round the
    multiplexer collects every live instance's outbox, wraps each message in
    an :class:`EnvelopeMessage` carrying the instance tag, and merges the
    result onto the shared links. Incoming envelopes are unwrapped and
    routed to the instance named by their tag; raw (non-envelope) messages
    and unknown tags are Byzantine noise and are dropped. Once every
    instance has produced its output, ``finish`` maps the per-tag output
    dict to the process output (default: the dict itself).
    """

    def __init__(
        self,
        ctx: ProcessContext,
        instances: Mapping[int, Process],
        finish: Optional[Callable[[Dict[int, object]], object]] = None,
    ) -> None:
        super().__init__(ctx)
        if not instances:
            raise ValueError("a multiplexer needs at least one sub-protocol")
        self.instances: Dict[int, Process] = dict(instances)
        self._finish = finish

    # ------------------------------------------------------------------ rounds

    def send(self, round_no: int) -> Outbox:
        outbox: Outbox = {}
        for tag in sorted(self.instances):
            instance = self.instances[tag]
            if instance.done:
                continue
            for link, messages in instance.send(round_no).items():
                if messages:
                    outbox.setdefault(link, []).extend(
                        EnvelopeMessage(tag=tag, payload=message)
                        for message in messages
                    )
        return outbox

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        routed: Dict[int, Dict[int, List[Message]]] = {}
        for link, messages in inbox.items():
            for message in messages:
                if (
                    isinstance(message, EnvelopeMessage)
                    and message.tag in self.instances
                ):
                    routed.setdefault(message.tag, {}).setdefault(link, []).append(
                        message.payload
                    )
        empty: Inbox = {}
        for tag in sorted(self.instances):
            instance = self.instances[tag]
            if instance.done:
                continue
            links = routed.get(tag)
            sub_inbox: Inbox = (
                {link: tuple(messages) for link, messages in links.items()}
                if links
                else empty
            )
            instance.deliver(round_no, sub_inbox)
        if all(instance.done for instance in self.instances.values()):
            outputs = {
                tag: instance.output_value
                for tag, instance in self.instances.items()
            }
            self.output_value = (
                outputs if self._finish is None else self._finish(outputs)
            )
