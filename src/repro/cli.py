"""Command-line driver: run any algorithm × attack × (N, t) from a shell.

Examples::

    repro-renaming list
    repro-renaming run --algorithm alg1 --n 7 --t 2 --attack id-forging
    repro-renaming run --algorithm alg4 --n 11 --t 2 --attack selective-echo
    repro-renaming scenario saturation
    repro-renaming sweep --algorithms alg1 alg4 --sizes 7:2 11:2 --attacks silent noise
    repro-renaming inspect --algorithm alg1 --n 7 --t 2 --attack divergence
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from .adversary import adversary_names
from .analysis import (
    ALGORITHMS,
    CHAOS_PRESETS,
    CellBudget,
    ChaosCampaign,
    ChaosTask,
    RunJournal,
    SweepConfig,
    SweepExecutor,
    chaos_grid,
    format_table,
    group_by,
    list_runs,
    render_timeline,
    run_experiment,
    scan_journal,
    summarize_views,
)
from .analysis.store import DEFAULT_LEASE_S
from .sim import (
    ConfigurationError,
    DEFAULT_ENGINE,
    JournalError,
    RunInterrupted,
    StoreError,
    MODEL_KINDS,
    SystemModel,
    engine_names,
    parse_model,
)
from .workloads import get_scenario, make_ids, scenario_names, workload_names

# Exit-code contract (documented in docs/robustness.md, asserted in
# tests/test_cli.py). Scripts and CI branch on these — append-only.
EXIT_OK = 0            # ran to completion, every checked property held
EXIT_VIOLATION = 2     # ran to completion, a verified property was violated
EXIT_INFRA = 3         # infra/config failure: bad config, unhealthy
#                        campaign (quarantine/silent success), unusable
#                        journal — the *measurement* never happened
EXIT_INTERRUPTED = 4   # preempted (SIGINT/SIGTERM) but drained and
#                        journaled: re-run `runs resume` to continue

#: Default directory for run journals (``--journal``/``--runs-dir``).
DEFAULT_RUNS_DIR = ".repro-runs"


def _parse_workers(text: str) -> int:
    try:
        workers = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer, got {text!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 1, got {workers}"
        )
    return workers


def _parse_size(text: str) -> Tuple[int, int]:
    try:
        n_text, t_text = text.split(":")
        return int(n_text), int(t_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"sizes are N:T pairs like 7:2, got {text!r}"
        ) from None


def _parse_run_id(text: str) -> str:
    ok = text and all(c.isalnum() or c in "._-" for c in text)
    if not ok:
        raise argparse.ArgumentTypeError(
            f"run ids use letters, digits, '.', '_', '-'; got {text!r}"
        )
    return text


def _add_durability_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--journal", metavar="DIR", default=None,
        help="make the run durable: write a resumable write-ahead journal "
             "under DIR and execute under worker supervision (SIGINT/"
             "SIGTERM drain in-flight cells and exit resumable)",
    )
    command.add_argument(
        "--run-id", type=_parse_run_id, default=None, metavar="NAME",
        help="journal name under --journal DIR (default: derived from the "
             "config fingerprint)",
    )
    command.add_argument(
        "--cell-wall", type=float, default=None, metavar="S",
        help="per-cell wall-clock budget in seconds (supervised runs; a "
             "breach quarantines the cell and restarts the worker)",
    )
    command.add_argument(
        "--cell-rss", type=float, default=None, metavar="MB",
        help="per-cell worker RSS budget in MiB (supervised runs, Linux)",
    )


def _add_store_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--store", metavar="URL", default=None,
        help="run on the coordinator/worker fabric over a shared result "
             "store: a directory path (or dir:PATH) for the file backend, "
             "sqlite:PATH (or any .sqlite/.sqlite3/.db path) for the "
             "sqlite backend; mutually exclusive with --journal",
    )
    command.add_argument(
        "--coordinator-only", action="store_true",
        help="with --store: seed the store and stream results but start no "
             "workers — separately started 'repro-renaming worker --store "
             "URL' processes execute the cells",
    )


def _parse_model_flag(text: str) -> SystemModel:
    try:
        return parse_model(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_model_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--model",
        type=_parse_model_flag,
        default=None,
        metavar="SPEC",
        help="system model to run under: classic (the paper's model, the "
             "default), impersonation:k=K[,seed=S] (Okun-style forged-sender "
             "frames), or partial-synchrony:rate=P[,delay=D][,seed=S] "
             "(lossy rounds); for scenarios this overrides the scenario's "
             "own model",
    )


def _add_engine_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--engine", default=DEFAULT_ENGINE, choices=engine_names(),
        help="simulator round-loop implementation (results are identical; "
             "'reference' is the slow oracle the others are differentially "
             "tested against, 'vector' is the numpy-backed array engine, "
             "listed only when numpy is installed)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-renaming",
        description=(
            "Order-preserving Byzantine renaming (Denysyuk & Rodrigues, "
            "ICDCS 2013) — reproduction driver."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list algorithms, attacks, workloads, scenarios")

    run = commands.add_parser("run", help="execute one configuration")
    run.add_argument("--algorithm", required=True, choices=sorted(ALGORITHMS))
    run.add_argument("--n", type=int, required=True, help="number of processes")
    run.add_argument("--t", type=int, required=True, help="fault bound")
    run.add_argument("--attack", default="silent", choices=adversary_names())
    run.add_argument("--workload", default="uniform", choices=workload_names())
    run.add_argument("--seed", type=int, default=0)
    _add_model_flag(run)
    _add_engine_flag(run)

    scenario = commands.add_parser("scenario", help="execute a canned scenario")
    scenario.add_argument("name", choices=scenario_names())
    scenario.add_argument("--algorithm", default="alg1", choices=sorted(ALGORITHMS))
    scenario.add_argument("--seed", type=int, default=0)
    _add_model_flag(scenario)
    _add_engine_flag(scenario)

    commands.add_parser(
        "verify",
        help="condensed one-command check of every reproduced claim",
    )

    bounds = commands.add_parser(
        "bounds", help="print every closed-form bound for given (N, t) sizes"
    )
    bounds.add_argument("sizes", nargs="+", type=_parse_size, metavar="N:T")

    inspect = commands.add_parser(
        "inspect", help="run one configuration with tracing and show a timeline"
    )
    inspect.add_argument("--algorithm", required=True, choices=sorted(ALGORITHMS))
    inspect.add_argument("--n", type=int, required=True)
    inspect.add_argument("--t", type=int, required=True)
    inspect.add_argument("--attack", default="silent", choices=adversary_names())
    inspect.add_argument("--workload", default="uniform", choices=workload_names())
    inspect.add_argument("--seed", type=int, default=0)
    inspect.add_argument(
        "--save", metavar="PATH", default=None,
        help="archive the traced run as JSON for offline analysis",
    )
    _add_model_flag(inspect)
    _add_engine_flag(inspect)

    replay = commands.add_parser(
        "replay", help="re-render the timeline of an archived run"
    )
    replay.add_argument("path", help="JSON archive written by inspect --save")

    chaos = commands.add_parser(
        "chaos",
        help="run a crash-contained beyond-model fault-injection campaign",
    )
    chaos.add_argument("--algorithms", nargs="+", required=True,
                       choices=sorted(ALGORITHMS))
    chaos.add_argument("--sizes", nargs="+", type=_parse_size, required=True,
                       metavar="N:T")
    chaos.add_argument("--attacks", nargs="+", default=["silent"],
                       choices=adversary_names())
    chaos.add_argument("--seeds", nargs="+", type=int, default=[0])
    chaos.add_argument("--engines", nargs="+", default=[DEFAULT_ENGINE],
                       choices=engine_names())
    chaos.add_argument("--chaos-seeds", nargs="+", type=int, default=[0],
                       help="seeds for the fault plans (independent of run seeds)")
    chaos.add_argument("--drop", nargs="+", type=float, default=[],
                       metavar="P", help="per-link drop probabilities to try")
    chaos.add_argument("--duplicate", nargs="+", type=float, default=[],
                       metavar="P", help="per-link duplication probabilities to try")
    chaos.add_argument("--corrupt", nargs="+", type=float, default=[],
                       metavar="P", help="per-link payload-corruption probabilities")
    chaos.add_argument("--crash-extra", nargs="+", type=int, default=[],
                       metavar="K", help="extra correct-process send-crashes "
                       "(beyond the t budget) to try")
    chaos.add_argument("--crash-round", type=int, default=1,
                       help="round at which extra crashes engage")
    chaos.add_argument("--combine", action="store_true",
                       help="merge one value per fault axis into a single "
                       "combined plan (used by quarantine reproducers)")
    chaos.add_argument("--preset", choices=sorted(CHAOS_PRESETS), default=None,
                       help="named fault-axis bundle (overridden by explicit "
                       "fault flags)")
    chaos.add_argument("--no-clean", action="store_true",
                       help="skip the no-fault control cell per configuration")
    chaos.add_argument("--no-monitor", action="store_true",
                       help="disable the in-run safety monitor (post-hoc "
                       "property checks still run)")
    chaos.add_argument("--max-rounds", type=int, default=64,
                       help="hard round cap per run (chaos runs must never spin)")
    chaos.add_argument("--workload", default="uniform", choices=workload_names())
    chaos.add_argument(
        "--workers", type=_parse_workers, default=None, metavar="N",
        help="worker processes (default: one per CPU; 1 = serial in-process)",
    )
    chaos.add_argument("--timeout", type=float, default=120.0, metavar="S",
                       help="per-cycle hang timeout in seconds")
    chaos.add_argument("--json", metavar="PATH", default=None,
                       help="also write the full triage report as JSON to PATH")
    _add_durability_flags(chaos)
    _add_store_flags(chaos)

    sweep = commands.add_parser("sweep", help="run a configuration grid")
    sweep.add_argument("--algorithms", nargs="+", required=True, choices=sorted(ALGORITHMS))
    sweep.add_argument("--sizes", nargs="+", type=_parse_size, required=True,
                       metavar="N:T")
    sweep.add_argument("--attacks", nargs="+", default=["silent"],
                       choices=adversary_names())
    sweep.add_argument("--seeds", nargs="+", type=int, default=[0])
    sweep.add_argument("--workload", default="uniform", choices=workload_names())
    sweep.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write one CSV row per run to PATH",
    )
    sweep.add_argument(
        "--workers", type=_parse_workers, default=None, metavar="N",
        help="worker processes for the grid (default: one per CPU; 1 = "
             "serial in-process)",
    )
    sweep.add_argument(
        "--cache", metavar="DIR", default=None,
        help="reuse cached results from DIR; only changed configurations "
             "are executed",
    )
    _add_model_flag(sweep)
    _add_engine_flag(sweep)
    _add_durability_flags(sweep)
    _add_store_flags(sweep)

    worker = commands.add_parser(
        "worker",
        help="pull-based fabric worker: claim cell leases from a shared "
             "result store, execute them, push results back (start any "
             "number of these against one store)",
    )
    worker.add_argument(
        "--store", metavar="URL", required=True,
        help="the result store to pull from (same URL forms as sweep "
             "--store)",
    )
    worker.add_argument(
        "--worker-id", default=None, metavar="NAME",
        help="identity recorded on leases and events (default: host-pid)",
    )
    worker.add_argument(
        "--lease", type=float, default=DEFAULT_LEASE_S, metavar="S",
        help="cell lease duration in seconds (renewed at a third of this "
             "while executing; a dead worker's cells are reclaimed after "
             "one lease window)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="S",
        help="floor of the idle backoff between claim attempts (the sleep "
             "grows with jittered exponential backoff while nothing is "
             "claimable and resets on a successful claim)",
    )
    worker.add_argument(
        "--poll-cap", type=float, default=5.0, metavar="S",
        help="ceiling of the idle backoff between claim attempts",
    )
    worker.add_argument(
        "--wait-for-store", type=float, default=0.0, metavar="S",
        help="block up to S seconds for the coordinator to seed the store "
             "(default: require an already-seeded store)",
    )
    worker.add_argument(
        "--max-idle", type=float, default=None, metavar="S",
        help="exit after S seconds with no claimable cell while the store "
             "is incomplete (default: wait forever)",
    )
    worker.add_argument(
        "--cell-wall", type=float, default=None, metavar="S",
        help="per-cell wall-clock budget (cells run in disposable child "
             "processes; a breach SIGKILLs and quarantines the cell)",
    )
    worker.add_argument(
        "--cell-rss", type=float, default=None, metavar="MB",
        help="per-cell child RSS budget in MiB (Linux)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the renaming session daemon: accept concurrent sessions "
             "over TCP, run the selected algorithm per session, return "
             "names plus a validated property certificate",
    )
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    serve.add_argument(
        "--port", type=int, default=7341, metavar="PORT",
        help="listen port (0 picks a free port; see --port-file)",
    )
    serve.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound host:port to PATH once listening (handshake "
             "for scripts that start the daemon with --port 0)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=64, metavar="K",
        help="admission bound: additional connections get a typed "
             "ServerBusy frame instead of queueing silently",
    )
    serve.add_argument(
        "--session-deadline", type=float, default=5.0, metavar="S",
        help="per-session wall budget; expiry closes the quorum with the "
             "ids registered so far (or rejects an empty session)",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=2.0, metavar="S",
        help="per-read deadline: a client that stalls mid-frame gets a "
             "typed idle-timeout error (slow-loris defense)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=None, metavar="S",
        help="on SIGTERM/SIGINT, let in-flight sessions finish for up to "
             "S seconds before shedding them (default: session deadline "
             "+ 2s; a second signal sheds immediately)",
    )
    serve.add_argument(
        "--max-ids", type=int, default=128, metavar="K",
        help="cap on ids one session may register",
    )
    serve.add_argument(
        "--session-wall", type=float, default=None, metavar="S",
        help="per-session wall budget enforced in a disposable child "
             "process (breach -> typed wall-budget error)",
    )
    serve.add_argument(
        "--session-rss", type=float, default=None, metavar="MB",
        help="per-session child RSS budget in MiB (Linux)",
    )
    serve.add_argument(
        "--session-journal", default=None, metavar="PATH",
        help="durable session journal: tokened sessions are journaled "
             "(accepted -> completed/failed, fsync'd before the response) "
             "so a restarted daemon answers repeat submissions and "
             "queries from the journal — byte-identical, never re-run",
    )
    _add_engine_flag(serve)

    load = commands.add_parser(
        "load",
        help="drive concurrent sessions against a running daemon and "
             "report throughput + p50/p99 latency (every completed "
             "session is re-validated client-side)",
    )
    load.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    load.add_argument("--port", type=int, default=7341, metavar="PORT")
    load.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="read host:port from PATH (written by serve --port-file), "
             "overriding --host/--port",
    )
    load.add_argument("--sessions", type=int, default=100, metavar="K")
    load.add_argument(
        "--concurrency", type=int, default=32, metavar="K",
        help="sessions in flight at once",
    )
    load.add_argument(
        "--ids", type=int, default=8, metavar="N",
        help="original ids registered per session",
    )
    load.add_argument(
        "--algorithm", default="auto",
        help="algorithm requested per session (default: server auto-select)",
    )
    load.add_argument("--t", type=int, default=0, help="faulty slots per session")
    load.add_argument(
        "--attack", default="silent", choices=adversary_names(),
        help="adversary strategy when --t > 0",
    )
    load.add_argument(
        "--workload", default="uniform", choices=workload_names(),
        help="id workload per session",
    )
    load.add_argument("--seed", type=int, default=0)
    load.add_argument(
        "--timeout", type=float, default=30.0, metavar="S",
        help="client-side timeout per protocol step",
    )
    load.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the report to PATH",
    )
    load.add_argument(
        "--session-prefix", default="", metavar="PREFIX",
        help="stamp each session with idempotency token PREFIX-<index> "
             "(daemon must run with --session-journal); makes retries "
             "and crash recovery exactly-once",
    )
    load.add_argument(
        "--retries", type=int, default=0, metavar="K",
        help="transport-level retries per session through the shared "
             "jittered backoff (mid-session retries need --session-prefix)",
    )
    load.add_argument(
        "--busy-retries", type=int, default=8, metavar="K",
        help="ServerBusy responses absorbed per session by backoff before "
             "'busy' becomes the outcome (reported separately from errors)",
    )

    query = commands.add_parser(
        "query",
        help="ask a --session-journal daemon what happened to an "
             "idempotency token: completed (certificate replayed "
             "byte-identically), failed, in-flight, or unknown",
    )
    query.add_argument("session_id", metavar="TOKEN")
    query.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    query.add_argument("--port", type=int, default=7341, metavar="PORT")
    query.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="read host:port from PATH (written by serve --port-file), "
             "overriding --host/--port",
    )
    query.add_argument(
        "--timeout", type=float, default=30.0, metavar="S",
        help="client-side timeout per protocol step",
    )
    query.add_argument(
        "--retries", type=int, default=0, metavar="K",
        help="retries for transport-level failures (queries are read-only, "
             "always safe to retry)",
    )

    sessions = commands.add_parser(
        "sessions",
        help="read a session journal offline (doctor-style): list "
             "finished/failed/interrupted sessions, show a session's "
             "certificate or error",
    )
    sessions_commands = sessions.add_subparsers(
        dest="sessions_command", required=True
    )
    sessions_list = sessions_commands.add_parser(
        "list", help="list every token in a session journal"
    )
    sessions_list.add_argument("--journal", required=True, metavar="PATH",
                               help="session journal path (serve "
                                    "--session-journal)")
    sessions_show = sessions_commands.add_parser(
        "show", help="show one token's journaled certificate or error"
    )
    sessions_show.add_argument("session_id", metavar="TOKEN")
    sessions_show.add_argument("--journal", required=True, metavar="PATH")

    proxy = commands.add_parser(
        "proxy",
        help="seeded network-fault chaos proxy: forward client<->daemon "
             "traffic injecting resets, mid-frame truncation, byte "
             "corruption, stalls, and duplicate delivery",
    )
    proxy.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    proxy.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="listen port (0 picks a free port; see --port-file)",
    )
    proxy.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound host:port to PATH once listening",
    )
    proxy.add_argument(
        "--upstream", default=None, metavar="HOST:PORT",
        help="the daemon to forward to",
    )
    proxy.add_argument(
        "--upstream-file", default=None, metavar="PATH",
        help="read the daemon's host:port from PATH (serve --port-file)",
    )
    for kind, what in (
        ("reset", "abruptly reset the connection"),
        ("truncate", "forward part of a frame, then close"),
        ("corrupt", "flip one byte mid-stream"),
        ("stall", "stop forwarding for --stall-s seconds"),
        ("duplicate", "deliver one chunk twice"),
    ):
        proxy.add_argument(
            f"--{kind}", type=float, default=0.0, metavar="P",
            help=f"per-connection probability to {what}",
        )
    proxy.add_argument(
        "--stall-s", type=float, default=5.0, metavar="S",
        help="how long a stall stops forwarding",
    )
    proxy.add_argument(
        "--direction", default="both", choices=("up", "down", "both"),
        help="which half faults hit: client->server (up), server->client "
             "(down), or RNG-chosen per connection",
    )
    proxy.add_argument("--seed", type=int, default=0,
                       help="fault-schedule seed (deterministic per "
                            "connection index)")

    runs = commands.add_parser(
        "runs", help="manage durable (journaled) runs: list, resume, triage"
    )
    runs_commands = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_commands.add_parser(
        "list", help="list the journals in a runs directory"
    )
    runs_list.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                           metavar="DIR")

    runs_resume = runs_commands.add_parser(
        "resume",
        help="continue an interrupted run: replay its journal, verify the "
             "config fingerprint, skip finished cells, re-run the crash set",
    )
    runs_resume.add_argument("run_id", type=_parse_run_id)
    runs_resume.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                             metavar="DIR")
    runs_resume.add_argument(
        "--workers", type=_parse_workers, default=None, metavar="N",
        help="worker processes for the remaining cells (default: one per "
             "CPU; results are identical for any worker count)",
    )
    runs_resume.add_argument("--csv", metavar="PATH", default=None,
                             help="(sweep runs) write the final CSV to PATH")
    runs_resume.add_argument("--json", metavar="PATH", default=None,
                             help="(chaos runs) write the triage JSON to PATH")
    runs_resume.add_argument(
        "--cell-wall", type=float, default=None, metavar="S",
        help="override the journaled per-cell wall budget",
    )
    runs_resume.add_argument(
        "--cell-rss", type=float, default=None, metavar="MB",
        help="override the journaled per-cell RSS budget",
    )

    runs_doctor = runs_commands.add_parser(
        "doctor",
        help="triage a journal: crash set, quarantine reasons, budget "
             "kills, torn tail (reported and truncated safely)",
    )
    runs_doctor.add_argument("run_id", type=_parse_run_id, nargs="?",
                             default=None)
    runs_doctor.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                             metavar="DIR")
    runs_doctor.add_argument(
        "--store", metavar="URL", default=None,
        help="triage a fabric result store instead of a journal: lease "
             "health, reclaims, claim races, double executions",
    )
    runs_doctor.add_argument(
        "--assert-no-reexecution", action="store_true",
        help="exit with the infra code if any finished cell was "
             "re-executed (the resume-smoke and fabric-smoke CI invariant)",
    )
    return parser


def _print_record(record) -> None:
    report = record.report
    print(
        format_table(
            ["algorithm", "n", "t", "attack", "rounds", "messages", "kbits",
             "max name", "properties"],
            [[
                record.algorithm,
                record.n,
                record.t,
                record.attack,
                record.rounds,
                record.correct_messages,
                record.correct_bits // 1000,
                record.max_name,
                "OK" if report.ok else "; ".join(report.violations),
            ]],
        )
    )
    if report.model is not None:
        injected = ", ".join(
            f"{kind}={count}" for kind, count in sorted(report.injected.items())
        )
        print(f"\nmodel {report.model}: injected {injected or 'nothing'}")
    print("\nnew names (original -> new):")
    for original, name in sorted(report.names.items()):
        print(f"  {original:>8} -> {name}")


def cmd_list() -> int:
    print("algorithms:", ", ".join(sorted(ALGORITHMS)))
    print("attacks:   ", ", ".join(adversary_names()))
    print("workloads: ", ", ".join(workload_names()))
    print("scenarios: ", ", ".join(scenario_names()))
    print("models:    ", ", ".join(MODEL_KINDS))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    ids = make_ids(args.workload, args.n, seed=args.seed)
    record = run_experiment(
        args.algorithm, args.n, args.t, ids, attack=args.attack, seed=args.seed,
        model=args.model, engine=args.engine,
    )
    _print_record(record)
    return EXIT_OK if record.report.ok_without_order() else EXIT_VIOLATION


def cmd_scenario(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.name)
    print(f"{scenario.name}: {scenario.description}")
    model = args.model if args.model is not None else parse_model(scenario.model)
    if not model.is_classic:
        print(f"model: {model.describe()}")
    ids = make_ids(scenario.workload, scenario.n, seed=args.seed)
    record = run_experiment(
        args.algorithm,
        scenario.n,
        scenario.t,
        ids,
        attack=scenario.attack,
        seed=args.seed,
        model=model,
        engine=args.engine,
    )
    _print_record(record)
    return EXIT_OK if record.report.ok_without_order() else EXIT_VIOLATION


def cmd_verify() -> int:
    from .analysis import verify_reproduction

    results = verify_reproduction()
    for claim in results:
        print(claim.line())
    failed = [claim for claim in results if not claim.passed]
    print(
        f"\n{len(results) - len(failed)}/{len(results)} claims verified"
        + ("" if not failed else " — REPRODUCTION BROKEN")
    )
    return EXIT_VIOLATION if failed else EXIT_OK


def cmd_bounds(args: argparse.Namespace) -> int:
    from .core import SystemParams

    rows = []
    for n, t in args.sizes:
        params = SystemParams(n, t)
        regimes = []
        if params.tolerates_byzantine:
            regimes.append("N>3t")
        if params.in_constant_time_regime:
            regimes.append("N>t^2+2t")
        if params.in_fast_regime:
            regimes.append("N>2t^2+t")
        rows.append([
            n,
            t,
            " ".join(regimes) or "none",
            params.total_rounds if params.tolerates_byzantine else "-",
            params.namespace_bound if params.tolerates_byzantine else "-",
            params.accepted_bound if n > 2 * t else "-",
            f"{params.sigma}/{params.realized_sigma}" if t else "-",
            str(params.delta),
        ])
    print(
        format_table(
            ["n", "t", "regimes", "alg1 rounds", "namespace", "|accepted| bound",
             "sigma paper/real", "delta"],
            rows,
        )
    )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    ids = make_ids(args.workload, args.n, seed=args.seed)
    record = run_experiment(
        args.algorithm,
        args.n,
        args.t,
        ids,
        attack=args.attack,
        seed=args.seed,
        collect_trace=True,
        model=args.model,
        engine=args.engine,
    )
    print(render_timeline(record.result))
    views = summarize_views(record.result)
    if views is not None:
        print("\naccepted-set views:\n" + views)
    report = record.report
    print(f"\nproperties: {'OK' if report.ok else '; '.join(report.violations)}")
    if args.save is not None:
        from .analysis import dump_run

        path = dump_run(record.result, args.save)
        print(f"run archived to {path}")
    return EXIT_OK if report.ok_without_order() else EXIT_VIOLATION


def cmd_replay(args: argparse.Namespace) -> int:
    from .analysis import load_run, summarize_views

    view = load_run(args.path).as_result_view()
    print(render_timeline(view))
    views = summarize_views(view)
    if views is not None:
        print("\naccepted-set views:\n" + views)
    return 0


def _budget_from(args, fallback: Optional[dict] = None) -> Optional[CellBudget]:
    """A :class:`CellBudget` from CLI flags, else journaled defaults."""
    fallback = fallback or {}
    wall = args.cell_wall if args.cell_wall is not None else fallback.get("wall_s")
    rss = args.cell_rss if args.cell_rss is not None else fallback.get("rss_mb")
    if wall is None and rss is None:
        return None
    return CellBudget(wall_s=wall, rss_mb=rss)


def _journal_path(runs_dir: str, run_id: str) -> Path:
    return Path(runs_dir) / f"{run_id}.jsonl"


def _resume_hint(runs_dir: str, run_id: str) -> str:
    return (
        f"interrupted — everything completed so far is journaled; continue "
        f"with:\n  repro-renaming runs resume {run_id} --runs-dir {runs_dir}"
    )


def _finish_chaos(report, json_path: Optional[str]) -> int:
    print(report.render())
    if json_path is not None:
        import json

        from .analysis import atomic_write_text

        path = atomic_write_text(
            json_path, json.dumps(report.to_json(), indent=2)
        )
        print(f"\ntriage report written to {path}")
    return EXIT_OK if report.ok else EXIT_INFRA


def _store_flags_error(args) -> Optional[str]:
    """Validate the --store/--journal/--coordinator-only combination."""
    if args.store is not None and args.journal is not None:
        return (
            "--journal and --store are mutually exclusive: the store "
            "fabric carries its own durability"
        )
    if args.coordinator_only and args.store is None:
        return "--coordinator-only requires --store"
    return None


def cmd_chaos(args: argparse.Namespace) -> int:
    fault_axes = {
        "drop": tuple(args.drop),
        "duplicate": tuple(args.duplicate),
        "corrupt": tuple(args.corrupt),
        "extra_crashes": tuple(args.crash_extra),
    }
    if args.preset is not None and not any(fault_axes.values()):
        fault_axes = {
            axis: tuple(values)
            for axis, values in CHAOS_PRESETS[args.preset].items()
        }
    tasks = chaos_grid(
        args.algorithms,
        args.sizes,
        attacks=args.attacks,
        seeds=args.seeds,
        engines=args.engines,
        chaos_seeds=args.chaos_seeds,
        crash_round=args.crash_round,
        combine=args.combine,
        include_clean=not args.no_clean,
        workload=args.workload,
        max_rounds=args.max_rounds,
        monitor=not args.no_monitor,
        **fault_axes,
    )
    if not tasks:
        print("error: empty campaign grid", file=sys.stderr)
        return EXIT_INFRA
    flag_error = _store_flags_error(args)
    if flag_error is not None:
        print(f"error: {flag_error}", file=sys.stderr)
        return EXIT_INFRA
    campaign = ChaosCampaign(workers=args.workers, timeout_s=args.timeout)
    if args.store is not None:
        fingerprint = ChaosCampaign.fingerprint(tasks)
        run_id = args.run_id or f"chaos-{fingerprint[:10]}"
        print(f"fabric run {run_id!r} on store {args.store}")
        report = campaign.run(
            tasks, store=args.store, budget=_budget_from(args),
            coordinator_only=args.coordinator_only, run_id=run_id,
        )
        return _finish_chaos(report, args.json)
    journal = None
    if args.journal is not None:
        fingerprint = ChaosCampaign.fingerprint(tasks)
        run_id = args.run_id or f"chaos-{fingerprint[:10]}"
        budget = _budget_from(args)
        journal = RunJournal.create(
            _journal_path(args.journal, run_id),
            kind="chaos",
            run_id=run_id,
            config={
                "tasks": [task.to_dict() for task in tasks],
                "timeout_s": args.timeout,
                "budget": {
                    "wall_s": budget.wall_s if budget else None,
                    "rss_mb": budget.rss_mb if budget else None,
                },
            },
            fingerprint=fingerprint,
            cells=len(tasks),
        )
        print(f"journaling to {journal.path} (run id: {run_id})")
    try:
        report = campaign.run(
            tasks, journal=journal, budget=_budget_from(args)
        )
    except RunInterrupted as exc:
        print(f"\n{exc}", file=sys.stderr)
        print(_resume_hint(args.journal, journal.state.run_id),
              file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        if journal is not None:
            journal.close()
    return _finish_chaos(report, args.json)


def _finish_sweep(records, executor, csv_path: Optional[str]) -> int:
    rows = []
    for (algorithm, n, t, attack), group in group_by(
        records, "algorithm", "n", "t", "attack"
    ).items():
        rows.append([
            algorithm,
            n,
            t,
            attack,
            max(r.rounds for r in group),
            max(r.max_name for r in group),
            sum(1 for r in group if r.report.ok_without_order()),
            len(group),
        ])
    print(
        format_table(
            ["algorithm", "n", "t", "attack", "rounds", "max name", "ok", "runs"],
            rows,
        )
    )
    stats = executor.stats
    restored = f", {stats.restored} restored" if stats.restored else ""
    print(
        f"\n{len(records)} runs ({stats.executed} executed, "
        f"{stats.from_cache} cached{restored}) in {stats.elapsed_s:.2f}s "
        f"on {executor.workers} worker(s)"
    )
    if csv_path is not None:
        from .analysis import export_csv

        path = export_csv(records, csv_path)
        print(f"{len(records)} rows written to {path}")
    bad = [r for r in records if not r.report.ok_without_order()]
    return EXIT_VIOLATION if bad else EXIT_OK


def _sweep_config_dict(config: SweepConfig) -> dict:
    payload = {
        "algorithms": list(config.algorithms),
        "sizes": [list(size) for size in config.sizes],
        "attacks": list(config.attacks),
        "seeds": list(config.seeds),
        "workload": config.workload,
        "collect_trace": config.collect_trace,
        "max_rounds": config.max_rounds,
        "engine": config.engine,
    }
    if config.model is not None:
        payload["model"] = config.model.to_dict()
    return payload


def _sweep_config_from(payload: dict) -> SweepConfig:
    model = payload.get("model")
    return SweepConfig(
        algorithms=payload["algorithms"],
        sizes=[tuple(size) for size in payload["sizes"]],
        attacks=payload["attacks"],
        seeds=payload["seeds"],
        workload=payload["workload"],
        collect_trace=payload["collect_trace"],
        max_rounds=payload["max_rounds"],
        engine=payload["engine"],
        model=None if model is None else SystemModel.from_dict(model),
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    config = SweepConfig(
        algorithms=args.algorithms,
        sizes=args.sizes,
        attacks=args.attacks,
        seeds=args.seeds,
        workload=args.workload,
        engine=args.engine,
        model=args.model,
    )
    flag_error = _store_flags_error(args)
    if flag_error is not None:
        print(f"error: {flag_error}", file=sys.stderr)
        return EXIT_INFRA
    executor = SweepExecutor(workers=args.workers, cache=args.cache)
    if args.store is not None:
        tasks = SweepExecutor.tasks_for(config)
        fingerprint = SweepExecutor.fingerprint(tasks)
        run_id = args.run_id or f"sweep-{fingerprint[:10]}"
        print(f"fabric run {run_id!r} on store {args.store}")
        records = executor.run(
            config, store=args.store, budget=_budget_from(args),
            coordinator_only=args.coordinator_only, run_id=run_id,
        )
        return _finish_sweep(records, executor, args.csv)
    journal = None
    if args.journal is not None:
        tasks = SweepExecutor.tasks_for(config)
        fingerprint = SweepExecutor.fingerprint(tasks)
        run_id = args.run_id or f"sweep-{fingerprint[:10]}"
        budget = _budget_from(args)
        journal = RunJournal.create(
            _journal_path(args.journal, run_id),
            kind="sweep",
            run_id=run_id,
            config={
                "sweep": _sweep_config_dict(config),
                "cache": args.cache,
                "budget": {
                    "wall_s": budget.wall_s if budget else None,
                    "rss_mb": budget.rss_mb if budget else None,
                },
            },
            fingerprint=fingerprint,
            cells=len(tasks),
        )
        print(f"journaling to {journal.path} (run id: {run_id})")
    try:
        records = executor.run(
            config, journal=journal, budget=_budget_from(args)
        )
    except RunInterrupted as exc:
        print(f"\n{exc}", file=sys.stderr)
        print(_resume_hint(args.journal, journal.state.run_id),
              file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        if journal is not None:
            journal.close()
    return _finish_sweep(records, executor, args.csv)


def cmd_worker(args: argparse.Namespace) -> int:
    import signal

    from .analysis import Worker

    worker = Worker(
        args.store,
        worker_id=args.worker_id,
        budget=_budget_from(args),
        lease_s=args.lease,
        poll_s=args.poll,
        poll_cap_s=args.poll_cap,
        wait_store_s=args.wait_for_store,
        max_idle_s=args.max_idle,
    )

    def _drain(signum, frame):  # noqa: ARG001 — signal handler signature
        worker.stop()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    stats = worker.run()
    print(
        f"worker {stats.worker_id} ({stats.kind}): {stats.claimed} claimed, "
        f"{stats.completed} completed, {stats.failed} failed, "
        f"{stats.retried} retried, {stats.budget_kills} budget-killed, "
        f"{stats.lease_lost} lease(s) lost"
    )
    return EXIT_OK


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .analysis import atomic_write_text
    from .service.server import RenamingService

    budget = None
    if args.session_wall is not None or args.session_rss is not None:
        budget = CellBudget(wall_s=args.session_wall, rss_mb=args.session_rss)
    journal = None
    if args.session_journal is not None:
        from .service.journal import SessionJournal

        journal = SessionJournal.open_or_create(args.session_journal)
        known = len(journal.state.sessions)
        in_flight = len(journal.state.in_flight())
        print(
            f"serve: session journal {args.session_journal} — {known} "
            f"token(s) known, {in_flight} in flight at the last crash",
            flush=True,
        )
    service = RenamingService(
        args.host,
        args.port,
        max_sessions=args.max_sessions,
        session_deadline_s=args.session_deadline,
        idle_timeout_s=args.idle_timeout,
        drain_grace_s=args.drain_grace,
        max_ids=args.max_ids,
        budget=budget,
        engine=args.engine,
        journal=journal,
    )

    async def _serve() -> int:
        await service.start()
        host, port = service.bound_address
        print(f"serve: listening on {host}:{port}", flush=True)
        if args.port_file is not None:
            atomic_write_text(args.port_file, f"{host}:{port}\n")
        return await service.serve_forever()

    code = asyncio.run(_serve())
    stats = service.stats
    print(
        f"serve: {stats.admitted} admitted, {stats.completed} completed, "
        f"{stats.violations} violation(s), {stats.rejected} rejected, "
        f"{stats.busy} busy, {stats.disconnected} disconnected, "
        f"{stats.shed} shed, {stats.infra} infra, "
        f"{stats.replayed} replayed, {stats.queries} queried"
    )
    return code


def _service_address(args: argparse.Namespace) -> Tuple[str, int]:
    if args.port_file is not None:
        text = Path(args.port_file).read_text().strip()
        host, _, port = text.rpartition(":")
        return host, int(port)
    return args.host, args.port


def cmd_load(args: argparse.Namespace) -> int:
    import asyncio

    from .service.load import run_load

    host, port = _service_address(args)
    report = asyncio.run(
        run_load(
            host,
            port,
            sessions=args.sessions,
            concurrency=args.concurrency,
            ids_per_session=args.ids,
            algorithm=args.algorithm,
            t=args.t,
            attack=args.attack,
            seed=args.seed,
            timeout_s=args.timeout,
            workload=args.workload,
            session_prefix=args.session_prefix,
            retries=args.retries,
            busy_retries=args.busy_retries,
        )
    )
    text = report.as_text()
    print(text)
    for failure in report.failures:
        print(f"  {failure}", file=sys.stderr)
    if args.report is not None:
        from .analysis import atomic_write_text

        atomic_write_text(args.report, text + "\n")
    return report.exit_code()


def cmd_query(args: argparse.Namespace) -> int:
    """Exit codes mirror the run-command contract: 0 = journaled completed
    with an ok certificate, 2 = journaled failure (or a not-ok
    certificate), 3 = unknown token or transport failure, 4 = in flight."""
    import asyncio

    from .service.load import run_query_with_retry

    host, port = _service_address(args)
    outcome = asyncio.run(
        run_query_with_retry(
            host, port, args.session_id,
            retries=args.retries, timeout_s=args.timeout,
        )
    )
    token = args.session_id
    if outcome.status == "completed":
        certificate = outcome.certificate
        verdict = "ok" if certificate is not None and certificate.ok else "NOT OK"
        print(
            f"{token}: completed — {outcome.algorithm}, "
            f"{outcome.rounds} round(s), certificate {verdict}"
        )
        for original, name in outcome.entries:
            print(f"  {original} -> {name}")
        if certificate is not None and not certificate.ok:
            for violation in certificate.violations:
                print(f"  violation: {violation}", file=sys.stderr)
            return EXIT_VIOLATION
        return EXIT_OK
    if outcome.status == "failed":
        print(f"{token}: failed — {outcome.code}: {outcome.detail}")
        return EXIT_VIOLATION
    if outcome.status == "in-flight":
        print(f"{token}: in flight — executing now, or interrupted by a "
              f"crash and awaiting the client's retry")
        return EXIT_INTERRUPTED
    if outcome.status == "unknown":
        print(f"{token}: unknown — the journal has never accepted this token")
        return EXIT_INFRA
    detail = f" ({outcome.detail})" if outcome.detail else ""
    code = f" [{outcome.code}]" if outcome.code else ""
    print(f"error: query {outcome.status}{code}{detail}", file=sys.stderr)
    return EXIT_INFRA


def _session_result_column(record) -> str:
    if record.state == "completed":
        return "certificate ok" if record.ok else "certificate NOT OK"
    if record.state == "failed":
        return record.code
    retried = f", retried x{record.accepted - 1}" if record.accepted > 1 else ""
    return f"interrupted{retried}" if record.accepted else "?"


def cmd_sessions(args: argparse.Namespace) -> int:
    from .service.journal import scan_session_journal

    path = Path(args.journal)
    state = scan_session_journal(path)
    if state.header is None:
        print(f"error: session journal {path} has no header record",
              file=sys.stderr)
        return EXIT_INFRA
    if state.torn:
        raw = path.read_bytes()
        torn_bytes = len(raw) - state.good_bytes
        with open(path, "r+b") as handle:
            handle.truncate(state.good_bytes)
        print(
            f"torn tail: {torn_bytes} byte(s) cut mid-append by a crash — "
            f"truncated (by fsync ordering no client was ever answered "
            f"from them)"
        )
    if args.sessions_command == "list":
        if not state.sessions:
            print(f"session journal {path}: no sessions journaled")
            return EXIT_OK
        rows = []
        for record in state.sessions.values():
            request = record.request
            rows.append([
                record.session_id,
                record.state if record.state != "in-flight" else "interrupted",
                request.get("algorithm", "?"),
                len(request.get("ids", [])) or "?",
                record.accepted,
                _session_result_column(record),
            ])
        print(format_table(
            ["token", "state", "algorithm", "ids", "accepted", "result"],
            rows,
        ))
        return EXIT_OK
    # show
    record = state.sessions.get(args.session_id)
    if record is None:
        print(f"error: token {args.session_id!r} not in {path}",
              file=sys.stderr)
        return EXIT_INFRA
    request = record.request
    print(f"token {record.session_id!r} in {path}")
    print(f"  state:       "
          f"{record.state if record.state != 'in-flight' else 'interrupted'}")
    print(f"  accepted:    {record.accepted} time(s)")
    print(f"  fingerprint: {record.fingerprint[:16]}…")
    if request:
        print(
            f"  request:     algorithm={request.get('algorithm')} "
            f"t={request.get('t')} attack={request.get('attack')} "
            f"seed={request.get('seed')} ids={request.get('ids')}"
        )
    if record.state == "completed":
        from .service.frames import FrameDecoder

        decoder = FrameDecoder()
        names, = decoder.feed(bytes.fromhex(record.names_hex))
        certificate, = decoder.feed(bytes.fromhex(record.certificate_hex))
        print(
            f"  result:      {names.algorithm}, {names.rounds} round(s), "
            f"namespace {certificate.namespace}, certificate "
            f"{'ok' if certificate.ok else 'NOT OK'}"
        )
        for original, name in names.entries:
            print(f"    {original} -> {name}")
        for violation in certificate.violations:
            print(f"    violation: {violation}")
        return EXIT_OK if certificate.ok else EXIT_VIOLATION
    if record.state == "failed":
        print(f"  error:       {record.code}: {record.detail}")
        if record.trace_pointer >= 0:
            print(f"  trace:       round {record.trace_pointer}")
        return EXIT_VIOLATION
    print(
        "  note:        accepted but never finished — in flight when the "
        "daemon died; a client retry with this token re-admits it "
        "exactly once"
    )
    return EXIT_INTERRUPTED


def cmd_proxy(args: argparse.Namespace) -> int:
    import asyncio

    from .analysis import atomic_write_text
    from .service.proxy import ChaosProxy, ProxyFaults

    if (args.upstream is None) == (args.upstream_file is None):
        print("error: proxy needs exactly one of --upstream or "
              "--upstream-file", file=sys.stderr)
        return EXIT_INFRA
    if args.upstream_file is not None:
        text = Path(args.upstream_file).read_text().strip()
    else:
        text = args.upstream
    upstream_host, _, upstream_port = text.rpartition(":")
    if not upstream_host or not upstream_port.isdigit():
        print(f"error: bad upstream address {text!r} (expected host:port)",
              file=sys.stderr)
        return EXIT_INFRA
    faults = ProxyFaults(
        reset=args.reset,
        truncate=args.truncate,
        corrupt=args.corrupt,
        stall=args.stall,
        duplicate=args.duplicate,
        stall_s=args.stall_s,
        direction=args.direction,
    )
    proxy = ChaosProxy(
        upstream_host,
        int(upstream_port),
        host=args.host,
        port=args.port,
        faults=faults,
        seed=args.seed,
    )

    async def _run() -> None:
        import signal as signal_module

        await proxy.start()
        host, port = proxy.bound_address
        print(
            f"proxy: {host}:{port} -> {upstream_host}:{upstream_port} "
            f"(seed {args.seed})",
            flush=True,
        )
        if args.port_file is not None:
            atomic_write_text(args.port_file, f"{host}:{port}\n")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        try:
            await stop.wait()
        finally:
            await proxy.close()

    asyncio.run(_run())
    stats = proxy.stats
    print(
        f"proxy: {stats.connections} connection(s), "
        f"{stats.forwarded_bytes} byte(s) forwarded, "
        f"{stats.resets} reset, {stats.truncations} truncated, "
        f"{stats.corruptions} corrupted, {stats.stalls} stalled, "
        f"{stats.duplicates} duplicated, "
        f"{stats.upstream_failures} upstream failure(s)"
    )
    return EXIT_OK


def cmd_runs_list(args: argparse.Namespace) -> int:
    states = list_runs(args.runs_dir)
    if not states:
        print(f"no journals under {args.runs_dir}")
        return EXIT_OK
    rows = []
    for state in states:
        if state.header is None:
            rows.append([state.path.stem, "?", "?", "?", "?", "?", "?",
                         "damaged"])
            continue
        in_flight = len(state.crash_set())
        if state.complete:
            status = "complete"
        elif state.interrupted:
            status = "interrupted"
        else:
            status = "in-progress"
        if state.torn:
            status += " +torn-tail"
        rows.append([
            state.run_id,
            state.kind,
            state.cells,
            len(state.finished),
            len(state.failed),
            len(state.quarantined),
            in_flight,
            status,
        ])
    print(
        format_table(
            ["run id", "kind", "cells", "finished", "failed", "quarantined",
             "in-flight", "status"],
            rows,
        )
    )
    return EXIT_OK


def cmd_runs_resume(args: argparse.Namespace) -> int:
    path = _journal_path(args.runs_dir, args.run_id)
    journal = RunJournal.open(path)
    header = journal.state.header
    config_payload = header.get("config", {})
    budget = _budget_from(args, fallback=config_payload.get("budget"))
    remaining = len(journal.state.remaining())
    print(
        f"resuming {header['kind']} run {journal.state.run_id!r}: "
        f"{journal.state.cells - remaining}/{journal.state.cells} cells "
        f"already terminal, {remaining} to execute"
    )
    try:
        if header["kind"] == "sweep":
            config = _sweep_config_from(config_payload["sweep"])
            executor = SweepExecutor(
                workers=args.workers, cache=config_payload.get("cache")
            )
            records = executor.run(config, journal=journal, budget=budget)
            return _finish_sweep(records, executor, args.csv)
        if header["kind"] == "chaos":
            tasks = [ChaosTask.from_dict(d) for d in config_payload["tasks"]]
            campaign = ChaosCampaign(
                workers=args.workers,
                timeout_s=config_payload.get("timeout_s", 120.0),
            )
            report = campaign.run(tasks, journal=journal, budget=budget)
            return _finish_chaos(report, args.json)
        raise JournalError(
            f"journal {path} has unknown run kind {header['kind']!r}"
        )
    except RunInterrupted as exc:
        print(f"\n{exc}", file=sys.stderr)
        print(_resume_hint(args.runs_dir, args.run_id), file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        journal.close()


def _store_doctor_report(args: argparse.Namespace) -> int:
    from .analysis import open_store, store_doctor

    store = open_store(args.store)
    report = store_doctor(store)
    header = report["header"]
    if header is None:
        print(f"error: store {store.url} is not seeded", file=sys.stderr)
        return EXIT_INFRA
    counts = report["counts"]
    print(f"run {header['run_id']!r} ({header['kind']}), store {store.url}")
    print(f"  fingerprint: {header.get('fingerprint', '?')[:16]}…")
    print(
        f"  cells:       {counts['cells']} total — {counts['finished']} "
        f"finished, {counts['failed']} failed, {counts['quarantined']} "
        f"quarantined, {counts['leased']} leased, {counts['pending']} "
        f"pending"
    )
    if report["expired_leases"]:
        print(
            f"  expired:     leases on cells {report['expired_leases']} "
            f"(dead workers — reclaimed on the next claim or policing pass)"
        )
    if report["orphaned_claims"]:
        print(
            f"  orphaned:    leases on terminal cells "
            f"{report['orphaned_claims']} (worker died after its result "
            f"landed; harmless)"
        )
    if report["reclaims"]:
        print(
            f"  reclaims:    {report['reclaims']} lease takeover(s) on "
            f"cells {report['reclaimed_cells']}"
        )
    if report["double_claims"]:
        print(
            f"  claim races: {report['double_claims']} lost race(s) "
            f"(no cell was executed twice for these)"
        )
    if report["stale_results"]:
        print(
            f"  stale:       {report['stale_results']} result(s) refused "
            f"from taken-over workers (first durable result won)"
        )
    if report["exhausted_cells"]:
        print(
            f"  exhausted:   cells {report['exhausted_cells']} recorded as "
            f"failed after repeated lease expiry"
        )
    if report["torn_results"]:
        print(
            f"  torn:        corrupt terminal records on cells "
            f"{report['torn_results']} were dropped and re-executed"
        )
    if report["double_executions"]:
        print(
            f"  REEXECUTED:  cells {report['double_executions']} produced "
            f"a second terminal result — the exactly-once discipline was "
            f"violated"
        )
        if args.assert_no_reexecution:
            return EXIT_INFRA
    elif args.assert_no_reexecution:
        print(
            "  reexecution: none — every cell produced exactly one "
            "terminal result"
        )
    print(
        "  status:      "
        + ("complete" if report["complete"] else "incomplete")
    )
    return EXIT_OK


def cmd_runs_doctor(args: argparse.Namespace) -> int:
    if args.store is not None:
        return _store_doctor_report(args)
    if args.run_id is None:
        print("error: runs doctor needs a run_id or --store URL",
              file=sys.stderr)
        return EXIT_INFRA
    path = _journal_path(args.runs_dir, args.run_id)
    state = scan_journal(path)
    if state.header is None:
        print(f"error: journal {path} has no header record", file=sys.stderr)
        return EXIT_INFRA
    print(f"run {state.run_id!r} ({state.kind}), journal {path}")
    print(f"  fingerprint: {state.header.get('fingerprint', '?')[:16]}…")
    print(f"  records:     {state.records}")
    terminal = len(state.finished) + len(state.failed) + len(state.quarantined)
    print(
        f"  cells:       {state.cells} total — {len(state.finished)} "
        f"finished, {len(state.failed)} failed, {len(state.quarantined)} "
        f"quarantined, {len(state.crash_set())} in flight, "
        f"{len(state.unstarted())} unstarted"
    )
    healthy = True
    if state.torn:
        raw = path.read_bytes()
        torn_bytes = len(raw) - state.good_bytes
        with open(path, "r+b") as handle:
            handle.truncate(state.good_bytes)
        print(
            f"  torn tail:   {torn_bytes} byte(s) cut mid-append by a crash "
            f"— truncated (by fsync ordering nothing ever acted on them)"
        )
    crash_set = state.crash_set()
    if crash_set:
        healthy = False
        print(
            f"  crash set:   cells {crash_set} were in flight when the "
            f"orchestrator died — 'runs resume {state.run_id}' re-queues them"
        )
    if state.quarantined:
        healthy = False
        by_reason: dict = {}
        for cell, payload in sorted(state.quarantined.items()):
            by_reason.setdefault(payload.get("reason", "?"), []).append(cell)
        for reason, cells in sorted(by_reason.items()):
            print(f"  quarantined: {reason}: cells {cells}")
    if state.failed:
        healthy = False
        print(f"  failed:      cells {sorted(state.failed)} (deterministic "
              f"failures; resume restores them without re-running)")
    reexecuted = state.reexecuted_finished()
    if reexecuted:
        print(
            f"  REEXECUTED:  cells {reexecuted} were started again after a "
            f"terminal record — the resume discipline was violated"
        )
        if args.assert_no_reexecution:
            return EXIT_INFRA
    elif args.assert_no_reexecution:
        print("  reexecution: none — every terminal cell was skipped on resume")
    if state.complete:
        print("  status:      complete" + ("" if healthy else " (with findings)"))
    elif state.interrupted:
        print(f"  status:      interrupted (drained) — resume with "
              f"'runs resume {state.run_id} --runs-dir {args.runs_dir}'")
    else:
        print(f"  status:      incomplete — resume with "
              f"'runs resume {state.run_id} --runs-dir {args.runs_dir}'")
    return EXIT_OK


def cmd_runs(args: argparse.Namespace) -> int:
    if args.runs_command == "list":
        return cmd_runs_list(args)
    if args.runs_command == "resume":
        return cmd_runs_resume(args)
    if args.runs_command == "doctor":
        return cmd_runs_doctor(args)
    raise AssertionError(f"unhandled runs command {args.runs_command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _dispatch(build_parser().parse_args(argv))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INFRA
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INFRA
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INFRA
    except RunInterrupted as exc:
        # Commands catch this themselves to print a resume hint; this is the
        # safety net for any journaled path that doesn't.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "scenario":
        return cmd_scenario(args)
    if args.command == "verify":
        return cmd_verify()
    if args.command == "bounds":
        return cmd_bounds(args)
    if args.command == "inspect":
        return cmd_inspect(args)
    if args.command == "replay":
        return cmd_replay(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "worker":
        return cmd_worker(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "load":
        return cmd_load(args)
    if args.command == "query":
        return cmd_query(args)
    if args.command == "sessions":
        return cmd_sessions(args)
    if args.command == "proxy":
        return cmd_proxy(args)
    if args.command == "runs":
        return cmd_runs(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
