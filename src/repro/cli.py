"""Command-line driver: run any algorithm × attack × (N, t) from a shell.

Examples::

    repro-renaming list
    repro-renaming run --algorithm alg1 --n 7 --t 2 --attack id-forging
    repro-renaming run --algorithm alg4 --n 11 --t 2 --attack selective-echo
    repro-renaming scenario saturation
    repro-renaming sweep --algorithms alg1 alg4 --sizes 7:2 11:2 --attacks silent noise
    repro-renaming inspect --algorithm alg1 --n 7 --t 2 --attack divergence
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from .adversary import adversary_names
from .analysis import (
    ALGORITHMS,
    CHAOS_PRESETS,
    ChaosCampaign,
    SweepConfig,
    SweepExecutor,
    chaos_grid,
    format_table,
    group_by,
    render_timeline,
    run_experiment,
    summarize_views,
)
from .sim import ConfigurationError, DEFAULT_ENGINE, engine_names
from .workloads import get_scenario, make_ids, scenario_names, workload_names


def _parse_workers(text: str) -> int:
    try:
        workers = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer, got {text!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 1, got {workers}"
        )
    return workers


def _parse_size(text: str) -> Tuple[int, int]:
    try:
        n_text, t_text = text.split(":")
        return int(n_text), int(t_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"sizes are N:T pairs like 7:2, got {text!r}"
        ) from None


def _add_engine_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--engine", default=DEFAULT_ENGINE, choices=engine_names(),
        help="simulator round-loop implementation (results are identical; "
             "'reference' is the slow oracle the batched engine is "
             "differentially tested against)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-renaming",
        description=(
            "Order-preserving Byzantine renaming (Denysyuk & Rodrigues, "
            "ICDCS 2013) — reproduction driver."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list algorithms, attacks, workloads, scenarios")

    run = commands.add_parser("run", help="execute one configuration")
    run.add_argument("--algorithm", required=True, choices=sorted(ALGORITHMS))
    run.add_argument("--n", type=int, required=True, help="number of processes")
    run.add_argument("--t", type=int, required=True, help="fault bound")
    run.add_argument("--attack", default="silent", choices=adversary_names())
    run.add_argument("--workload", default="uniform", choices=workload_names())
    run.add_argument("--seed", type=int, default=0)
    _add_engine_flag(run)

    scenario = commands.add_parser("scenario", help="execute a canned scenario")
    scenario.add_argument("name", choices=scenario_names())
    scenario.add_argument("--algorithm", default="alg1", choices=sorted(ALGORITHMS))
    scenario.add_argument("--seed", type=int, default=0)
    _add_engine_flag(scenario)

    commands.add_parser(
        "verify",
        help="condensed one-command check of every reproduced claim",
    )

    bounds = commands.add_parser(
        "bounds", help="print every closed-form bound for given (N, t) sizes"
    )
    bounds.add_argument("sizes", nargs="+", type=_parse_size, metavar="N:T")

    inspect = commands.add_parser(
        "inspect", help="run one configuration with tracing and show a timeline"
    )
    inspect.add_argument("--algorithm", required=True, choices=sorted(ALGORITHMS))
    inspect.add_argument("--n", type=int, required=True)
    inspect.add_argument("--t", type=int, required=True)
    inspect.add_argument("--attack", default="silent", choices=adversary_names())
    inspect.add_argument("--workload", default="uniform", choices=workload_names())
    inspect.add_argument("--seed", type=int, default=0)
    inspect.add_argument(
        "--save", metavar="PATH", default=None,
        help="archive the traced run as JSON for offline analysis",
    )
    _add_engine_flag(inspect)

    replay = commands.add_parser(
        "replay", help="re-render the timeline of an archived run"
    )
    replay.add_argument("path", help="JSON archive written by inspect --save")

    chaos = commands.add_parser(
        "chaos",
        help="run a crash-contained beyond-model fault-injection campaign",
    )
    chaos.add_argument("--algorithms", nargs="+", required=True,
                       choices=sorted(ALGORITHMS))
    chaos.add_argument("--sizes", nargs="+", type=_parse_size, required=True,
                       metavar="N:T")
    chaos.add_argument("--attacks", nargs="+", default=["silent"],
                       choices=adversary_names())
    chaos.add_argument("--seeds", nargs="+", type=int, default=[0])
    chaos.add_argument("--engines", nargs="+", default=[DEFAULT_ENGINE],
                       choices=engine_names())
    chaos.add_argument("--chaos-seeds", nargs="+", type=int, default=[0],
                       help="seeds for the fault plans (independent of run seeds)")
    chaos.add_argument("--drop", nargs="+", type=float, default=[],
                       metavar="P", help="per-link drop probabilities to try")
    chaos.add_argument("--duplicate", nargs="+", type=float, default=[],
                       metavar="P", help="per-link duplication probabilities to try")
    chaos.add_argument("--corrupt", nargs="+", type=float, default=[],
                       metavar="P", help="per-link payload-corruption probabilities")
    chaos.add_argument("--crash-extra", nargs="+", type=int, default=[],
                       metavar="K", help="extra correct-process send-crashes "
                       "(beyond the t budget) to try")
    chaos.add_argument("--crash-round", type=int, default=1,
                       help="round at which extra crashes engage")
    chaos.add_argument("--combine", action="store_true",
                       help="merge one value per fault axis into a single "
                       "combined plan (used by quarantine reproducers)")
    chaos.add_argument("--preset", choices=sorted(CHAOS_PRESETS), default=None,
                       help="named fault-axis bundle (overridden by explicit "
                       "fault flags)")
    chaos.add_argument("--no-clean", action="store_true",
                       help="skip the no-fault control cell per configuration")
    chaos.add_argument("--no-monitor", action="store_true",
                       help="disable the in-run safety monitor (post-hoc "
                       "property checks still run)")
    chaos.add_argument("--max-rounds", type=int, default=64,
                       help="hard round cap per run (chaos runs must never spin)")
    chaos.add_argument("--workload", default="uniform", choices=workload_names())
    chaos.add_argument(
        "--workers", type=_parse_workers, default=None, metavar="N",
        help="worker processes (default: one per CPU; 1 = serial in-process)",
    )
    chaos.add_argument("--timeout", type=float, default=120.0, metavar="S",
                       help="per-cycle hang timeout in seconds")
    chaos.add_argument("--json", metavar="PATH", default=None,
                       help="also write the full triage report as JSON to PATH")

    sweep = commands.add_parser("sweep", help="run a configuration grid")
    sweep.add_argument("--algorithms", nargs="+", required=True, choices=sorted(ALGORITHMS))
    sweep.add_argument("--sizes", nargs="+", type=_parse_size, required=True,
                       metavar="N:T")
    sweep.add_argument("--attacks", nargs="+", default=["silent"],
                       choices=adversary_names())
    sweep.add_argument("--seeds", nargs="+", type=int, default=[0])
    sweep.add_argument("--workload", default="uniform", choices=workload_names())
    sweep.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write one CSV row per run to PATH",
    )
    sweep.add_argument(
        "--workers", type=_parse_workers, default=None, metavar="N",
        help="worker processes for the grid (default: one per CPU; 1 = "
             "serial in-process)",
    )
    sweep.add_argument(
        "--cache", metavar="DIR", default=None,
        help="reuse cached results from DIR; only changed configurations "
             "are executed",
    )
    _add_engine_flag(sweep)
    return parser


def _print_record(record) -> None:
    report = record.report
    print(
        format_table(
            ["algorithm", "n", "t", "attack", "rounds", "messages", "kbits",
             "max name", "properties"],
            [[
                record.algorithm,
                record.n,
                record.t,
                record.attack,
                record.rounds,
                record.correct_messages,
                record.correct_bits // 1000,
                record.max_name,
                "OK" if report.ok else "; ".join(report.violations),
            ]],
        )
    )
    print("\nnew names (original -> new):")
    for original, name in sorted(report.names.items()):
        print(f"  {original:>8} -> {name}")


def cmd_list() -> int:
    print("algorithms:", ", ".join(sorted(ALGORITHMS)))
    print("attacks:   ", ", ".join(adversary_names()))
    print("workloads: ", ", ".join(workload_names()))
    print("scenarios: ", ", ".join(scenario_names()))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    ids = make_ids(args.workload, args.n, seed=args.seed)
    record = run_experiment(
        args.algorithm, args.n, args.t, ids, attack=args.attack, seed=args.seed,
        engine=args.engine,
    )
    _print_record(record)
    return 0 if record.report.ok_without_order() else 1


def cmd_scenario(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.name)
    print(f"{scenario.name}: {scenario.description}")
    ids = make_ids(scenario.workload, scenario.n, seed=args.seed)
    record = run_experiment(
        args.algorithm,
        scenario.n,
        scenario.t,
        ids,
        attack=scenario.attack,
        seed=args.seed,
        engine=args.engine,
    )
    _print_record(record)
    return 0 if record.report.ok_without_order() else 1


def cmd_verify() -> int:
    from .analysis import verify_reproduction

    results = verify_reproduction()
    for claim in results:
        print(claim.line())
    failed = [claim for claim in results if not claim.passed]
    print(
        f"\n{len(results) - len(failed)}/{len(results)} claims verified"
        + ("" if not failed else " — REPRODUCTION BROKEN")
    )
    return 1 if failed else 0


def cmd_bounds(args: argparse.Namespace) -> int:
    from .core import SystemParams

    rows = []
    for n, t in args.sizes:
        params = SystemParams(n, t)
        regimes = []
        if params.tolerates_byzantine:
            regimes.append("N>3t")
        if params.in_constant_time_regime:
            regimes.append("N>t^2+2t")
        if params.in_fast_regime:
            regimes.append("N>2t^2+t")
        rows.append([
            n,
            t,
            " ".join(regimes) or "none",
            params.total_rounds if params.tolerates_byzantine else "-",
            params.namespace_bound if params.tolerates_byzantine else "-",
            params.accepted_bound if n > 2 * t else "-",
            f"{params.sigma}/{params.realized_sigma}" if t else "-",
            str(params.delta),
        ])
    print(
        format_table(
            ["n", "t", "regimes", "alg1 rounds", "namespace", "|accepted| bound",
             "sigma paper/real", "delta"],
            rows,
        )
    )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    ids = make_ids(args.workload, args.n, seed=args.seed)
    record = run_experiment(
        args.algorithm,
        args.n,
        args.t,
        ids,
        attack=args.attack,
        seed=args.seed,
        collect_trace=True,
        engine=args.engine,
    )
    print(render_timeline(record.result))
    views = summarize_views(record.result)
    if views is not None:
        print("\naccepted-set views:\n" + views)
    report = record.report
    print(f"\nproperties: {'OK' if report.ok else '; '.join(report.violations)}")
    if args.save is not None:
        from .analysis import dump_run

        path = dump_run(record.result, args.save)
        print(f"run archived to {path}")
    return 0 if report.ok_without_order() else 1


def cmd_replay(args: argparse.Namespace) -> int:
    from .analysis import load_run, summarize_views

    view = load_run(args.path).as_result_view()
    print(render_timeline(view))
    views = summarize_views(view)
    if views is not None:
        print("\naccepted-set views:\n" + views)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    fault_axes = {
        "drop": tuple(args.drop),
        "duplicate": tuple(args.duplicate),
        "corrupt": tuple(args.corrupt),
        "extra_crashes": tuple(args.crash_extra),
    }
    if args.preset is not None and not any(fault_axes.values()):
        fault_axes = {
            axis: tuple(values)
            for axis, values in CHAOS_PRESETS[args.preset].items()
        }
    tasks = chaos_grid(
        args.algorithms,
        args.sizes,
        attacks=args.attacks,
        seeds=args.seeds,
        engines=args.engines,
        chaos_seeds=args.chaos_seeds,
        crash_round=args.crash_round,
        combine=args.combine,
        include_clean=not args.no_clean,
        workload=args.workload,
        max_rounds=args.max_rounds,
        monitor=not args.no_monitor,
        **fault_axes,
    )
    if not tasks:
        print("error: empty campaign grid", file=sys.stderr)
        return 2
    campaign = ChaosCampaign(workers=args.workers, timeout_s=args.timeout)
    report = campaign.run(tasks)
    print(report.render())
    if args.json is not None:
        import json
        from pathlib import Path

        path = Path(args.json)
        path.write_text(json.dumps(report.to_json(), indent=2))
        print(f"\ntriage report written to {path}")
    return 0 if report.ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    config = SweepConfig(
        algorithms=args.algorithms,
        sizes=args.sizes,
        attacks=args.attacks,
        seeds=args.seeds,
        workload=args.workload,
        engine=args.engine,
    )
    executor = SweepExecutor(workers=args.workers, cache=args.cache)
    records = executor.run(config)
    rows = []
    for (algorithm, n, t, attack), group in group_by(
        records, "algorithm", "n", "t", "attack"
    ).items():
        rows.append([
            algorithm,
            n,
            t,
            attack,
            max(r.rounds for r in group),
            max(r.max_name for r in group),
            sum(1 for r in group if r.report.ok_without_order()),
            len(group),
        ])
    print(
        format_table(
            ["algorithm", "n", "t", "attack", "rounds", "max name", "ok", "runs"],
            rows,
        )
    )
    stats = executor.stats
    print(
        f"\n{len(records)} runs ({stats.executed} executed, "
        f"{stats.from_cache} cached) in {stats.elapsed_s:.2f}s "
        f"on {executor.workers} worker(s)"
    )
    if args.csv is not None:
        from .analysis import export_csv

        path = export_csv(records, args.csv)
        print(f"{len(records)} rows written to {path}")
    bad = [r for r in records if not r.report.ok_without_order()]
    return 1 if bad else 0


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _dispatch(build_parser().parse_args(argv))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "scenario":
        return cmd_scenario(args)
    if args.command == "verify":
        return cmd_verify()
    if args.command == "bounds":
        return cmd_bounds(args)
    if args.command == "inspect":
        return cmd_inspect(args)
    if args.command == "replay":
        return cmd_replay(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
