# Convenience targets; everything assumes the in-tree layout (PYTHONPATH=src).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench smoke

## Tier-1: the full unit/integration suite (what CI gates on).
test:
	$(PYTHON) -m pytest -x -q

## Tier-2: the E1-E12 experiment suite; regenerates benchmarks/results/.
bench:
	$(PYTHON) -m pytest -q benchmarks/

## Fast end-to-end check: a small sweep through the process pool with
## caching, via the CLI — once per execution engine, so a regression in
## either the batched fast path or the reference loop surfaces here.
## Catches pool pickling and cache regressions in seconds without running
## the full benchmark suite.
smoke:
	$(PYTHON) -m repro.cli sweep --algorithms alg1 okun-crash \
		--sizes 4:1 5:1 --attacks silent crash --seeds 0 1 \
		--workers 2 --engine batched
	$(PYTHON) -m repro.cli sweep --algorithms alg1 okun-crash \
		--sizes 4:1 5:1 --attacks silent crash --seeds 0 1 \
		--workers 2 --engine reference
