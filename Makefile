# Convenience targets; everything assumes the in-tree layout (PYTHONPATH=src).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench smoke chaos-smoke

## Tier-1: the full unit/integration suite (what CI gates on).
test:
	$(PYTHON) -m pytest -x -q

## Tier-2: the E1-E12 experiment suite; regenerates benchmarks/results/.
bench:
	$(PYTHON) -m pytest -q benchmarks/

## Fast end-to-end check: a small sweep through the process pool with
## caching, via the CLI — once per execution engine, so a regression in
## either the batched fast path or the reference loop surfaces here.
## Catches pool pickling and cache regressions in seconds without running
## the full benchmark suite.
smoke:
	$(PYTHON) -m repro.cli sweep --algorithms alg1 okun-crash \
		--sizes 4:1 5:1 --attacks silent crash --seeds 0 1 \
		--workers 2 --engine batched
	$(PYTHON) -m repro.cli sweep --algorithms alg1 okun-crash \
		--sizes 4:1 5:1 --attacks silent crash --seeds 0 1 \
		--workers 2 --engine reference

## Beyond-model fault-injection campaign on both engines via the chaos
## CLI. Exit 0 means the campaign is healthy (every injection classified,
## no quarantined cells, no silent successes) — individual detections and
## property violations are findings, not failures. A campaign that hangs,
## drops a run, or lets an injected fault pass unverified fails here.
chaos-smoke:
	$(PYTHON) -m repro.cli chaos --algorithms alg1 alg4 \
		--sizes 7:2 11:2 --seeds 0 1 --chaos-seeds 0 1 \
		--engines batched reference --preset smoke \
		--workers 2 --timeout 120
