# Convenience targets; everything assumes the in-tree layout (PYTHONPATH=src).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-vector smoke chaos-smoke resume-smoke fabric-smoke model-smoke bench-store service-smoke recovery-smoke bench-service

## Tier-1: the full unit/integration suite (what CI gates on).
test:
	$(PYTHON) -m pytest -x -q

## Tier-2: the E1-E13 experiment suite; regenerates benchmarks/results/.
bench:
	$(PYTHON) -m pytest -q benchmarks/

## The vector-engine scaling capture: reruns the E10 flood comparison
## across all three engines (plus the n=1000 batched-vs-vector cell) and
## rewrites benchmarks/results/e10_vector.txt. Needs numpy; skips cleanly
## without it.
bench-vector:
	$(PYTHON) -m pytest -q benchmarks/bench_e10_scaling.py \
		-k test_e10_vector_speedup --benchmark-disable

## Fast end-to-end check: a small sweep through the process pool with
## caching, via the CLI — once per execution engine, so a regression in
## either the batched fast path or the reference loop surfaces here.
## Catches pool pickling and cache regressions in seconds without running
## the full benchmark suite.
smoke:
	$(PYTHON) -m repro.cli sweep --algorithms alg1 okun-crash \
		--sizes 4:1 5:1 --attacks silent crash --seeds 0 1 \
		--workers 2 --engine batched
	$(PYTHON) -m repro.cli sweep --algorithms alg1 okun-crash \
		--sizes 4:1 5:1 --attacks silent crash --seeds 0 1 \
		--workers 2 --engine reference

## Beyond-model fault-injection campaign on both engines via the chaos
## CLI. Exit 0 means the campaign is healthy (every injection classified,
## no quarantined cells, no silent successes) — individual detections and
## property violations are findings, not failures. A campaign that hangs,
## drops a run, or lets an injected fault pass unverified fails here.
chaos-smoke:
	$(PYTHON) -m repro.cli chaos --algorithms alg1 alg4 \
		--sizes 7:2 11:2 --seeds 0 1 --chaos-seeds 0 1 \
		--engines batched reference --preset smoke \
		--workers 2 --timeout 120

## Durability smoke: SIGKILL a journaled ~50-cell campaign mid-flight
## (deterministically, after the 20th finished cell becomes durable),
## resume it, and assert via the journal's own event log that not one
## finished cell was re-executed. The kill step exits 137 by design (the
## leading '-' ignores it); the resume and the doctor assertion gate.
RESUME_SMOKE_DIR := .resume-smoke
resume-smoke:
	rm -rf $(RESUME_SMOKE_DIR)
	-REPRO_JOURNAL_CRASH_AFTER=finished:20 $(PYTHON) -m repro.cli chaos \
		--algorithms alg1 --sizes 7:2 --seeds 0 1 2 3 4 5 6 7 8 9 \
		--chaos-seeds 0 1 --drop 0.05 0.1 --workers 2 --timeout 120 \
		--journal $(RESUME_SMOKE_DIR) --run-id smoke
	$(PYTHON) -m repro.cli runs resume smoke --runs-dir $(RESUME_SMOKE_DIR) \
		--workers 2
	$(PYTHON) -m repro.cli runs doctor smoke --runs-dir $(RESUME_SMOKE_DIR) \
		--assert-no-reexecution
	rm -rf $(RESUME_SMOKE_DIR)

## Fabric smoke: the full distributed arrangement on one host — a
## coordinator-only sweep seeding a shared sqlite store, two separately
## started pull-based workers draining it — then assert zero cells were
## executed twice (store event log, via the doctor) and that the CSV is
## byte-identical to a single-process control run.
FABRIC_SMOKE_DIR := .fabric-smoke
FABRIC_SMOKE_GRID := --algorithms alg1 okun-crash --sizes 7:2 \
	--attacks silent --seeds 0 1 2 3
fabric-smoke:
	rm -rf $(FABRIC_SMOKE_DIR)
	mkdir -p $(FABRIC_SMOKE_DIR)
	$(PYTHON) -m repro.cli sweep $(FABRIC_SMOKE_GRID) --workers 1 \
		--csv $(FABRIC_SMOKE_DIR)/control.csv
	$(PYTHON) -m repro.cli sweep $(FABRIC_SMOKE_GRID) \
		--store sqlite:$(FABRIC_SMOKE_DIR)/store.db --coordinator-only \
		--csv $(FABRIC_SMOKE_DIR)/fabric.csv & COORD=$$!; \
	$(PYTHON) -m repro.cli worker \
		--store sqlite:$(FABRIC_SMOKE_DIR)/store.db --worker-id smoke-w1 \
		--wait-for-store 60 & W1=$$!; \
	$(PYTHON) -m repro.cli worker \
		--store sqlite:$(FABRIC_SMOKE_DIR)/store.db --worker-id smoke-w2 \
		--wait-for-store 60 & W2=$$!; \
	wait $$COORD && wait $$W1 && wait $$W2
	$(PYTHON) -m repro.cli runs doctor \
		--store sqlite:$(FABRIC_SMOKE_DIR)/store.db --assert-no-reexecution
	cmp $(FABRIC_SMOKE_DIR)/control.csv $(FABRIC_SMOKE_DIR)/fabric.csv
	rm -rf $(FABRIC_SMOKE_DIR)

## System-model smoke: one canned scenario per non-classic model axis,
## then one model sweep per execution path — the dir-cached process pool
## (impersonation) and the sqlite store fabric with a pull-based worker
## (partial synchrony) — so model serialization is exercised through
## RunTask journals and store rows, not just in-process calls. Exit 0
## means every run held the properties its model guarantees.
MODEL_SMOKE_DIR := .model-smoke
model-smoke:
	rm -rf $(MODEL_SMOKE_DIR)
	mkdir -p $(MODEL_SMOKE_DIR)
	$(PYTHON) -m repro.cli scenario forged-senders --algorithm alg1
	$(PYTHON) -m repro.cli scenario lossy-rounds --algorithm floodset
	$(PYTHON) -m repro.cli sweep --algorithms alg1 okun-crash floodset \
		--sizes 7:2 --seeds 0 1 --model impersonation:k=2 \
		--workers 2 --cache $(MODEL_SMOKE_DIR)/cache
	$(PYTHON) -m repro.cli sweep --algorithms floodset --sizes 7:2 \
		--seeds 0 1 2 3 --model partial-synchrony:rate=0.05,delay=2 \
		--store sqlite:$(MODEL_SMOKE_DIR)/store.db --coordinator-only \
		& COORD=$$!; \
	$(PYTHON) -m repro.cli worker \
		--store sqlite:$(MODEL_SMOKE_DIR)/store.db --worker-id model-w1 \
		--wait-for-store 60 & W1=$$!; \
	wait $$COORD && wait $$W1
	$(PYTHON) -m repro.cli runs doctor \
		--store sqlite:$(MODEL_SMOKE_DIR)/store.db --assert-no-reexecution
	rm -rf $(MODEL_SMOKE_DIR)

## Service smoke: the renaming daemon under real load and a real SIGTERM.
## Starts the daemon on an ephemeral port (the port file is the
## handshake), drives a 1500-session burst at 500 concurrent sessions —
## every completed session's assignment is re-validated client-side
## against check_renaming, so exit 0 is a correctness statement, not just
## liveness — then SIGTERMs the daemon mid-way through a second load and
## asserts the drain contract: the late load must not observe an invalid
## certificate (exit 2) and the daemon must exit 0 (drained clean) or 4
## (sessions shed), never crash.
SERVICE_SMOKE_DIR := .service-smoke
service-smoke:
	rm -rf $(SERVICE_SMOKE_DIR)
	mkdir -p $(SERVICE_SMOKE_DIR)
	$(PYTHON) -m repro.cli serve --port 0 \
		--port-file $(SERVICE_SMOKE_DIR)/port \
		--max-sessions 600 --session-deadline 30 --idle-timeout 30 \
		--drain-grace 60 & SRV=$$!; \
	for i in $$(seq 200); do \
		[ -s $(SERVICE_SMOKE_DIR)/port ] && break; sleep 0.1; done; \
	$(PYTHON) -m repro.cli load --port-file $(SERVICE_SMOKE_DIR)/port \
		--sessions 1500 --concurrency 500 --ids 8 \
		--report $(SERVICE_SMOKE_DIR)/burst.txt; BURST=$$?; \
	$(PYTHON) -m repro.cli load --port-file $(SERVICE_SMOKE_DIR)/port \
		--sessions 600 --concurrency 200 --ids 8 \
		--report $(SERVICE_SMOKE_DIR)/drain.txt & LOADGEN=$$!; \
	sleep 0.5; kill -TERM $$SRV; \
	wait $$LOADGEN; DRAINLOAD=$$?; \
	wait $$SRV; SERVE=$$?; \
	echo "service-smoke: burst=$$BURST drain-load=$$DRAINLOAD serve=$$SERVE"; \
	[ $$BURST -eq 0 ] && [ $$DRAINLOAD -ne 2 ] && \
		{ [ $$SERVE -eq 0 ] || [ $$SERVE -eq 4 ]; }
	rm -rf $(SERVICE_SMOKE_DIR)

## Crash-recovery end-to-end: a journaled daemon takes a tokened burst
## *through the chaos proxy* (connection resets + mid-frame truncation)
## and is SIGKILLed mid-load by the deterministic crash hook; a fresh
## daemon restarts on the same journal and the identical burst is
## re-driven — every token must complete (pre-crash sessions answered
## byte-identically from the journal, interrupted ones re-admitted
## exactly once), a query must answer from the journal, and the offline
## `sessions list` reader must accept the journal. Every injected fault
## must surface as a typed client error — the burst may fail sessions
## (exit 3 if the kill landed early) but must never report an invalid
## certificate (exit 2) and must never hang.
RECOVERY_SMOKE_DIR := .recovery-smoke
recovery-smoke:
	rm -rf $(RECOVERY_SMOKE_DIR)
	mkdir -p $(RECOVERY_SMOKE_DIR)
	REPRO_SERVICE_CRASH_AFTER=completed:30 \
	$(PYTHON) -m repro.cli serve --port 0 \
		--port-file $(RECOVERY_SMOKE_DIR)/svc.port \
		--session-journal $(RECOVERY_SMOKE_DIR)/sessions.jsonl \
		--max-sessions 200 --session-deadline 30 --idle-timeout 30 \
		--drain-grace 60 & SRV=$$!; \
	for i in $$(seq 200); do \
		[ -s $(RECOVERY_SMOKE_DIR)/svc.port ] && break; sleep 0.1; done; \
	$(PYTHON) -m repro.cli proxy \
		--upstream-file $(RECOVERY_SMOKE_DIR)/svc.port \
		--port-file $(RECOVERY_SMOKE_DIR)/proxy.port \
		--reset 0.1 --truncate 0.1 --seed 7 & PRX=$$!; \
	for i in $$(seq 200); do \
		[ -s $(RECOVERY_SMOKE_DIR)/proxy.port ] && break; sleep 0.1; done; \
	$(PYTHON) -m repro.cli load \
		--port-file $(RECOVERY_SMOKE_DIR)/proxy.port \
		--sessions 60 --concurrency 20 --ids 8 --seed 0 \
		--session-prefix rsmoke --retries 2 --timeout 10 \
		--report $(RECOVERY_SMOKE_DIR)/burst.txt; BURST=$$?; \
	wait $$SRV; CRASH=$$?; \
	rm -f $(RECOVERY_SMOKE_DIR)/svc.port; \
	$(PYTHON) -m repro.cli serve --port 0 \
		--port-file $(RECOVERY_SMOKE_DIR)/svc.port \
		--session-journal $(RECOVERY_SMOKE_DIR)/sessions.jsonl \
		--max-sessions 200 --session-deadline 30 --idle-timeout 30 \
		--drain-grace 60 & SRV=$$!; \
	for i in $$(seq 200); do \
		[ -s $(RECOVERY_SMOKE_DIR)/svc.port ] && break; sleep 0.1; done; \
	$(PYTHON) -m repro.cli load \
		--port-file $(RECOVERY_SMOKE_DIR)/svc.port \
		--sessions 60 --concurrency 20 --ids 8 --seed 0 \
		--session-prefix rsmoke --retries 5 --timeout 30 \
		--report $(RECOVERY_SMOKE_DIR)/redrive.txt; REDRIVE=$$?; \
	grep -Eq "completed +60" $(RECOVERY_SMOKE_DIR)/redrive.txt; FULL=$$?; \
	$(PYTHON) -m repro.cli query rsmoke-0 \
		--port-file $(RECOVERY_SMOKE_DIR)/svc.port > /dev/null; QUERY=$$?; \
	kill -TERM $$PRX; wait $$PRX; \
	kill -TERM $$SRV; wait $$SRV; SERVE=$$?; \
	$(PYTHON) -m repro.cli sessions list \
		--journal $(RECOVERY_SMOKE_DIR)/sessions.jsonl > /dev/null; LIST=$$?; \
	echo "recovery-smoke: burst=$$BURST crash=$$CRASH redrive=$$REDRIVE \
		all-completed=$$FULL query=$$QUERY serve=$$SERVE list=$$LIST"; \
	[ $$CRASH -eq 137 ] && [ $$BURST -ne 2 ] && [ $$REDRIVE -eq 0 ] && \
		[ $$FULL -eq 0 ] && [ $$QUERY -eq 0 ] && [ $$SERVE -eq 0 ] && \
		[ $$LIST -eq 0 ]
	rm -rf $(RECOVERY_SMOKE_DIR)

## Service throughput capture: sessions/sec and p50/p99 session latency
## for burst, sustained, and adversarial scenarios over loopback TCP,
## plus the journal-on vs journal-off durability-cost comparison.
## Rewrites benchmarks/results/service_load.txt.
bench-service:
	$(PYTHON) benchmarks/bench_service_load.py \
		--out benchmarks/results/service_load.txt

## Store throughput capture: claims/sec and streamed rows/sec at 10k
## cells on both backends, plus the bounded-memory proof — a 50k-cell
## streamed aggregation whose peak RSS growth is asserted flat. Rewrites
## benchmarks/results/store_throughput.txt.
bench-store:
	$(PYTHON) benchmarks/bench_store_throughput.py \
		--out benchmarks/results/store_throughput.txt
