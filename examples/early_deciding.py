#!/usr/bin/env python
"""Early deciding: pay for worst-case faults only when they happen.

Alg. 1's round budget 3*ceil(log2 t) + 7 is sized for the worst case. In
the common case — faults are crashes or silence, not active lying — the
rank approximation is unanimous almost immediately. The early-deciding
extension (following the direction of Alistarh et al. [1] for the crash
model) lets a process freeze its decision as soon as every valid vote it
received agreed with its own ranks for two consecutive rounds, which
provably pins the final outcome (see docs/algorithms.md).

This script runs the same configuration against a quiet adversary and an
actively-lying one and prints when each process locked in, versus the
scheduled deadline.

Run:  python examples/early_deciding.py
"""

from functools import partial

from repro import OrderPreservingRenaming, RenamingOptions, SystemParams, run_protocol
from repro.adversary import make_adversary

N, T = 13, 4
IDS = [7 * k + 3 for k in range(1, N + 1)]

EARLY = partial(
    OrderPreservingRenaming, options=RenamingOptions(early_deciding=True)
)


def show(attack: str) -> None:
    result = run_protocol(
        EARLY,
        n=N,
        t=T,
        ids=IDS,
        adversary=make_adversary(attack),
        seed=11,
        collect_trace=True,
    )
    frozen = {
        e.process: e.round_no
        for e in result.trace.select(event="early_frozen")
        if e.process in result.correct
    }
    deadline = SystemParams(N, T).total_rounds
    print(f"\nadversary: {attack}")
    if frozen:
        rounds = sorted(set(frozen.values()))
        print(f"  {len(frozen)}/{len(result.correct)} correct processes froze "
              f"at round(s) {rounds} (scheduled deadline: {deadline})")
    else:
        print(f"  nobody froze early; all decided at the scheduled round "
              f"{deadline}")
    names = result.new_names()
    values = [names[i] for i in sorted(names)]
    assert values == sorted(values) and len(set(values)) == len(values)
    print("  names correct and order-preserving either way.")


def main() -> None:
    print(f"N = {N}, t = {T}: scheduled rounds = "
          f"{SystemParams(N, T).total_rounds}")
    show("silent")        # faults that never lie: decide ~6 rounds early
    show("crash")         # crash mid-protocol: still early most runs
    show("rank-skew")     # active vote skew: freezing is delayed or skipped
    print(
        "\nthe adversary can only *delay* the freeze (a liveness attack), "
        "never corrupt a frozen decision — with silence the latency win is "
        "most of the voting phase."
    )


if __name__ == "__main__":
    main()
