#!/usr/bin/env python
"""Priority-preserving bus arbitration — why *order-preserving* matters.

The paper's motivation: renaming is useful "in settings where the original
identifiers encode some additional information, such as their relative
priority in accessing a shared resource". This example plays that scenario
out.

A control bus serves 9 field devices. Each device carries a factory-burned
64-bit serial number whose *magnitude encodes its priority class* (lower
serial = provisioned earlier = higher priority). The bus arbiter has only
11 priority levels of hardware (N + t - 1 = 11 with N=9, t=2), so the
devices must agree on compact per-device priority levels — and a device that
was provisioned earlier must never end up behind a later one, even if up to
2 devices are compromised and lie about serial numbers.

Non-order-preserving renaming (e.g. the translated [15] baseline) would be
useless here: it hands out compact names fine, but a compromised run could
leave the emergency-stop controller with a worse level than the logging
node. Algorithm 1 guarantees the ordering.

Run:  python examples/priority_arbitration.py
"""

from repro import OrderPreservingRenaming, SystemParams, run_protocol
from repro.adversary import make_adversary

DEVICES = [
    # (serial number, description) — serial order IS priority order.
    (71_002, "emergency stop controller"),
    (94_310, "safety interlock"),
    (182_447, "motion controller"),
    (310_559, "conveyor PLC"),
    (402_113, "sensor gateway A"),
    (533_870, "sensor gateway B"),
    (710_224, "HMI panel"),
    (822_901, "firmware updater"),
    (933_333, "telemetry logger"),
]

N, T = len(DEVICES), 2


def main() -> None:
    params = SystemParams(N, T)
    serials = [serial for serial, _ in DEVICES]
    label = {serial: name for serial, name in DEVICES}

    print(f"{N} devices, up to {T} compromised; "
          f"{params.namespace_bound} hardware priority levels available\n")

    # The compromised devices mount the divergence attack: they forge
    # serials visible only to some peers, trying to skew the level
    # assignment between the safety-critical and auxiliary devices.
    result = run_protocol(
        OrderPreservingRenaming,
        n=N,
        t=T,
        ids=serials,
        adversary=make_adversary("divergence"),
        seed=2026,
    )

    compromised = {result.ids[i] for i in result.byzantine}
    levels = result.new_names()

    print(f"{'serial':>8}  {'level':>5}  device")
    for serial in sorted(serials):
        if serial in compromised:
            print(f"{serial:>8}  {'--':>5}  {label[serial]}  [compromised]")
        else:
            print(f"{serial:>8}  {levels[serial]:>5}  {label[serial]}")

    honest = sorted(levels)
    assigned = [levels[s] for s in honest]
    assert assigned == sorted(assigned), "priority inversion!"
    assert len(set(assigned)) == len(assigned), "two devices share a level!"
    print(
        "\nno priority inversion: every earlier-provisioned honest device "
        "kept a better (smaller) level than every later one."
    )
    print(f"levels fit the hardware: max level {max(assigned)} <= "
          f"{params.namespace_bound}.")


if __name__ == "__main__":
    main()
