#!/usr/bin/env python
"""Compare every renaming algorithm in the library on one workload.

Reproduces, in one screen, the trade-off story of the paper's introduction:

* consensus gets perfect names but pays exponential message size;
* the translated crash->Byzantine baseline pays doubled namespace, doubled
  rounds and loses order preservation;
* Alg. 1 keeps order with a near-tight namespace in O(log t) rounds;
* in the fast regime Alg. 4 does it in two rounds for an N^2 namespace;
* the crash-model baselines show what the Byzantine machinery costs on top.

Run:  python examples/algorithm_comparison.py
"""

from repro.analysis import ALGORITHMS, format_table, run_experiment
from repro.workloads import make_ids

N, T = 13, 3


def effective_rounds(record):
    settled = record.result.trace.select(event="settled")
    if settled:
        return max(
            e.round_no
            for e in settled
            if e.process in record.result.correct
        )
    return record.rounds


def main() -> None:
    ids = make_ids("uniform", N, seed=1)
    rows = []
    for name in sorted(ALGORITHMS):
        spec = ALGORITHMS[name]
        if not spec.supports(N, T):
            rows.append([name, "-", "-", "-", "-", "-",
                         f"needs different (N, t) regime"])
            continue
        # Heaviest meaningful adversary per algorithm: Byzantine noise where
        # the spec supports it, crash faults for the crash-model baselines
        # (run_experiment rejects meaningless pairings).
        attack = "noise" if "noise" in spec.attacks else "crash"
        record = run_experiment(
            name, N, T, ids, attack=attack, seed=1, collect_trace=True
        )
        rows.append([
            name,
            effective_rounds(record),
            record.correct_messages,
            record.peak_message_bits,
            record.max_name,
            "yes" if spec.order_preserving else "no",
            "OK" if record.report.ok_without_order() else "FAIL",
        ])

    print(f"workload: {N} processes, t={T}, uniform sparse ids\n")
    print(
        format_table(
            ["algorithm", "rounds", "messages", "peak msg bits", "max name",
             "order", "props"],
            rows,
        )
    )
    print(
        "\nreading guide: 'consensus' = EIG interactive consistency (note "
        "the peak message size); 'translated' = the [15] cost envelope "
        "(namespace 2N, order lost); alg4 requires N > 2t^2 + t so it sits "
        "this size out."
    )


if __name__ == "__main__":
    main()
