#!/usr/bin/env python
"""Attack gallery: run every registered Byzantine strategy against Alg. 1.

For each attack the script reports what the adversary *achieved* (forged
ids accepted, rank divergence created, messages injected) and verifies that
the four renaming properties nevertheless held — the executable version of
Theorem IV.10's "for all adversaries".

Run:  python examples/attack_gallery.py
"""

from repro import OrderPreservingRenaming, SystemParams, run_protocol
from repro.adversary import ALG1_ATTACKS, make_adversary
from repro.analysis import check_renaming, format_table

N, T = 10, 3
IDS = [11, 222, 3_333, 44_444, 55_555, 66_666, 77_777, 88_888, 99_999,
       111_111]


def probe(attack: str):
    result = run_protocol(
        OrderPreservingRenaming,
        n=N,
        t=T,
        ids=IDS,
        adversary=make_adversary(attack),
        seed=5,
        collect_trace=True,
    )
    report = check_renaming(result, SystemParams(N, T).namespace_bound)

    accepted_sizes = [
        len(e.detail)
        for e in result.trace.select(event="accepted")
        if e.process in result.correct
    ]
    # How far apart did the adversary manage to pull the accepted sets?
    accepted_sets = [
        frozenset(e.detail)
        for e in result.trace.select(event="accepted")
        if e.process in result.correct
    ]
    views = len(set(accepted_sets))
    return {
        "attack": attack,
        "byz msgs": result.metrics.byzantine_messages,
        "max |accepted|": max(accepted_sizes),
        "divergent views": views,
        "max name": max(report.names.values()),
        "properties": "all hold" if report.ok else "; ".join(report.violations),
    }


def main() -> None:
    params = SystemParams(N, T)
    print(f"Alg. 1 at N={N}, t={T} — bound on |accepted|: "
          f"{params.accepted_bound}, namespace: [1..{params.namespace_bound}]\n")

    rows = [probe(attack) for attack in ALG1_ATTACKS]
    print(
        format_table(
            ["attack", "byz msgs", "max |accepted|", "divergent views",
             "max name", "properties"],
            [[r[k] for k in ("attack", "byz msgs", "max |accepted|",
                             "divergent views", "max name", "properties")]
             for r in rows],
        )
    )

    assert all(r["properties"] == "all hold" for r in rows)
    print(
        f"\nall {len(rows)} attacks absorbed: note how id-forging saturates "
        f"|accepted| at the Lemma IV.3 bound ({params.accepted_bound}) and "
        "the asymmetric/divergence attacks split the correct processes into "
        "multiple accepted-set views — yet every run renamed correctly."
    )


if __name__ == "__main__":
    main()
