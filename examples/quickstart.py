#!/usr/bin/env python
"""Quickstart: rename 7 processes, 2 of them Byzantine, in 10 rounds.

Seven processes hold sparse ids from a large namespace. Two of them are
controlled by a colluding adversary that forges extra identities — the worst
case the paper's Lemma IV.3 allows. Algorithm 1 still hands every correct
process a unique name from [1..N+t-1] = [1..8], in the order of the original
ids, after exactly 3*ceil(log2 t) + 7 = 10 communication rounds.

Run:  python examples/quickstart.py
"""

from repro import OrderPreservingRenaming, SystemParams, run_protocol
from repro.adversary import make_adversary

N, T = 7, 2
ORIGINAL_IDS = [103_441, 55_200, 910_210, 8_118, 77_077, 150_150, 42_424]


def main() -> None:
    params = SystemParams(N, T)
    print(f"N = {N} processes, up to t = {T} Byzantine (N > 3t: "
          f"{params.tolerates_byzantine})")
    print(f"target namespace: [1..{params.namespace_bound}], "
          f"round budget: {params.total_rounds}\n")

    result = run_protocol(
        OrderPreservingRenaming,
        n=N,
        t=T,
        ids=ORIGINAL_IDS,
        adversary=make_adversary("id-forging"),  # strongest id-phase attack
        seed=7,
    )

    print(f"faulty slots picked by the seed: {list(result.byzantine)}")
    print(f"rounds executed: {result.metrics.round_count}\n")
    print(f"{'original id':>12}    new name")
    for original, name in sorted(result.new_names().items()):
        print(f"{original:>12} -> {name}")

    names = result.new_names()
    ordered = sorted(names)
    values = [names[i] for i in ordered]
    assert values == sorted(values), "order preservation violated!"
    assert len(set(values)) == len(values), "uniqueness violated!"
    assert all(1 <= v <= params.namespace_bound for v in values)
    print("\nvalidity, uniqueness and order preservation verified.")


if __name__ == "__main__":
    main()
