#!/usr/bin/env python
"""2-round TDMA slot assignment with Algorithm 4 — when latency is king.

A cluster of 11 radio nodes must pick distinct transmission slots *now*:
every extra agreement round is a full TDMA frame of dead air. The fast
algorithm (Alg. 4) fits the bill when the deployment can guarantee
N > 2t^2 + t (here 11 > 2*4 + 2 = 10): two broadcast rounds — announce,
echo — and every node computes its slot by counting echoes.

The price is the slot space: names land in [1..N^2] = [1..121] instead of a
tight [1..N]; for TDMA that's fine — the frame map is sparse anyway, and
slots stay ordered by node id, so the frequency-hopping schedule derived
from id order remains valid.

The two Byzantine nodes run the selective-echo attack from Lemma VI.1's
worst case, inflating targeted nodes' slots by the maximum 2t^2 = 8 —
absorbed by the N - t = 9 guaranteed gap between consecutive honest slots.

Run:  python examples/tdma_slot_assignment.py
"""

from repro import SystemParams, TwoStepRenaming, run_protocol
from repro.adversary import make_adversary

N, T = 11, 2
NODE_IDS = [1_303, 2_771, 4_042, 4_979, 6_331, 7_177, 8_214, 8_846, 9_555,
            10_203, 11_498]


def main() -> None:
    params = SystemParams(N, T)
    print(f"{N} radio nodes, up to {T} Byzantine "
          f"(fast regime N > 2t^2+t: {params.in_fast_regime})")
    print(f"slot space: [1..{params.fast_namespace_bound}], "
          f"rounds: exactly 2\n")

    result = run_protocol(
        TwoStepRenaming,
        n=N,
        t=T,
        ids=NODE_IDS,
        adversary=make_adversary("selective-echo"),
        seed=99,
    )
    assert result.metrics.round_count == 2

    slots = result.new_names()
    print(f"{'node id':>8}  slot")
    for node in sorted(slots):
        print(f"{node:>8}  {slots[node]:>4}")

    ordered = sorted(slots)
    values = [slots[i] for i in ordered]
    gaps = [b - a for a, b in zip(values, values[1:])]
    assert values == sorted(values) and len(set(values)) == len(values)
    # Within any single node's view consecutive honest slots sit N-t apart
    # (Lemma VI.2); across different nodes' own slots the Byzantine skew of
    # up to 2t^2 (Lemma VI.1) eats into that, leaving the guaranteed
    # cross-node gap of N - t - 2t^2 >= 1 — exactly the regime condition.
    guaranteed = params.fast_min_gap - params.fast_discrepancy_bound
    assert min(gaps) >= guaranteed
    print(f"\nassigned in 2 rounds; minimum inter-slot gap {min(gaps)} >= "
          f"(N-t) - 2t^2 = {guaranteed} — the Lemma VI.2 spacing minus the "
          f"worst Byzantine skew of Lemma VI.1, positive exactly because "
          f"N > 2t^2 + t.")


if __name__ == "__main__":
    main()
