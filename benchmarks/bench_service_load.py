#!/usr/bin/env python
"""Service throughput: concurrent renaming sessions through the daemon.

Standalone capture script (``make bench-service``), not a pytest bench:
the numbers are environment-bound and get checked in to
``benchmarks/results/service_load.txt`` as *expectations*, like the store
throughput capture.

The daemon (:class:`repro.service.server.RenamingService`) and the load
generator (:func:`repro.service.load.run_load`) run in one process over a
loopback socket — real frames, real TCP, real per-session algorithm runs
with the certificate validated server-side *and* re-checked client-side.
Reported per configuration: sessions/s plus p50/p99 session latency.

The ``journal-on`` scenario reruns the sustained shape with every session
carrying an idempotency token through ``--session-journal`` durability
(an fsync'd ``accepted`` + ``completed`` record per session) — the
journal-off line directly above it is the price-of-durability baseline.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.service.journal import SessionJournal  # noqa: E402
from repro.service.load import run_load  # noqa: E402
from repro.service.server import RenamingService  # noqa: E402

#: (label, sessions, concurrency, ids per session, t, attack, journaled)
SCENARIOS = [
    ("burst-small", 400, 100, 8, 0, "silent", False),
    ("burst-wide", 400, 100, 16, 0, "silent", False),
    ("sustained", 1000, 64, 8, 0, "silent", False),
    ("adversarial", 200, 50, 11, 2, "conforming", False),
    ("journal-off", 600, 64, 8, 0, "silent", False),
    ("journal-on", 600, 64, 8, 0, "silent", True),
]


async def run_scenario(label, sessions, concurrency, ids, t, attack, journaled):
    journal = None
    journal_dir = None
    if journaled:
        journal_dir = tempfile.TemporaryDirectory(prefix="bench-journal-")
        journal = SessionJournal.open_or_create(
            Path(journal_dir.name) / "sessions.jsonl"
        )
    service = RenamingService(
        max_sessions=max(concurrency, 64),
        session_deadline_s=30.0,
        idle_timeout_s=30.0,
        install_signal_handlers=False,
        journal=journal,
    )
    await service.start()
    host, port = service.bound_address
    runner = asyncio.create_task(service.serve_forever())
    try:
        report = await run_load(
            host,
            port,
            sessions=sessions,
            concurrency=concurrency,
            ids_per_session=ids,
            t=t,
            attack=attack,
            session_prefix=label if journaled else "",
        )
    finally:
        service.initiate_drain()
        exit_code = await runner
        if journal_dir is not None:
            journal_dir.cleanup()
    if report.exit_code() != 0 or exit_code != 0:
        raise SystemExit(
            f"{label}: load exit {report.exit_code()}, serve exit "
            f"{exit_code}, counts {report.counts}"
        )
    return (
        f"{label:<12} sessions={sessions:<5} conc={concurrency:<4} "
        f"ids={ids:<3} t={t} "
        f"throughput={report.sessions_per_sec:8.1f}/s "
        f"p50={report.p50_s * 1000:7.1f}ms p99={report.p99_s * 1000:7.1f}ms"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "results" / "service_load.txt"),
    )
    args = parser.parse_args()

    lines = [
        "# Renaming-as-a-service load capture (loopback TCP, one host).",
        "# Every session's certificate is validated server-side and the",
        "# assignment re-checked client-side before it counts as complete.",
    ]
    for scenario in SCENARIOS:
        line = asyncio.run(run_scenario(*scenario))
        print(line)
        lines.append(line)
    Path(args.out).write_text("\n".join(lines) + "\n")
    print(f"\nwritten to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
