"""E6 — message complexity (Sections IV-D and VI-B).

Paper claims:

* Alg. 1: ``3⌈log₂ t⌉ + 7`` all-to-all rounds → ``O(N² log t)`` messages of
  at most ``O((N+t−1)(log N_max + log N))`` bits each;
* Alg. 4: exactly ``2N²`` messages of at most ``O(N log N_max)`` bits.

Measured: simulator traffic accounting for both algorithms across a grid.
The exact constants depend on the encoding model (documented in
``repro.sim.messages``), so the table reports measured/claimed ratios —
the *shape* must hold: Alg. 1's per-round messages are ≤ N² and its peak
message ≤ the Section IV-D bit bound; Alg. 4's totals are exactly ``2N²``
link transmissions.
"""

from __future__ import annotations

from bench_utils import once
from repro import (
    OrderPreservingRenaming,
    SystemParams,
    TwoStepRenaming,
    run_protocol,
)
from repro.adversary import make_adversary
from repro.analysis import format_table, parallel_map
from repro.sim.messages import KIND_BITS, RANK_FRACTION_BITS, int_bits
from repro.workloads import DEFAULT_NAMESPACE, make_ids

ALG1_SIZES = [(4, 1), (7, 2), (10, 3), (13, 4), (16, 5)]
ALG4_SIZES = [(4, 1), (11, 2), (22, 3)]


def measure_alg1(n, t, seed=0):
    result = run_protocol(
        OrderPreservingRenaming,
        n=n,
        t=t,
        ids=make_ids("uniform", n, seed=seed),
        adversary=make_adversary("id-forging"),
        seed=seed,
    )
    return result.metrics


def measure_alg4(n, t, seed=0):
    result = run_protocol(
        TwoStepRenaming,
        n=n,
        t=t,
        ids=make_ids("uniform", n, seed=seed),
        adversary=make_adversary("selective-echo"),
        seed=seed,
    )
    return result.metrics


def run_grid():
    alg1 = parallel_map(measure_alg1, ALG1_SIZES)
    alg4 = parallel_map(measure_alg4, ALG4_SIZES)
    return dict(zip(ALG1_SIZES, alg1)), dict(zip(ALG4_SIZES, alg4))


def alg1_peak_bits_bound(n, t):
    """Section IV-D: (N+t-1) entries of (log N_max + log N [+fraction]) bits."""
    params = SystemParams(n, t)
    id_bits = int_bits(DEFAULT_NAMESPACE + 1)
    rank_bits = int_bits(n * n + 1)
    per_entry = id_bits + rank_bits + RANK_FRACTION_BITS
    return KIND_BITS + params.namespace_bound * per_entry


def test_e6_message_complexity(benchmark, publish):
    alg1, alg4 = once(benchmark, run_grid)

    rows1 = []
    for (n, t), metrics in alg1.items():
        params = SystemParams(n, t)
        # The paper's O(N^2 log t) counts one *link batch* per ordered pair
        # per step; steps 2-4 broadcast one control message per id, so the
        # per-message budget is n^2 for the single-broadcast rounds (1 and
        # the voting phase) and n^2 * (N+t-1) for the echo/ready rounds.
        batch_budget = params.total_rounds * n * n
        message_budget = (
            (1 + params.voting_rounds) * n * n
            + 3 * n * n * params.namespace_bound
        )
        peak_bound = alg1_peak_bits_bound(n, t)
        rows1.append([
            n,
            t,
            metrics.round_count,
            metrics.correct_messages,
            batch_budget,
            f"{metrics.correct_messages / batch_budget:.2f}",
            metrics.peak_message_bits,
            peak_bound,
        ])
        assert metrics.correct_messages <= message_budget
        # Every voting round is one RanksMessage broadcast per correct
        # process: exactly (n - t) * n transmissions.
        voting = [
            r for r in metrics.rounds if r.round_no > 4
        ]
        assert all(r.correct_messages == (n - t) * n for r in voting)
        assert metrics.peak_message_bits <= peak_bound

    rows4 = []
    for (n, t), metrics in alg4.items():
        claimed = 2 * n * n
        measured = metrics.correct_messages + metrics.byzantine_messages
        rows4.append([
            n, t, metrics.correct_messages, measured, claimed,
            metrics.peak_message_bits,
        ])
        # Correct processes alone: exactly 2 broadcasts x (N-t) senders x N links.
        assert metrics.correct_messages == 2 * (n - t) * n
        assert measured <= claimed

    publish(
        "e6",
        "E6  Message complexity (Sections IV-D, VI-B)\n"
        "    Alg. 1 under id-forging; Alg. 4 under selective-echo",
        format_table(
            ["n", "t", "rounds", "correct msgs", "N^2-batches budget",
             "msgs/batches", "peak msg bits", "IV-D bit bound"],
            rows1,
        )
        + "\n\n"
        + format_table(
            ["n", "t", "correct msgs", "all msgs", "2N^2 claim",
             "peak msg bits"],
            rows4,
        ),
    )
