"""E12 (extension) — probing the paper's open question empirically.

Section VII asks whether constant-time renaming is possible with better
fault tolerance than ``N > t² + 2t`` (equivalently: is the bound tight?).
We cannot settle a lower bound by experiment, but we *can* decompose which
of the two ingredients of Theorem V.3 actually fails first below the
boundary, by running the 8-round variant (resilience check disabled) for
``N`` descending from the regime edge:

1. **the strong namespace** (Lemma V.1) — dies immediately: one step below
   the boundary the forging budget ``⌊t²/(N−2t)⌋`` becomes positive, the
   saturation attack lands extra ids at every correct process, and names
   spill past ``N``;
2. **the 4-round convergence** (Lemma V.2) — keeps delivering valid
   ``N+t−1`` order-preserving renaming well below the boundary under our
   strongest divergence-sustaining attack, down to the vicinity of ``N ≈ 3t``.

Reading: the `t² + 2t` bound is exactly the *namespace* threshold; the
constant-*time* part appears empirically robust below it, which sharpens
the open question — a better constant-time bound would have to give up the
tight namespace, not convergence speed. (Attack-relative evidence only, of
course: no lower bound is claimed.)
"""

from __future__ import annotations

from functools import partial

from bench_utils import once
from repro import OrderPreservingRenaming, RenamingOptions, SystemParams, run_protocol
from repro.adversary import make_adversary
from repro.analysis import check_renaming, format_table, parallel_map
from repro.workloads import make_ids

T = 3
EDGE = T * T + 2 * T + 1  # 16
ATTACKS = ["id-forging", "divergence-valid"]

EIGHT_ROUND = partial(
    OrderPreservingRenaming,
    options=RenamingOptions(voting_rounds=4, enforce_resilience=False),
)


def probe(n: int):
    params = SystemParams(n, T)
    worst_name = 0
    strong_ok = True
    weak_ok = True
    for attack in ATTACKS:
        for seed in (0, 1, 2):
            result = run_protocol(
                EIGHT_ROUND,
                n=n,
                t=T,
                ids=make_ids("uniform", n, seed=seed),
                adversary=make_adversary(attack),
                seed=seed,
            )
            strong = check_renaming(result, n)
            weak = check_renaming(result, params.namespace_bound)
            strong_ok = strong_ok and strong.ok
            weak_ok = weak_ok and weak.ok
            worst_name = max(worst_name, max(strong.names.values()))
    return worst_name, strong_ok, weak_ok, params


def run_grid():
    sizes = range(3 * T + 1, EDGE + 2)
    return dict(zip(sizes, parallel_map(probe, [(n,) for n in sizes])))


def test_e12_open_question(benchmark, publish):
    grid = once(benchmark, run_grid)

    rows = []
    for n, (worst_name, strong_ok, weak_ok, params) in grid.items():
        in_regime = n > T * T + 2 * T
        rows.append([
            n,
            "in" if in_regime else "below",
            worst_name,
            n,
            params.accepted_bound,
            "yes" if strong_ok else "no",
            "yes" if weak_ok else "no",
        ])
        if in_regime:
            assert strong_ok and worst_name <= n
        else:
            # Below the regime the saturation attack must push names past N
            # exactly as the forging budget predicts...
            assert worst_name == params.accepted_bound
            assert worst_name > n
            # ...while the 8-round schedule still yields correct
            # (N + t - 1)-renaming under every attack tried.
            assert weak_ok

    publish(
        "e12",
        f"E12  Open question probe (t={T}): what fails below N = t^2+2t+1?\n"
        "    8-round variant, strongest attacks; 'strong' = namespace N,\n"
        "    'weak' = namespace N+t-1 with order preservation",
        format_table(
            ["n", "regime", "worst name", "strong bound N",
             "forging bound", "strong renaming", "weak renaming"],
            rows,
        ),
    )
