"""E9 — ablations: every defense, removed, fails against its attack.

The correctness section motivates three design elements; each ablation pairs
the element with the attack it exists to stop:

* **E9a** — drop the ``isValid`` vote filter (Alg. 2): the divergence +
  zigzag-vote attack drives adjacent AA instances together and breaks
  uniqueness/order. Full algorithm: unaffected.
* **E9b** — drop Alg. 4's ``min(counter, N−t)`` clamp: selective counter
  boosting inflates targeted offsets linearly in ``N`` and breaks order.
  Full algorithm: unaffected.
* **E9c** — truncate the voting phase below Lemma IV.9's schedule: the
  valid-vote divergence-sustaining attack leaves adjacent rounded ranks
  colliding. Full schedule: unaffected.

Also recorded (E9d): the δ-stretch ablation does *not* visibly break at
laptop scales — its role is the analytic rounding margin ((δ−1)/2 → 0);
see EXPERIMENTS.md finding F4.
"""

from __future__ import annotations

from functools import partial

from bench_utils import once
from repro import (
    OrderPreservingRenaming,
    RenamingOptions,
    TwoStepOptions,
    TwoStepRenaming,
    run_protocol,
)
from repro.adversary import make_adversary
from repro.analysis import check_renaming, format_table, parallel_map
from repro.workloads import make_ids

SEEDS = range(6)


def breakage(factory, n, t, attack, namespace):
    broken = 0
    for seed in SEEDS:
        result = run_protocol(
            factory,
            n=n,
            t=t,
            ids=make_ids("uniform", n, seed=seed),
            adversary=make_adversary(attack),
            seed=seed,
        )
        report = check_renaming(result, namespace)
        if not (report.uniqueness and report.order_preservation):
            broken += 1
    return broken / len(SEEDS)


def run_grid():
    cases = {
        ("E9a", "isValid filter", "divergence"): (
            OrderPreservingRenaming,
            partial(
                OrderPreservingRenaming,
                options=RenamingOptions(validate_votes=False),
            ),
            (7, 2),
            8,
        ),
        ("E9b", "offset clamp", "selective-echo-starve"): (
            TwoStepRenaming,
            partial(TwoStepRenaming, options=TwoStepOptions(clamp_offsets=False)),
            (11, 2),
            121,
        ),
        ("E9c", "voting schedule", "divergence-valid"): (
            OrderPreservingRenaming,
            partial(
                OrderPreservingRenaming,
                options=RenamingOptions(voting_rounds=1),
            ),
            (7, 2),
            8,
        ),
        ("E9d", "delta stretch", "divergence-valid"): (
            OrderPreservingRenaming,
            partial(
                OrderPreservingRenaming, options=RenamingOptions(stretch=False)
            ),
            (7, 2),
            8,
        ),
    }
    # One cell per (variant, case): the full and ablated runs of every case
    # fan out together; partials of module-level classes pickle under fork.
    cells = [
        (factory, n, t, attack, ns)
        for (exp, defense, attack), (full, ablated, (n, t), ns) in cases.items()
        for factory in (full, ablated)
    ]
    fractions = parallel_map(breakage, cells)
    results = {}
    for index, (key, (_, _, size, _)) in enumerate(cases.items()):
        results[key] = (fractions[2 * index], fractions[2 * index + 1], size)
    return results


def test_e9_ablations(benchmark, publish):
    results = once(benchmark, run_grid)

    rows = []
    for (exp, defense, attack), (full, ablated, (n, t)) in results.items():
        rows.append([
            exp, defense, attack, n, t, f"{full:.2f}", f"{ablated:.2f}",
        ])
        assert full == 0.0, f"{exp}: full algorithm broke under {attack}"
        if exp in ("E9a", "E9b", "E9c"):
            assert ablated == 1.0, f"{exp}: ablation did not break"
        else:  # E9d: analytic-only defense — recorded, not load-bearing here
            assert ablated == 0.0

    publish(
        "e9",
        "E9  Ablations — breakage fraction (uniqueness/order) over 6 seeds\n"
        "    E9d (delta stretch) is analytic-only at these scales: finding F4",
        format_table(
            ["exp", "defense removed", "attack", "n", "t",
             "full algorithm broken", "ablated broken"],
            rows,
        ),
    )
