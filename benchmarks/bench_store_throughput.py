#!/usr/bin/env python
"""Store-fabric throughput: claim cycles, streamed rows, bounded memory.

Standalone capture script (``make bench-store``), not a pytest bench: the
numbers are environment-bound and get checked in to
``benchmarks/results/store_throughput.txt`` as *expectations*, the way the
E10 engine-scaling capture is.

Three measurements, on synthetic no-op cells so the store is the only
thing timed:

* **claim cycles/s** — full lease lifecycles (claim → finish) through each
  backend at 10k cells: the fabric's scheduling overhead ceiling. Cells
  that cost less than ``1/rate`` seconds should not go on that store.
* **streamed rows/s** — coordinator-side decode of an already-complete
  10k-cell store: the read path a resume or a report regeneration pays.
* **bounded memory** — a 50k-cell store streamed through a running
  aggregation while sampling RSS: the peak growth over baseline must stay
  flat (O(1) rows held), not proportional to the row count.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.coordinator import Coordinator  # noqa: E402
from repro.analysis.store import (  # noqa: E402
    LocalDirStore,
    SqliteStore,
)
from repro.analysis.supervisor import rss_mb_of  # noqa: E402
from repro.analysis.worker import RUNNERS, CellRunner  # noqa: E402

#: Synthetic no-op run kind: decode/execute/encode are identity-shaped, so
#: every measured second is store time, not simulation time.
RUNNERS.setdefault(
    "synthetic",
    CellRunner(
        kind="synthetic",
        decode=lambda payload: payload,
        execute=lambda task: {"cell": task["cell"], "value": task["cell"] * 3},
        encode=lambda result, attempts: result,
        failure=lambda task, detail, attempts: {"failed": True,
                                                "detail": detail},
        failure_state="failed",
        budget_failure=lambda task, kind, detail: {"failed": True,
                                                   "detail": detail},
        decode_row=lambda task, payload: payload,
        lease_row=lambda task, reason: {"failed": True, "detail": reason},
        set_retries=lambda payload, attempts: payload,
    ),
)


def make_store(backend: str, root: Path):
    if backend == "dir":
        return LocalDirStore(root / "store")
    return SqliteStore(root / "store.sqlite")


def seeded(backend: str, root: Path, cells: int):
    store = make_store(backend, root)
    store.seed(
        kind="synthetic", run_id=f"bench-{backend}", fingerprint="bench",
        cells=[{"cell": i} for i in range(cells)],
    )
    return store


def bench_claim_cycles(backend: str, cells: int) -> float:
    """Full claim→finish lifecycles per second."""
    with tempfile.TemporaryDirectory() as tmp:
        store = seeded(backend, Path(tmp), cells)
        start = time.perf_counter()
        while True:
            claim = store.claim("bench")
            if claim is None:
                break
            store.finish(claim, {"cell": claim.cell,
                                 "value": claim.cell * 3})
        elapsed = time.perf_counter() - start
        assert store.complete
        return cells / elapsed


def bench_stream_rows(backend: str, cells: int) -> float:
    """Coordinator-side decoded rows per second from a complete store."""
    with tempfile.TemporaryDirectory() as tmp:
        store = seeded(backend, Path(tmp), cells)
        for index in range(cells):
            store.write_terminal(
                index, "finished", {"cell": index, "value": index * 3}
            )
        coordinator = Coordinator(store)
        grid = [{"cell": i} for i in range(cells)]
        start = time.perf_counter()
        count = 0
        for _ in coordinator.stream(
            "synthetic", grid, fingerprint="bench"
        ):
            count += 1
        elapsed = time.perf_counter() - start
        assert count == cells
        return cells / elapsed


def bench_bounded_memory(backend: str, cells: int):
    """Stream ``cells`` rows through a running aggregation, sampling RSS.

    Returns (rows, aggregate, baseline_mb, peak_growth_mb). The growth is
    the bounded-memory claim: it must not scale with ``cells``.
    """
    with tempfile.TemporaryDirectory() as tmp:
        store = seeded(backend, Path(tmp), cells)
        for index in range(cells):
            store.write_terminal(
                index, "finished", {"cell": index, "value": index * 3}
            )
        coordinator = Coordinator(store)
        grid = [{"cell": i} for i in range(cells)]
        baseline = rss_mb_of(os.getpid()) or 0.0
        peak = baseline
        total = 0
        count = 0
        for row in coordinator.stream(
            "synthetic", grid, fingerprint="bench"
        ):
            total += row["value"]
            count += 1
            if count % 5000 == 0:
                peak = max(peak, rss_mb_of(os.getpid()) or 0.0)
        peak = max(peak, rss_mb_of(os.getpid()) or 0.0)
        assert count == cells
        assert total == 3 * cells * (cells - 1) // 2
        return count, total, baseline, peak - baseline


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=10_000,
                        help="grid size for the throughput measurements")
    parser.add_argument("--demo-cells", type=int, default=50_000,
                        help="grid size for the bounded-memory streaming "
                             "demo (sqlite backend)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the table to PATH")
    args = parser.parse_args()

    lines = [
        f"Store fabric throughput — synthetic no-op cells, "
        f"{args.cells} cells per measurement",
        "",
        "backend  claim cycles/s  streamed rows/s",
        "-------  --------------  ---------------",
    ]
    for backend in ("dir", "sqlite"):
        cycles = bench_claim_cycles(backend, args.cells)
        rows = bench_stream_rows(backend, args.cells)
        lines.append(f"{backend:7}  {cycles:14.0f}  {rows:15.0f}")
        print(lines[-1], flush=True)

    count, total, baseline, growth = bench_bounded_memory(
        "sqlite", args.demo_cells
    )
    lines += [
        "",
        f"Bounded-memory streaming demo (sqlite, {count} cells):",
        f"  aggregate checksum: {total}",
        f"  RSS baseline {baseline:.1f} MB, peak growth +{growth:.1f} MB "
        f"while streaming {count} rows",
        "",
        "Reading the numbers: claim cycles/s is the fabric's scheduling",
        "ceiling — a cell cheaper than 1/rate seconds is dominated by",
        "store overhead and belongs on the in-process pool instead.",
        "Simulation cells run for milliseconds to seconds, orders of",
        "magnitude above it. Peak RSS growth must stay flat as cells",
        "grow: the coordinator holds one decoded row at a time.",
    ]
    output = "\n".join(lines) + "\n"
    if args.out:
        Path(args.out).write_text(output)
        print(f"wrote {args.out}")
    else:
        print(output)

    # The bounded-memory claim, enforced: 50k tiny rows held all at once
    # would cost hundreds of MB; streaming must stay within a small
    # constant envelope.
    if growth > 64.0:
        print(f"FAIL: streaming RSS grew {growth:.1f} MB", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
