"""E3 — Lemmas IV.8/IV.9: per-round AA contraction by σ_t = ⌊(N−2t)/t⌋ + 1.

Paper claims:

* each voting round shrinks the spread of correct ranks for any timely id by
  at least σ_t, with new values inside the old correct range (Lemma IV.8);
* after the scheduled ``3⌈log₂ t⌉ + 3`` voting rounds the spread is small
  enough that rounding cannot break order (Lemma IV.9) — with the caveat,
  recorded in DESIGN.md §8 and EXPERIMENTS.md, that the paper's numeric
  chain to (δ−1)/2 is loose for t ∈ {1, 2, 4} at minimal resilience, while
  the weaker inversion-excluding bound (< δ) holds for every t.

Measured: worst per-id spread of correct ranks after every voting round
under the divergence-sustaining attack (the slowest-converging traffic the
validation filter admits), plus the standalone DLPSW AA primitive's
realised contraction factor under rank-skew.
"""

from __future__ import annotations

from fractions import Fraction

from bench_utils import once
from repro import OrderPreservingRenaming, SystemParams, run_protocol
from repro.adversary import make_adversary
from repro.agreement import initial_values_factory
from repro.analysis import format_table, log_curve, parallel_map
from repro.workloads import make_ids


def rank_spreads(n, t, attack, seed=0):
    """Max spread (over correct ids) of correct processes' ranks per round."""
    from repro.analysis import spread_series

    result = run_protocol(
        OrderPreservingRenaming,
        n=n,
        t=t,
        ids=make_ids("uniform", n, seed=seed),
        adversary=make_adversary(attack),
        seed=seed,
        collect_trace=True,
    )
    params = SystemParams(n, t)
    series = spread_series(result)
    spreads = [series[round_no] for round_no in sorted(series)]
    return params, spreads


def aa_contraction(n, t, rounds=5, seed=0):
    """Realised per-round contraction of the standalone AA primitive."""
    ids = make_ids("uniform", n, seed=seed)
    lo, hi = Fraction(0), Fraction(100)
    values = {
        identifier: lo + (hi - lo) * index // (n - 1)
        for index, identifier in enumerate(ids)
    }
    result = run_protocol(
        initial_values_factory(values, rounds=rounds),
        n=n,
        t=t,
        ids=ids,
        adversary=make_adversary("value-split"),
        seed=seed,
    )
    correct_inputs = [values[result.ids[i]] for i in result.correct]
    initial = max(correct_inputs) - min(correct_inputs)
    outputs = [result.outputs[i] for i in result.correct]
    final = max(outputs) - min(outputs)
    if final == 0:
        return float("inf")
    return float((initial / final) ** Fraction(1, rounds))


def run_measurements():
    spread_sizes = [(7, 2), (10, 3), (13, 4)]
    # (4, 1) and (8, 2) are the t | N-2t cases where the paper's sigma
    # formula overcounts — the measured rate lands between realized_sigma
    # and sigma there.
    aa_sizes = [(4, 1), (7, 2), (8, 2), (10, 3), (13, 3)]
    per_round = dict(
        zip(
            spread_sizes,
            parallel_map(
                rank_spreads,
                [(n, t, "divergence-valid") for n, t in spread_sizes],
            ),
        )
    )
    aa = dict(zip(aa_sizes, parallel_map(aa_contraction, aa_sizes)))
    return per_round, aa


def test_e3_convergence(benchmark, publish):
    per_round, aa = once(benchmark, run_measurements)

    rows = []
    for (n, t), (params, spreads) in per_round.items():
        initial = spreads[0]
        final = spreads[-1]
        rows.append([
            n,
            t,
            params.sigma,
            f"{float(initial):.3f}",
            f"{float(final):.2e}",
            f"{float(params.initial_spread_bound):.3f}",
            f"{float(params.delta):.4f}",
            "yes" if final < params.delta else "no",
        ])
        # Lemma IV.7 bound on the initial spread; Lemma IV.8/IV.9 outcomes.
        assert initial <= params.initial_spread_bound
        assert final < params.delta  # inversion excluded for every t
        if spreads[0] > 0:
            # Overall contraction at least sigma^(rounds) within slack.
            assert final <= initial / params.sigma ** (len(spreads) - 2)

    aa_rows = []
    for (n, t), factor in aa.items():
        params = SystemParams(n, t)
        aa_rows.append([
            n, t, params.sigma, params.realized_sigma, f"{factor:.2f}",
            "yes" if factor >= params.realized_sigma else "no",
        ])
        # The implementation guarantees the realised rate (= the number of
        # selected elements); the paper's formula overcounts by one when
        # t | N-2t — finding F2 in EXPERIMENTS.md.
        assert factor >= params.realized_sigma

    # Figure: per-round spread at (7, 2) on a log scale — a straight
    # staircase is the claimed geometric contraction.
    params7, spreads7 = per_round[(7, 2)]
    figure = log_curve(
        {
            f"round {round_no}": spread
            for round_no, spread in enumerate(spreads7, start=4)
        }
    )

    publish(
        "e3",
        "E3  Lemmas IV.8/IV.9 — voting-phase convergence\n"
        "    top: Alg. 1 rank spread under the divergence-sustaining attack\n"
        "    middle: spread-per-round at (n=7, t=2), log scale\n"
        "    bottom: standalone DLPSW AA realised per-round contraction",
        format_table(
            ["n", "t", "sigma", "initial spread", "final spread",
             "Lemma IV.7 bound", "delta", "final < delta"],
            rows,
        )
        + "\n\n"
        + figure
        + "\n\n"
        + format_table(
            ["n", "t", "sigma (paper)", "sigma (realized)",
             "measured contraction/round", ">= realized"],
            aa_rows,
        ),
    )
