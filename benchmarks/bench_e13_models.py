"""E13 — system-model degradation: each algorithm against each model axis.

The model axes (see :mod:`repro.sim.model` and docs/model.md) relax the
paper's system assumptions one at a time; this experiment records how each
algorithm's property profile responds, over 10 seeds per cell:

* **E13a** — impersonation (Okun-style forged-sender frames). Forged
  frames replay real traffic, which only *reinforces* Alg. 1's echo/ready
  thresholds — all four properties survive even at k = 6, and termination
  (the model's one guarantee) must never break.
* **E13b** — partial synchrony (per-transmission omission/delay). The
  floodset baseline rides out light loss via its redundant re-flooding;
  quorum-schedule algorithms (alg1, okun-crash) instead trip their typed
  in-run invariants — detection, not silent corruption — and cht degrades
  into property reports. No guarantees exist here; the interesting number
  is the clean-run fraction per loss rate.

Every cell outcome is a property report or a typed SimulationError —
anything else is a harness bug and fails the experiment.
"""

from __future__ import annotations

from bench_utils import once
from repro.analysis import format_table, parallel_map, run_experiment
from repro.sim import SimulationError, SystemModel
from repro.workloads import make_ids

SEEDS = range(10)

#: (exp, algorithm, n, t, model) — the E13 grid.
CELLS = [
    ("E13a", "alg1", 7, 2, SystemModel.impersonation(2)),
    ("E13a", "alg1", 7, 2, SystemModel.impersonation(6)),
    ("E13a", "okun-crash", 5, 1, SystemModel.impersonation(2)),
    ("E13a", "floodset", 5, 1, SystemModel.impersonation(2)),
    ("E13b", "floodset", 7, 2, SystemModel.partial_synchrony(0.05, max_delay=2)),
    ("E13b", "floodset", 7, 2, SystemModel.partial_synchrony(0.15, max_delay=2)),
    ("E13b", "cht", 7, 2, SystemModel.partial_synchrony(0.05, max_delay=2)),
    ("E13b", "alg1", 7, 2, SystemModel.partial_synchrony(0.05, max_delay=2)),
]


def run_cell(exp, algorithm, n, t, model):
    """10 seeded runs of one (algorithm, model) cell, outcomes tallied."""
    expectations = model.expectations()
    ok = degraded = errors = unexpected = injected = 0
    for seed in SEEDS:
        try:
            record = run_experiment(
                algorithm, n, t, make_ids("uniform", n, seed=seed),
                attack="silent", seed=seed, model=model, max_rounds=200,
            )
        except SimulationError:
            errors += 1
            continue
        report = record.report
        injected += sum(report.injected.values())
        if report.ok:
            ok += 1
        else:
            degraded += 1
            verdicts = expectations.classify(report.broken)
            unexpected += sum(
                1 for verdict in verdicts.values() if verdict == "unexpected"
            )
    return ok, degraded, errors, unexpected, injected / len(SEEDS)


def run_grid():
    return parallel_map(run_cell, CELLS)


def test_e13_models(benchmark, publish):
    outcomes = once(benchmark, run_grid)

    rows = []
    for (exp, algorithm, n, t, model), tallied in zip(CELLS, outcomes):
        ok, degraded, errors, unexpected, mean_injected = tallied
        rows.append([
            exp, algorithm, model.describe(), n, t,
            f"{ok}/{len(SEEDS)}", degraded, errors, f"{mean_injected:.0f}",
        ])
        # The typed-outcome contract: every seed is accounted for.
        assert ok + degraded + errors == len(SEEDS), (algorithm, model)
        # A guaranteed property breaking inside the bound is a finding.
        assert unexpected == 0, (algorithm, model.describe())

    by_cell = dict(zip([c[:5] for c in CELLS], outcomes))
    # Forged frames replay real traffic: alg1 rides out impersonation clean.
    assert by_cell[("E13a", "alg1", 7, 2, SystemModel.impersonation(2))][0] == len(SEEDS)
    assert by_cell[("E13a", "alg1", 7, 2, SystemModel.impersonation(6))][0] == len(SEEDS)
    # Floodset's redundant re-flooding rides out light loss.
    light = ("E13b", "floodset", 7, 2, SystemModel.partial_synchrony(0.05, max_delay=2))
    assert by_cell[light][0] == len(SEEDS)

    publish(
        "e13",
        "E13 System models — per-cell outcomes over 10 seeds\n"
        "    ok = all four properties held; degraded = run finished, a\n"
        "    degradable property broke; error = typed in-run detection",
        format_table(
            ["exp", "algorithm", "model", "n", "t",
             "ok", "degraded", "errors", "mean injections"],
            rows,
        ),
    )
