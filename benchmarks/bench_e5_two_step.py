"""E5 — Theorem VI.3 / Lemmas VI.1–VI.2: the 2-step algorithm.

Paper claims, for ``N > 2t² + t``:

* renaming in exactly 2 rounds with namespace ``N²``, order preserved;
* the per-id new-name discrepancy across correct processes is ``Δ ≤ 2t²``
  (Lemma VI.1) and consecutive correct names sit ``≥ N − t`` apart
  (Lemma VI.2) — the regime condition is exactly ``N − t > 2t²``.

Measured: (a) properties + measured Δ and minimum gap at in-regime sizes
under the selective-echo worst case (Δ should hit exactly ``2t²``);
(b) the crossover — running the same attack *below* the regime boundary
(resilience check disabled) breaks order preservation, locating the
threshold the theorem predicts.
"""

from __future__ import annotations

from functools import partial

from bench_utils import once
from repro import SystemParams, TwoStepOptions, TwoStepRenaming, run_protocol
from repro.adversary import make_adversary
from repro.analysis import check_renaming, format_table, parallel_map, step_curve
from repro.workloads import make_ids

IN_REGIME = [(4, 1), (11, 2), (12, 2), (22, 3)]


def measure_in_regime(n, t):
    params = SystemParams(n, t)
    worst_delta = 0
    min_gap = None
    ok = True
    for seed in (0, 1):
        result = run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=make_ids("uniform", n, seed=seed),
            adversary=make_adversary("selective-echo"),
            seed=seed,
        )
        report = check_renaming(result, params.fast_namespace_bound)
        ok = ok and report.ok
        correct_ids = sorted(result.ids[i] for i in result.correct)
        estimates = {}
        for index in result.correct:
            for identifier, name in result.processes[index].new_names.items():
                estimates.setdefault(identifier, []).append(name)
        for identifier in correct_ids:
            values = estimates[identifier]
            worst_delta = max(worst_delta, max(values) - min(values))
        for index in result.correct:
            names = result.processes[index].new_names
            for smaller, larger in zip(correct_ids, correct_ids[1:]):
                gap = names[larger] - names[smaller]
                min_gap = gap if min_gap is None else min(min_gap, gap)
    return ok, worst_delta, min_gap


def broken_fraction(n, t=2, seeds=6):
    """Order-broken fraction at one N (resilience check disabled)."""
    options = TwoStepOptions(enforce_resilience=False)
    broken = 0
    for seed in range(seeds):
        result = run_protocol(
            partial(TwoStepRenaming, options=options),
            n=n,
            t=t,
            ids=make_ids("uniform", n, seed=seed),
            adversary=make_adversary("selective-echo"),
            seed=seed,
        )
        report = check_renaming(result, n * n)
        if not report.order_preservation:
            broken += 1
    return broken / seeds


def crossover(t=2, seeds=6):
    """Fraction of order-broken runs as N crosses 2t^2 + t."""
    sizes = range(7, 14)
    return dict(
        zip(sizes, parallel_map(broken_fraction, [(n, t, seeds) for n in sizes]))
    )


def run_all():
    in_regime = parallel_map(measure_in_regime, IN_REGIME)
    return dict(zip(IN_REGIME, in_regime)), crossover()


def test_e5_theorem_vi3(benchmark, publish):
    in_regime, cross = once(benchmark, run_all)

    rows = []
    for (n, t), (ok, delta, gap) in in_regime.items():
        params = SystemParams(n, t)
        rows.append([
            n, t, "yes" if ok else "no", delta, params.fast_discrepancy_bound,
            gap, params.fast_min_gap,
        ])
        assert ok
        assert delta <= params.fast_discrepancy_bound
        assert gap >= params.fast_min_gap

    threshold = 2 * 2 * 2 + 2  # 2t^2 + t at t=2
    cross_rows = [
        [n, "in" if n > threshold else "out", f"{fraction:.2f}"]
        for n, fraction in cross.items()
    ]
    # Above the threshold the attack never breaks order; at/below it does.
    for n, fraction in cross.items():
        if n > threshold:
            assert fraction == 0.0, f"order broke in-regime at n={n}"
    assert any(f > 0 for n, f in cross.items() if n <= threshold)

    publish(
        "e5",
        "E5  Theorem VI.3 — 2-step renaming, Delta <= 2t^2, gap >= N-t\n"
        "    bottom: order-violation rate across the N > 2t^2 + t boundary "
        "(t=2, threshold N=10, selective-echo attack)",
        format_table(
            ["n", "t", "all-props-ok", "measured Delta", "2t^2 bound",
             "min gap", "N-t bound"],
            rows,
        )
        + "\n\n"
        + format_table(["n", "regime", "order-broken fraction"], cross_rows)
        + "\n\nfigure: order-violation rate vs N (t=2; threshold at N=10)\n"
        + step_curve(
            {f"N={n}": fraction for n, fraction in cross.items()},
            lo=0.0,
            hi=1.0,
        ),
    )
