"""E4 — Theorem V.3 / Lemmas V.1–V.2: constant-time strong renaming.

Paper claims, for ``N > t² + 2t``:

* the id-selection bound collapses to exactly ``N`` — Byzantine processes
  cannot introduce a single extra id (Lemma V.1), so the namespace is the
  optimal ``N`` (strong renaming);
* 4 voting rounds suffice — 8 rounds total, independent of ``t``
  (Lemma V.2 / Theorem V.3).

Measured: for each ``t``, runs at the exact regime boundary
``N = t² + 2t + 1`` under the strongest attacks; the table reports the
achieved namespace vs ``N``, the accepted-set size under the forging attack,
the total rounds (always 8), and the post-voting rank spread vs the
``(δ−1)/2`` target of Lemma V.2.
"""

from __future__ import annotations

from bench_utils import once
from repro import ConstantTimeRenaming, SystemParams, run_protocol
from repro.adversary import make_adversary
from repro.analysis import check_renaming, format_table, parallel_map
from repro.workloads import make_ids

ATTACKS = ["id-forging", "divergence-valid", "boundary-votes", "rank-skew"]


def measure(t: int):
    n = t * t + 2 * t + 1
    params = SystemParams(n, t)
    worst_name = 0
    worst_accepted = 0
    worst_spread = 0
    rounds = set()
    all_ok = True
    for attack in ATTACKS:
        for seed in (0, 1):
            result = run_protocol(
                ConstantTimeRenaming,
                n=n,
                t=t,
                ids=make_ids("uniform", n, seed=seed),
                adversary=make_adversary(attack),
                seed=seed,
                collect_trace=True,
            )
            report = check_renaming(result, n)
            all_ok = all_ok and report.ok
            worst_name = max(worst_name, max(report.names.values()))
            rounds.add(result.metrics.round_count)
            for event in result.trace.select(event="accepted"):
                if event.process in result.correct:
                    worst_accepted = max(worst_accepted, len(event.detail))
            correct_ids = {result.ids[i] for i in result.correct}
            snapshots = [
                e.detail
                for e in result.trace.select(event="ranks", round_no=8)
                if e.process in result.correct
            ]
            spread = max(
                max(s[i] for s in snapshots) - min(s[i] for s in snapshots)
                for i in correct_ids
            )
            worst_spread = max(worst_spread, spread)
    return n, params, all_ok, worst_name, worst_accepted, rounds, worst_spread


def run_grid():
    fault_bounds = (1, 2, 3)
    return dict(
        zip(fault_bounds, parallel_map(measure, [(t,) for t in fault_bounds]))
    )


def test_e4_theorem_v3(benchmark, publish):
    grid = once(benchmark, run_grid)

    rows = []
    for t, (n, params, ok, name, accepted, rounds, spread) in grid.items():
        target = params.convergence_target
        rows.append([
            t,
            n,
            "yes" if ok else "no",
            name,
            n,
            accepted,
            sorted(rounds)[0],
            f"{float(spread):.2e}",
            f"{float(target):.2e}",
            "yes" if spread < target else "NO (see finding F3)",
        ])
        assert ok
        assert name <= n  # strong namespace (Lemma V.1)
        assert accepted == n  # forging adds nothing
        assert rounds == {8}
        # Reproduction finding F3 (EXPERIMENTS.md): at the t=1 boundary the
        # measured spread equals delta-1 — twice Lemma V.2's target — because
        # the realised contraction is select-count = 2 per round, not the
        # paper's sigma = 3. The names stay safe because distinct rounding
        # only needs spread <= delta - 1.
        assert spread <= params.rounding_safety_bound

    publish(
        "e4",
        "E4  Theorem V.3 — strong renaming in 8 rounds for N > t^2 + 2t\n"
        f"    attacks: {', '.join(ATTACKS)}; runs at the boundary N = t^2+2t+1",
        format_table(
            ["t", "N", "all-props-ok", "max name", "strong bound",
             "max |accepted|", "rounds", "final spread", "(delta-1)/2 target",
             "meets Lemma V.2 target"],
            rows,
        ),
    )
