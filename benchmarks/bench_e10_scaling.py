"""E10 (extension) — wall-clock scaling of the simulator and algorithms.

Not a paper claim; an engineering ablation of the reproduction itself. It
pins down (a) that a full Alg. 1 run at realistic sizes is milliseconds —
so every experiment sweep in E1–E9 is cheap — (b) how runtime scales
with N for each algorithm (Alg. 1's exact-Fraction arithmetic is the main
cost; Alg. 4 is near-free; EIG's tree explodes with t, which is the paper's
point in CPU form), and (c) what the batched and vector engines buy over
the reference engine: the registered algorithms are protocol-bound, so
their gain is modest, while the substrate-bound flood workload isolates
the simulator's own per-message cost and shows the full batched speedup —
and the vector engine's asymptotic win (O(n) vs O(n²) Python work per
broadcast round) on top of it.

These are true repeated-timing benchmarks (pytest-benchmark statistics are
meaningful here, unlike the deterministic one-shot table benches).
"""

from __future__ import annotations

import time

import pytest

from bench_utils import once
from repro import (
    OrderPreservingRenaming,
    TwoStepRenaming,
    run_protocol,
)
from repro.adversary import make_adversary
from repro.analysis import SweepConfig, run_sweep
from repro.baselines import consensus_renaming_factory
from repro.core.messages import IdMessage
from repro.sim import Process, engine_names
from repro.workloads import make_ids

ENGINES = tuple(engine_names())


def alg1_run(n, t, seed=0, engine="batched"):
    return run_protocol(
        OrderPreservingRenaming,
        n=n,
        t=t,
        ids=make_ids("uniform", n, seed=seed),
        adversary=make_adversary("id-forging"),
        seed=seed,
        engine=engine,
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("n,t", [(7, 2), (13, 4), (25, 8)])
def test_e10_alg1_scaling(benchmark, n, t, engine):
    result = benchmark(alg1_run, n, t, 0, engine)
    assert len(result.new_names()) == n - t


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("n,t", [(11, 2), (22, 3), (37, 4)])
def test_e10_alg4_scaling(benchmark, n, t, engine):
    def run():
        return run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=make_ids("uniform", n, seed=0),
            adversary=make_adversary("selective-echo"),
            seed=0,
            engine=engine,
        )

    result = benchmark(run)
    assert result.metrics.round_count == 2


class SubstrateFlood(Process):
    """All-to-all broadcast with near-zero protocol work.

    Every registered algorithm spends its time in protocol arithmetic
    (Fractions, echo validation), which both engines pay identically — so
    this deliberately trivial protocol is what isolates the simulator
    substrate (routing, delivery, metrics accounting) that the batched
    engine optimises. Ten rounds — Alg. 1's actual schedule length at small
    sizes — so per-round cost dominates per-run setup.
    """

    ROUNDS = 10

    def send(self, round_no):
        return self.broadcast(IdMessage(self.ctx.my_id))

    def deliver(self, round_no, inbox):
        if round_no == self.ROUNDS:
            self.output_value = self.ctx.my_id


def flood_run(n, engine):
    return run_protocol(
        SubstrateFlood,
        n=n,
        t=0,
        ids=list(range(1, n + 1)),
        seed=0,
        engine=engine,
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("n", [100, 200, 400])
def test_e10_substrate_scaling(benchmark, n, engine):
    """Single timed run per cell — at n=400 each round is 160k deliveries,
    so statistical repetition would only re-measure the same deterministic
    run at great expense."""
    result = once(benchmark, lambda: flood_run(n, engine))
    assert result.metrics.correct_messages == SubstrateFlood.ROUNDS * n * n


def test_e10_substrate_speedup(publish):
    """Record the engine comparison table and gate the batched speedup.

    The ≥2× floor at the largest size is deliberately below the ~3.9×
    measured on an idle box: the bench must catch a substrate regression
    without flaking on a loaded CI runner.
    """
    rows = []
    ratio_at_largest = None
    for n in (100, 200, 400):
        timings = {}
        for engine in ENGINES:
            best = float("inf")
            for _ in range(2):
                start = time.perf_counter()
                flood_run(n, engine)
                best = min(best, time.perf_counter() - start)
            timings[engine] = best
        ratio = timings["reference"] / timings["batched"]
        ratio_at_largest = ratio
        rows.append(
            f"{n:>4}  {timings['reference']:>9.3f}  "
            f"{timings['batched']:>8.3f}  {ratio:>6.2f}x"
        )
    body = "\n".join(
        ["   n  reference   batched   ratio", *rows]
    )
    publish(
        "e10",
        "E10 — substrate flood (10 rounds of all-to-all broadcast), "
        "reference vs batched engine, best of 2",
        body,
    )
    assert ratio_at_largest >= 2.0


def test_e10_vector_speedup(publish):
    """Record the vector-engine scaling table and gate its speedup.

    The vector engine's dense broadcast layer makes the flood workload
    O(n) Python operations per round against batched's O(n²), so the
    ratio *grows* with n — measured ~10× at n=400 and climbing past 30×
    at n=1000 on an idle box. The ≥5× floor at n=400 leaves headroom for
    loaded CI runners while still catching any regression that
    reintroduces per-recipient fan-out. n=1000 (batched vs vector only;
    the reference engine would dominate the bench's own runtime) records
    the asymptotic gap.
    """
    if "vector" not in ENGINES:
        pytest.skip("numpy not installed — vector engine unavailable")
    rows = []
    ratio_at_400 = None
    for n in (100, 200, 400):
        timings = {}
        for engine in ENGINES:
            best = float("inf")
            for _ in range(2):
                start = time.perf_counter()
                flood_run(n, engine)
                best = min(best, time.perf_counter() - start)
            timings[engine] = best
        ratio = timings["batched"] / timings["vector"]
        if n == 400:
            ratio_at_400 = ratio
        rows.append(
            f"{n:>5}  {timings['reference']:>9.3f}  {timings['batched']:>8.3f}"
            f"  {timings['vector']:>7.3f}  {ratio:>6.2f}x"
        )
    timings = {}
    for engine in ("batched", "vector"):
        best = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            flood_run(1000, engine)
            best = min(best, time.perf_counter() - start)
        timings[engine] = best
    rows.append(
        f"{1000:>5}  {'-':>9}  {timings['batched']:>8.3f}"
        f"  {timings['vector']:>7.3f}  {timings['batched'] / timings['vector']:>6.2f}x"
    )
    body = "\n".join(
        ["    n  reference   batched   vector   ratio (batched/vector)", *rows]
    )
    publish(
        "e10_vector",
        "E10 — substrate flood (10 rounds of all-to-all broadcast), "
        "vector engine vs batched, best of 2",
        body,
    )
    assert ratio_at_400 >= 5.0


SWEEP = SweepConfig(
    algorithms=["alg1"],
    sizes=[(7, 2), (10, 3)],
    attacks=["silent", "id-forging"],
    seeds=(0, 1),
)


@pytest.mark.parametrize("workers", [1, 2])
def test_e10_sweep_workers(benchmark, workers):
    """Serial vs process-pool execution of the same 8-config sweep — the
    wall-clock cost of the executor itself. On a multi-core box the
    workers=2 row should come in near half the workers=1 row; on one core
    the two rows bound the pool's overhead instead."""
    records = benchmark(lambda: run_sweep(SWEEP, workers=workers))
    assert len(records) == 8


@pytest.mark.parametrize("t", [1, 2, 3])
def test_e10_consensus_scaling(benchmark, t):
    """EIG cost grows explosively in t — the CPU shadow of its message
    complexity."""
    n = 3 * t + 1
    ids = make_ids("uniform", n, seed=0)

    def run():
        return run_protocol(
            consensus_renaming_factory(n, ids, 0), n=n, t=t, ids=ids, seed=0
        )

    result = benchmark(run)
    assert len(result.new_names()) == n - t
