"""E10 (extension) — wall-clock scaling of the simulator and algorithms.

Not a paper claim; an engineering ablation of the reproduction itself. It
pins down (a) that a full Alg. 1 run at realistic sizes is milliseconds —
so every experiment sweep in E1–E9 is cheap — and (b) how runtime scales
with N for each algorithm (Alg. 1's exact-Fraction arithmetic is the main
cost; Alg. 4 is near-free; EIG's tree explodes with t, which is the paper's
point in CPU form).

These are true repeated-timing benchmarks (pytest-benchmark statistics are
meaningful here, unlike the deterministic one-shot table benches).
"""

from __future__ import annotations

import pytest

from repro import (
    OrderPreservingRenaming,
    TwoStepRenaming,
    run_protocol,
)
from repro.adversary import make_adversary
from repro.analysis import SweepConfig, run_sweep
from repro.baselines import consensus_renaming_factory
from repro.workloads import make_ids


def alg1_run(n, t, seed=0):
    return run_protocol(
        OrderPreservingRenaming,
        n=n,
        t=t,
        ids=make_ids("uniform", n, seed=seed),
        adversary=make_adversary("id-forging"),
        seed=seed,
    )


@pytest.mark.parametrize("n,t", [(7, 2), (13, 4), (25, 8)])
def test_e10_alg1_scaling(benchmark, n, t):
    result = benchmark(alg1_run, n, t)
    assert len(result.new_names()) == n - t


@pytest.mark.parametrize("n,t", [(11, 2), (22, 3), (37, 4)])
def test_e10_alg4_scaling(benchmark, n, t):
    def run():
        return run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=make_ids("uniform", n, seed=0),
            adversary=make_adversary("selective-echo"),
            seed=0,
        )

    result = benchmark(run)
    assert result.metrics.round_count == 2


SWEEP = SweepConfig(
    algorithms=["alg1"],
    sizes=[(7, 2), (10, 3)],
    attacks=["silent", "id-forging"],
    seeds=(0, 1),
)


@pytest.mark.parametrize("workers", [1, 2])
def test_e10_sweep_workers(benchmark, workers):
    """Serial vs process-pool execution of the same 8-config sweep — the
    wall-clock cost of the executor itself. On a multi-core box the
    workers=2 row should come in near half the workers=1 row; on one core
    the two rows bound the pool's overhead instead."""
    records = benchmark(lambda: run_sweep(SWEEP, workers=workers))
    assert len(records) == 8


@pytest.mark.parametrize("t", [1, 2, 3])
def test_e10_consensus_scaling(benchmark, t):
    """EIG cost grows explosively in t — the CPU shadow of its message
    complexity."""
    n = 3 * t + 1
    ids = make_ids("uniform", n, seed=0)

    def run():
        return run_protocol(
            consensus_renaming_factory(n, ids, 0), n=n, t=t, ids=ids, seed=0
        )

    result = benchmark(run)
    assert len(result.new_names()) == n - t
