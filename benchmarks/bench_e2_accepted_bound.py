"""E2 — Lemma IV.3: ``|accepted| ≤ N + ⌊t²/(N−2t)⌋`` and the bound is tight.

Paper claim: the 4-step id-selection phase caps the identifiers any correct
process accepts at ``N + ⌊t²/(N−2t)⌋``; the proof's counting argument
(Lemma A.1) is achievable by a colluding adversary.

Measured: the colluding id-forging attack against a grid of (N, t). The
table reports the measured maximum accepted-set size next to the bound (the
attack should *equal* it) and, as a control, the sizes observed under the
benign attacks (exactly ``N − t`` correct ids plus whatever the faulty slots
legitimately announce).
"""

from __future__ import annotations

from bench_utils import once
from repro import OrderPreservingRenaming, SystemParams, run_protocol
from repro.adversary import make_adversary
from repro.analysis import format_table, parallel_map
from repro.workloads import make_ids

SIZES = [(4, 1), (7, 2), (9, 2), (10, 3), (13, 4), (16, 5)]


def accepted_sizes(n, t, attack, seed=0):
    result = run_protocol(
        OrderPreservingRenaming,
        n=n,
        t=t,
        ids=make_ids("uniform", n, seed=seed),
        adversary=make_adversary(attack),
        seed=seed,
        collect_trace=True,
    )
    return [
        len(event.detail)
        for event in result.trace.select(event="accepted")
        if event.process in result.correct
    ]


def run_grid():
    # Fan every (size, attack, seed) cell out over the worker pool; cells are
    # independent runs, so ordered parallel_map keeps the table deterministic.
    cells = [
        (n, t, attack, seed)
        for n, t in SIZES
        for attack, seed in (("id-forging", 0), ("id-forging", 1), ("silent", 0))
    ]
    sizes_per_cell = parallel_map(accepted_sizes, cells)
    measurements = {}
    for (n, t, attack, seed), per_process in zip(cells, sizes_per_cell):
        forged, silent = measurements.setdefault((n, t), [0, 0])
        if attack == "id-forging":
            measurements[(n, t)][0] = max(forged, max(per_process))
        else:
            measurements[(n, t)][1] = max(silent, max(per_process))
    return {size: tuple(pair) for size, pair in measurements.items()}


def test_e2_lemma_iv3(benchmark, publish):
    measurements = once(benchmark, run_grid)

    rows = []
    for (n, t), (forged, silent) in measurements.items():
        params = SystemParams(n, t)
        bound = params.accepted_bound
        rows.append([n, t, silent, forged, bound, "yes" if forged == bound else "no"])
        assert forged <= bound
        assert forged == bound, f"forging should saturate the bound at n={n} t={t}"
        assert silent == n - t

    publish(
        "e2",
        "E2  Lemma IV.3 — accepted-set bound N + floor(t^2/(N-2t)) is tight\n"
        "    (forged = colluding id-forging adversary; silent = omission only)",
        format_table(
            ["n", "t", "silent |accepted|", "forged |accepted|", "bound",
             "saturated"],
            rows,
        ),
    )
