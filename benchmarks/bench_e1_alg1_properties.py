"""E1 — Theorem IV.10: Alg. 1 solves order-preserving renaming for N > 3t.

Paper claim: for every N > 3t, under any Byzantine behaviour, Alg. 1
terminates in ``3⌈log₂ t⌉ + 7`` rounds with unique, order-preserving names
inside ``[1 .. N+t−1]``.

Measured: a grid of (N, t) from the minimal-resilience edge upward, crossed
with the full Alg. 1 attack library and multiple seeds. The table reports
the worst observed name vs the bound, the exact round count vs the formula,
and the fraction of runs with all four properties intact (must be 1.0).
"""

from __future__ import annotations

from bench_utils import once
from repro.adversary import ALG1_ATTACKS
from repro.analysis import (
    SweepConfig,
    format_table,
    fraction_true,
    group_by,
    run_sweep,
)
from repro.core import SystemParams

SIZES = [(4, 1), (7, 2), (8, 2), (10, 3), (13, 4)]


def run_grid():
    config = SweepConfig(
        algorithms=["alg1"],
        sizes=SIZES,
        attacks=ALG1_ATTACKS,
        seeds=(0, 1),
    )
    # workers=None fans the grid out over one worker per CPU; results are
    # ordered by configuration index, so the table is identical either way.
    return run_sweep(config, workers=None)


def test_e1_theorem_iv10(benchmark, publish):
    records = once(benchmark, run_grid)

    rows = []
    for (n, t), group in group_by(records, "n", "t").items():
        params = SystemParams(n, t)
        ok = fraction_true([r.report.ok for r in group])
        max_name = max(r.max_name for r in group)
        rounds = {r.rounds for r in group}
        rows.append([
            n,
            t,
            len(group),
            f"{ok:.2f}",
            max_name,
            params.namespace_bound,
            min(rounds),
            params.total_rounds,
        ])
        assert ok == 1.0, f"property violation at n={n} t={t}"
        assert max_name <= params.namespace_bound
        assert rounds == {params.total_rounds}

    publish(
        "e1",
        "E1  Theorem IV.10 — Alg. 1 under the full attack library\n"
        f"    attacks: {', '.join(ALG1_ATTACKS)}",
        format_table(
            ["n", "t", "runs", "all-props-ok", "max name", "bound N+t-1",
             "rounds", "claimed rounds"],
            rows,
        ),
    )
