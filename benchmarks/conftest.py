"""Shared helpers for the benchmark harness.

Every experiment bench (E1–E9) produces an ASCII table of paper-claim vs
measured values. Tables are printed (visible with ``pytest -s``) *and*
written to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can
quote stable artifacts, and each bench asserts the claims it reproduces —
the benches double as the strictest integration tests.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def publish():
    """Return a function that prints a titled table and saves it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _publish(experiment: str, title: str, body: str) -> None:
        text = f"{title}\n\n{body}\n"
        print(f"\n{text}")
        (RESULTS_DIR / f"{experiment}.txt").write_text(text)

    return _publish
