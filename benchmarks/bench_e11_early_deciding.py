"""E11 (extension) — early-deciding latency (the Alistarh et al. [1] direction).

[1] made Okun's crash algorithm early-deciding: complexity driven by the
*actual* faults, not the bound ``t``. Our extension ports the idea to the
Byzantine algorithm with the freeze-at-fixed-point rule
(``RenamingOptions(early_deciding=True)``; safety argument in
docs/algorithms.md).

Measured claims:

* under benign fault behaviour (silence, crashes anywhere in the run) every
  correct process freezes at round 6 — two voting rounds — *independent of
  t*, while the scheduled deadline grows as ``3⌈log₂ t⌉ + 7``: the latency
  win grows with the fault bound;
* only an *actively lying* adversary can delay freezing, degrading
  gracefully to the scheduled deadline (a pure liveness attack);
* frozen names always equal the names of the unmodified algorithm.
"""

from __future__ import annotations

from functools import partial

from bench_utils import once
from repro import (
    OrderPreservingRenaming,
    RenamingOptions,
    SystemParams,
    run_protocol,
)
from repro.adversary import make_adversary
from repro.analysis import bar_chart, check_renaming, format_table, parallel_map
from repro.workloads import make_ids

EARLY = partial(
    OrderPreservingRenaming, options=RenamingOptions(early_deciding=True)
)

SIZES = [(7, 2), (13, 4), (19, 6), (25, 8)]
BENIGN = ["silent", "conforming", "crash"]
ACTIVE = ["rank-skew", "divergence-valid"]


def freeze_latency(n, t, attack, seed=0):
    result = run_protocol(
        EARLY,
        n=n,
        t=t,
        ids=make_ids("uniform", n, seed=seed),
        adversary=make_adversary(attack),
        seed=seed,
        collect_trace=True,
    )
    report = check_renaming(result, SystemParams(n, t).namespace_bound)
    assert report.ok, (n, t, attack, report.violations)
    frozen = [
        e.round_no
        for e in result.trace.select(event="early_frozen")
        if e.process in result.correct
    ]
    if len(frozen) == len(result.correct):
        return max(frozen)
    return None  # some process never froze -> scheduled deadline


def run_grid():
    benign_cells = [
        (n, t, attack, seed)
        for n, t in SIZES
        for attack in BENIGN
        for seed in (0, 1)
    ]
    active_cells = [(n, t, attack) for n, t in SIZES[:2] for attack in ACTIVE]
    latencies = parallel_map(freeze_latency, benign_cells + active_cells)

    benign = {}
    for (n, t, _attack, _seed), latency in zip(benign_cells, latencies):
        previous = benign.get((n, t), 0)
        benign[(n, t)] = max(previous, latency)
    active = {}
    for (n, t, _attack), latency in zip(
        active_cells, latencies[len(benign_cells):]
    ):
        active.setdefault((n, t), []).append(latency)
    return benign, active


def test_e11_early_deciding(benchmark, publish):
    benign, active = once(benchmark, run_grid)

    rows = []
    for (n, t), latency in benign.items():
        deadline = SystemParams(n, t).total_rounds
        rows.append([n, t, latency, deadline, deadline - latency])
        assert latency == 6  # constant: 4 selection + 2 stable voting rounds
        assert latency < deadline

    active_rows = []
    for (n, t), latencies in active.items():
        deadline = SystemParams(n, t).total_rounds
        for attack, latency in zip(ACTIVE, latencies):
            shown = latency if latency is not None else f"none (deadline {deadline})"
            active_rows.append([n, t, attack, shown])
            # Active lying may delay freezing up to the deadline but the
            # run above already asserted all properties held.

    publish(
        "e11",
        "E11  Early-deciding extension — freeze latency vs the schedule\n"
        "    benign faults: constant 6-round latency, win grows with t\n"
        "    active lying: freezing delayed or skipped (liveness only)",
        format_table(
            ["n", "t", "freeze round (benign)", "scheduled deadline",
             "rounds saved"],
            rows,
        )
        + "\n\nfigure: rounds saved by early deciding (benign faults)\n"
        + bar_chart(
            {f"t={t}": deadline - latency
             for (n, t), latency in benign.items()
             for deadline in [SystemParams(n, t).total_rounds]},
            unit=" rounds",
        )
        + "\n\n"
        + format_table(["n", "t", "active attack", "freeze round"], active_rows),
    )
