"""E8 — crash-model anchors (Section III).

Paper claims about the crash-fault landscape it builds on:

* Okun [14]: strong order-preserving renaming in ``O(log t)`` rounds — the
  algorithm Alg. 1 generalises, with "the same time and message complexity";
* CHT [6]: strong renaming in ``O(log N)`` rounds (order preservation not
  guaranteed under faults);
* exact-agreement renaming (FloodSet, the crash cousin of the consensus
  strawman): ``t + 1`` rounds regardless of log-factors.

Measured: all three under crash faults, plus Alg. 1 at the same sizes to
check the "same complexity as the crash solution" claim — Alg. 1's round
count is the crash algorithm's plus the constant-2 overhead of the
Byzantine id-selection (4 steps vs 2).
"""

from __future__ import annotations

from bench_utils import once
from repro import SystemParams
from repro.analysis import (
    ALGORITHMS,
    SweepConfig,
    format_table,
    fraction_true,
    group_by,
    run_sweep,
)

SIZES = [(5, 1), (7, 2), (10, 3), (13, 4)]
BASELINES = ["okun-crash", "cht", "floodset", "alg1"]


def run_grid():
    config = SweepConfig(
        algorithms=BASELINES,
        sizes=SIZES,
        attacks=["crash"],
        seeds=(0, 1, 2),
        collect_trace=True,
    )
    return group_by(run_sweep(config), "algorithm", "n", "t")


def test_e8_crash_baselines(benchmark, publish):
    records = once(benchmark, run_grid)

    rows = []
    for (algorithm, n, t), group in records.items():
        spec = ALGORITHMS[algorithm]
        ok = fraction_true([r.report.ok_without_order() for r in group])
        order_ok = fraction_true([r.report.ok for r in group])
        rounds = max(r.effective_rounds for r in group)
        max_name = max(r.max_name for r in group)
        rows.append([
            algorithm, n, t, rounds, max_name,
            f"{order_ok:.2f}" if spec.order_preserving else f"({order_ok:.2f})",
            f"{ok:.2f}",
        ])
        assert ok == 1.0
        if spec.order_preserving:
            assert order_ok == 1.0

    # Shape claims: Okun's rounds = 2 + voting (log t); Alg. 1 = 4 + voting.
    for n, t in SIZES:
        params = SystemParams(n, t)
        okun = max(r.rounds for r in records[("okun-crash", n, t)])
        alg1 = max(r.rounds for r in records[("alg1", n, t)])
        flood = max(r.rounds for r in records[("floodset", n, t)])
        assert okun == 2 + params.voting_rounds
        assert alg1 == okun + 2  # same voting schedule, 2 extra selection steps
        assert flood == t + 1

    publish(
        "e8",
        "E8  Crash-model anchors under crash faults\n"
        "    (order fraction in parentheses = not promised by the algorithm)",
        format_table(
            ["algorithm", "n", "t", "rounds", "max name", "order ok",
             "valid+uniq+term ok"],
            rows,
        ),
    )
