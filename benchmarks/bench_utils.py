"""Shared helpers for the benchmark harness (importable by name)."""

from __future__ import annotations


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Experiment sweeps are deterministic and heavy; statistical repetition
    would only re-measure the same run, so a single timed round is right.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
