"""E7 — the related-work comparison (Sections I and III).

Paper claims, at equal (N, t):

* Alg. 1 needs ``3⌈log₂ t⌉ + 7`` rounds and namespace ``N + t − 1``, beating
  the translated [15] baseline (``O(log N)`` echo-doubled rounds, namespace
  ``2N``, order NOT preserved) and consensus-based renaming (``t + 1``
  rounds *but* exponential message size — EIG) on the dimensions the paper
  cares about;
* in the fast regime Alg. 4 does it in 2 rounds at namespace ``N²``.

Measured: every algorithm on the identical workload and fault pattern.
"who wins" assertions: Alg. 1's rounds grow like log t while consensus's
message size explodes; translated's namespace doubles and loses order.
"""

from __future__ import annotations

from bench_utils import once
from repro.analysis import ALGORITHMS, format_table, run_experiment
from repro.workloads import make_ids

CONTENDERS = ["alg1", "alg1-constant", "alg4", "translated", "consensus"]
SIZES = [(11, 2), (13, 3)]


def run_grid():
    records = {}
    for n, t in SIZES:
        ids = make_ids("uniform", n, seed=0)
        for algorithm in CONTENDERS:
            spec = ALGORITHMS[algorithm]
            if not spec.supports(n, t):
                continue
            records[(algorithm, n, t)] = run_experiment(
                algorithm, n, t, ids, attack="silent", seed=0,
                collect_trace=True,
            )
    return records


def effective_rounds(record):
    """Decision latency: settled-round for the split baselines (they idle at
    a fixed horizon), wall rounds for everything else."""
    settled = record.result.trace.select(event="settled")
    if settled:
        return max(e.round_no for e in settled if e.process in record.result.correct)
    return record.rounds


def test_e7_comparison(benchmark, publish):
    records = once(benchmark, run_grid)

    rows = []
    for (algorithm, n, t), record in records.items():
        spec = ALGORITHMS[algorithm]
        rows.append([
            algorithm,
            n,
            t,
            effective_rounds(record),
            record.correct_messages,
            record.peak_message_bits,
            record.max_name,
            "yes" if spec.order_preserving else "no",
            "OK" if record.report.ok_without_order() else "FAIL",
        ])
        assert record.report.ok_without_order()

    by_key = {key: record for key, record in records.items()}
    for n, t in SIZES:
        alg1 = by_key[("alg1", n, t)]
        consensus = by_key[("consensus", n, t)]
        translated = by_key[("translated", n, t)]
        # Consensus messages blow up: peak EIG message dwarfs Alg. 1's.
        assert consensus.peak_message_bits > alg1.peak_message_bits
        # Translated pays more rounds than Alg. 1 and doubles the namespace.
        assert effective_rounds(translated) > alg1.rounds
        if ("alg4", n, t) in by_key:
            assert by_key[("alg4", n, t)].rounds == 2

    publish(
        "e7",
        "E7  Algorithm comparison at equal (N, t), silent faults\n"
        "    rounds for split baselines = decision latency (they idle to a "
        "fixed horizon)",
        format_table(
            ["algorithm", "n", "t", "rounds", "messages", "peak msg bits",
             "max name", "order-preserving", "props"],
            rows,
        ),
    )
