"""E7 — the related-work comparison (Sections I and III).

Paper claims, at equal (N, t):

* Alg. 1 needs ``3⌈log₂ t⌉ + 7`` rounds and namespace ``N + t − 1``, beating
  the translated [15] baseline (``O(log N)`` echo-doubled rounds, namespace
  ``2N``, order NOT preserved) and consensus-based renaming (``t + 1``
  rounds *but* exponential message size — EIG) on the dimensions the paper
  cares about;
* in the fast regime Alg. 4 does it in 2 rounds at namespace ``N²``.

Measured: every algorithm on the identical workload and fault pattern.
"who wins" assertions: Alg. 1's rounds grow like log t while consensus's
message size explodes; translated's namespace doubles and loses order.
"""

from __future__ import annotations

from bench_utils import once
from repro.analysis import ALGORITHMS, SweepConfig, format_table, run_sweep

CONTENDERS = ["alg1", "alg1-constant", "alg4", "translated", "consensus"]
SIZES = [(11, 2), (13, 3)]


def run_grid():
    # collect_trace=True so each worker can compute the settled round
    # (decision latency) before the trace is discarded; summaries expose it
    # as .effective_rounds.
    config = SweepConfig(
        algorithms=CONTENDERS,
        sizes=SIZES,
        attacks=["silent"],
        seeds=(0,),
        collect_trace=True,
    )
    return {(s.algorithm, s.n, s.t): s for s in run_sweep(config)}


def test_e7_comparison(benchmark, publish):
    records = once(benchmark, run_grid)

    rows = []
    for (algorithm, n, t), record in records.items():
        spec = ALGORITHMS[algorithm]
        rows.append([
            algorithm,
            n,
            t,
            record.effective_rounds,
            record.correct_messages,
            record.correct_bits // record.rounds,
            record.max_name,
            "yes" if spec.order_preserving else "no",
            "OK" if record.report.ok_without_order() else "FAIL",
        ])
        assert record.report.ok_without_order()

    by_key = {key: record for key, record in records.items()}
    for n, t in SIZES:
        alg1 = by_key[("alg1", n, t)]
        consensus = by_key[("consensus", n, t)]
        translated = by_key[("translated", n, t)]
        # Consensus traffic blows up: the EIG tree it ships each round
        # dwarfs Alg. 1's linear-size votes. Per-round totals, not peak
        # single-message size — multiplexed EIG splits the combined relay
        # into N per-source envelopes, so the exponential cost shows up in
        # aggregate traffic rather than in any one frame.
        assert (
            consensus.correct_bits // consensus.rounds
            > alg1.correct_bits // alg1.rounds
        )
        # Translated pays more rounds than Alg. 1 and doubles the namespace.
        assert translated.effective_rounds > alg1.rounds
        if ("alg4", n, t) in by_key:
            assert by_key[("alg4", n, t)].rounds == 2

    publish(
        "e7",
        "E7  Algorithm comparison at equal (N, t), silent faults\n"
        "    rounds for split baselines = decision latency (they idle to a "
        "fixed horizon)",
        format_table(
            ["algorithm", "n", "t", "rounds", "messages", "bits/round",
             "max name", "order-preserving", "props"],
            rows,
        ),
    )
