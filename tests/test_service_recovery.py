"""Kill -9 the daemon mid-burst; prove nothing admitted is ever lost.

Subprocess-based, like the drain suite: a real ``repro-renaming serve
--session-journal`` child is SIGKILLed at a deterministic journal record
via ``REPRO_SERVICE_CRASH_AFTER``, restarted on the same journal, and the
recovery contract is asserted end to end:

* every session that *completed* before the crash is answerable after the
  restart — same token, byte-identical certificate (the journaled frame
  bytes are replayed, the session is never re-run);
* a session that was *in flight* at the crash (``accepted`` with no
  terminal record) is re-admitted by the client's retry exactly once —
  the journal shows precisely two ``accepted`` records for it;
* no assignment is duplicated or order-violating across the crash
  boundary — every completed outcome passed :func:`run_session`'s
  client-side ``check_renaming`` re-validation.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time

from repro.service.journal import scan_session_journal
from repro.service.load import run_query, run_session, run_session_with_retry
from repro.workloads import make_ids

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _spawn(args, *, env=None):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env={**os.environ, "PYTHONPATH": SRC, **(env or {})},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _spawn_daemon(tmp_path, journal, *, crash_after=None, tag="a"):
    port_file = tmp_path / f"svc-{tag}.port"
    env = {}
    if crash_after is not None:
        env["REPRO_SERVICE_CRASH_AFTER"] = crash_after
    daemon = _spawn(
        [
            "serve", "--port", "0", "--port-file", str(port_file),
            "--session-journal", str(journal),
            "--session-deadline", "15", "--idle-timeout", "15",
            "--drain-grace", "20",
        ],
        env=env,
    )
    return daemon, _wait_for_port_file(str(port_file), daemon)


def _wait_for_port_file(path, process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            out, err = process.communicate()
            raise AssertionError(f"daemon died before binding: {out}\n{err}")
        if os.path.exists(path):
            text = open(path).read().strip()
            if text:
                host, _, port = text.rpartition(":")
                return host, int(port)
        time.sleep(0.05)
    raise AssertionError("daemon never wrote its port file")


def _wait_for_death(process, timeout=30.0):
    try:
        out, err = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        out, err = process.communicate()
        raise AssertionError(
            f"daemon survived its crash hook: {out}\n{err}"
        )
    return process.returncode, out, err


def _terminate(daemon, timeout=30):
    daemon.send_signal(signal.SIGTERM)
    out, err = daemon.communicate(timeout=timeout)
    return daemon.returncode, out, err


def _drive(address, token, *, seed, retries=0):
    host, port = address
    return asyncio.run(
        run_session_with_retry(
            host, port,
            retries=retries,
            session_id=token,
            ids=make_ids("uniform", 6, seed=seed),
            seed=seed,
            timeout_s=10.0,
        )
    )


class TestCrashRecovery:
    def test_completed_sessions_survive_byte_identical(self, tmp_path):
        journal = tmp_path / "sessions.jsonl"
        daemon, address = _spawn_daemon(
            tmp_path, journal, crash_after="completed:2", tag="crash"
        )
        try:
            first = _drive(address, "r-0", seed=0)
            assert first.status == "completed", first
            # The second session's `completed` record becomes durable and
            # the hook SIGKILLs the daemon before the response frames
            # leave — the client sees a typed transport failure, not a
            # wrong answer.
            second = _drive(address, "r-1", seed=1)
            assert second.status in ("disconnected", "timeout", "refused"), \
                second
            code, _, _ = _wait_for_death(daemon)
            assert code == -signal.SIGKILL
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()

        # The journal survived the kill: both tokens are terminal, r-1's
        # result durable even though no client ever saw it.
        state = scan_session_journal(journal)
        assert state.sessions["r-0"].state == "completed"
        assert state.sessions["r-1"].state == "completed"
        hex_before = {
            token: (record.names_hex, record.certificate_hex)
            for token, record in state.sessions.items()
        }

        daemon, address = _spawn_daemon(tmp_path, journal, tag="recovered")
        try:
            # Same token, same parameters: answered from the journal.
            replayed = _drive(address, "r-0", seed=0)
            assert replayed.status == "completed", replayed
            assert replayed.entries == first.entries
            assert replayed.certificate == first.certificate

            # r-1's client never got its answer; the retry does now.
            recovered = _drive(address, "r-1", seed=1)
            assert recovered.status == "completed", recovered

            # The query path serves the same journaled frames.
            host, port = address
            queried = asyncio.run(run_query(host, port, "r-1"))
            assert queried.status == "completed"
            assert queried.entries == recovered.entries
            assert queried.certificate == recovered.certificate

            code, out, _ = _terminate(daemon)
            assert code == 0
            # The restarted daemon replayed, it did not re-run.
            assert " 0 completed" in out and "2 replayed" in out, out
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()

        # Replay never rewrites history: the stored frame bytes are
        # untouched, so every answer was byte-identical by construction.
        after = scan_session_journal(journal)
        assert {
            token: (record.names_hex, record.certificate_hex)
            for token, record in after.sessions.items()
        } == hex_before
        assert all(r.accepted == 1 for r in after.sessions.values())

    def test_in_flight_session_readmitted_exactly_once(self, tmp_path):
        journal = tmp_path / "sessions.jsonl"
        daemon, address = _spawn_daemon(
            tmp_path, journal, crash_after="accepted:2", tag="crash"
        )
        try:
            done = _drive(address, "a-0", seed=0)
            assert done.status == "completed", done
            # a-1 is admitted (accepted record durable) and the daemon is
            # killed before it finishes.
            interrupted = _drive(address, "a-1", seed=1)
            assert interrupted.status in (
                "disconnected", "timeout", "refused"
            ), interrupted
            code, _, _ = _wait_for_death(daemon)
            assert code == -signal.SIGKILL
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()

        state = scan_session_journal(journal)
        assert state.sessions["a-0"].state == "completed"
        assert state.sessions["a-1"].state == "in-flight"
        assert state.in_flight() == ["a-1"]

        daemon, address = _spawn_daemon(tmp_path, journal, tag="recovered")
        try:
            retried = _drive(address, "a-1", seed=1, retries=3)
            assert retried.status == "completed", retried
            replayed = _drive(address, "a-0", seed=0)
            assert replayed.status == "completed"
            assert replayed.entries == done.entries
            assert replayed.certificate == done.certificate
            code, out, _ = _terminate(daemon)
            assert code == 0
            assert "1 completed" in out and "1 replayed" in out, out
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()

        after = scan_session_journal(journal)
        # Exactly one re-admission for the interrupted token, none for
        # the replayed one.
        assert after.sessions["a-1"].accepted == 2
        assert after.sessions["a-1"].state == "completed"
        assert after.sessions["a-0"].accepted == 1

    def test_concurrent_burst_crash_restart_loses_nothing(self, tmp_path):
        journal = tmp_path / "sessions.jsonl"
        tokens = [f"burst-{i}" for i in range(6)]
        daemon, address = _spawn_daemon(
            tmp_path, journal, crash_after="completed:3", tag="crash"
        )
        pre_crash = {}
        try:
            host, port = address

            async def burst():
                return await asyncio.gather(*(
                    run_session(
                        host, port,
                        ids=make_ids("uniform", 6, seed=i),
                        seed=i,
                        session_id=token,
                        timeout_s=10.0,
                    )
                    for i, token in enumerate(tokens)
                ))

            outcomes = asyncio.run(burst())
            for token, outcome in zip(tokens, outcomes):
                assert outcome.status in (
                    "completed", "disconnected", "timeout", "refused",
                ), (token, outcome)
                if outcome.status == "completed":
                    pre_crash[token] = outcome
            code, _, _ = _wait_for_death(daemon)
            assert code == -signal.SIGKILL
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()

        state = scan_session_journal(journal)
        # Everything a client saw completed is durably completed — zero
        # lost sessions across the kill.
        for token in pre_crash:
            assert state.sessions[token].state == "completed", token

        daemon, address = _spawn_daemon(tmp_path, journal, tag="recovered")
        try:
            for i, token in enumerate(tokens):
                outcome = _drive(address, token, seed=i, retries=3)
                # run_session re-validates every completed assignment
                # through check_renaming — "completed" certifies no
                # duplicate names and preserved order.
                assert outcome.status == "completed", (token, outcome)
                if token in pre_crash:
                    assert outcome.entries == pre_crash[token].entries
                    assert outcome.certificate == pre_crash[token].certificate
            code, _, _ = _terminate(daemon)
            assert code == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()

        after = scan_session_journal(journal)
        for token in tokens:
            record = after.sessions[token]
            assert record.state == "completed", token
            # Pre-crash terminal tokens were replayed (1 admission); the
            # interrupted rest were re-admitted exactly once (2).
            expected = 1 if token in pre_crash else 2
            assert record.accepted <= expected, (token, record.accepted)
