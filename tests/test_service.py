"""The renaming daemon's robustness contract, exercised in-process.

Every test spins a real :class:`repro.service.server.RenamingService` on a
loopback socket inside ``asyncio.run`` — real frames over real TCP, no
subprocesses (the signal/exit-code story is ``test_service_drain.py``).

Covered here: the happy path (auto and explicit algorithms, adversarial
sessions), backpressure, every typed rejection (wire garbage, protocol
violations, config errors, slow-loris idle timeout, session deadline),
mid-session disconnect containment, drain semantics, budget isolation,
and the load generator's client-side re-validation.
"""

from __future__ import annotations

import asyncio
import struct
from contextlib import asynccontextmanager

import pytest

from repro.analysis.supervisor import CellBudget
from repro.core import SystemParams
from repro.service.frames import encode_frame, read_frame, write_frame
from repro.service.load import run_load, run_session, validate_names
from repro.service.messages import (
    CertificateMessage,
    CloseSessionMessage,
    ERROR_CODES,
    NamesAssignedMessage,
    OpenSessionMessage,
    RegisterIdsMessage,
    ServerBusyMessage,
    SessionErrorMessage,
    SessionWelcomeMessage,
)
from repro.service.server import RenamingService
from repro.service.session import (
    SessionRequest,
    execute_session,
    execute_session_isolated,
    select_algorithm,
)
from repro.sim import ConfigurationError, ResourceBudgetExceeded
from repro.workloads import make_ids


@asynccontextmanager
async def service(**kwargs):
    """A live daemon plus its serve_forever task; drains on exit."""
    kwargs.setdefault("max_sessions", 8)
    kwargs.setdefault("session_deadline_s", 5.0)
    kwargs.setdefault("idle_timeout_s", 2.0)
    kwargs.setdefault("drain_grace_s", 1.0)
    svc = RenamingService(install_signal_handlers=False, **kwargs)
    await svc.start()
    runner = asyncio.create_task(svc.serve_forever())
    try:
        yield svc, runner
    finally:
        if not runner.done():
            svc.initiate_drain()
            svc.initiate_drain()  # second call forces the shed
        await runner


async def connect(svc):
    host, port = svc.bound_address
    return await asyncio.open_connection(host, port)


async def expect(reader, message_type, timeout=5.0):
    message = await asyncio.wait_for(read_frame(reader), timeout)
    assert isinstance(message, message_type), f"got {message!r}"
    return message


async def drive(svc, **kwargs):
    host, port = svc.bound_address
    kwargs.setdefault("ids", make_ids("uniform", 8, seed=1))
    return await run_session(host, port, **kwargs)


class TestHappyPath:
    def test_auto_session_returns_validated_names(self):
        async def main():
            async with service() as (svc, _):
                outcome = await drive(svc)
                assert outcome.status == "completed", outcome
                assert outcome.algorithm == "alg4"  # t=0 is the fast regime
                assert outcome.rounds == 2
                assert svc.stats.completed == 1
                assert svc.stats.violations == 0

        asyncio.run(main())

    def test_explicit_adversarial_session(self):
        async def main():
            async with service() as (svc, _):
                outcome = await drive(
                    svc,
                    ids=make_ids("uniform", 8, seed=2),
                    algorithm="alg1",
                    t=1,
                    attack="conforming",
                )
                assert outcome.status == "completed", outcome
                assert outcome.algorithm == "alg1"

        asyncio.run(main())

    def test_ids_may_arrive_in_chunks(self):
        async def main():
            async with service() as (svc, _):
                outcome = await drive(
                    svc, ids=make_ids("uniform", 9, seed=3), register_chunk=2
                )
                assert outcome.status == "completed", outcome

        asyncio.run(main())


class TestBackpressure:
    def test_busy_is_explicit_never_a_silent_drop(self):
        async def main():
            async with service(max_sessions=1) as (svc, _):
                reader, writer = await connect(svc)
                await expect(reader, SessionWelcomeMessage)  # slot taken
                outcome = await drive(svc)
                assert outcome.status == "busy", outcome
                assert svc.stats.busy == 1
                writer.close()
                await writer.wait_closed()

        asyncio.run(main())

    def test_slot_frees_after_session_ends(self):
        async def main():
            async with service(max_sessions=1) as (svc, _):
                first = await drive(svc)
                assert first.status == "completed"
                second = await drive(svc)
                assert second.status == "completed"

        asyncio.run(main())


class TestTypedRejection:
    def test_wire_garbage_gets_wire_error(self):
        async def main():
            async with service() as (svc, _):
                reader, writer = await connect(svc)
                await expect(reader, SessionWelcomeMessage)
                payload = b"\xfe" * 6  # valid frame, unregistered tag
                writer.write(struct.pack(">I", len(payload)) + payload)
                await writer.drain()
                error = await expect(reader, SessionErrorMessage)
                assert error.code == "wire"
                writer.close()

        asyncio.run(main())

    def test_register_before_open_is_a_protocol_error(self):
        async def main():
            async with service() as (svc, _):
                reader, writer = await connect(svc)
                await expect(reader, SessionWelcomeMessage)
                await write_frame(writer, RegisterIdsMessage(ids=(4, 5)))
                error = await expect(reader, SessionErrorMessage)
                assert error.code == "protocol"
                writer.close()

        asyncio.run(main())

    def test_close_with_no_ids_is_a_config_error(self):
        async def main():
            async with service() as (svc, _):
                reader, writer = await connect(svc)
                await expect(reader, SessionWelcomeMessage)
                await write_frame(writer, OpenSessionMessage())
                await write_frame(writer, CloseSessionMessage())
                error = await expect(reader, SessionErrorMessage)
                assert error.code == "config"
                writer.close()

        asyncio.run(main())

    def test_unknown_algorithm_is_a_config_error(self):
        async def main():
            async with service() as (svc, _):
                outcome = await drive(svc, algorithm="not-a-thing")
                assert outcome.status == "rejected"
                assert outcome.code == "config"

        asyncio.run(main())

    def test_id_cap_is_enforced(self):
        async def main():
            async with service(max_ids=4) as (svc, _):
                outcome = await drive(svc, ids=make_ids("uniform", 8, seed=4))
                assert outcome.status == "rejected"
                assert outcome.code == "config"

        asyncio.run(main())

    def test_every_reported_code_is_registered(self):
        async def main():
            async with service(max_ids=4) as (svc, _):
                await drive(svc, algorithm="nope")
                await drive(svc, ids=make_ids("uniform", 8, seed=5))
                assert set(svc.stats.error_codes) <= set(ERROR_CODES)

        asyncio.run(main())


class TestDeadlines:
    def test_slow_loris_gets_idle_timeout(self):
        async def main():
            async with service(idle_timeout_s=0.2, session_deadline_s=10.0) as (
                svc,
                _,
            ):
                reader, writer = await connect(svc)
                await expect(reader, SessionWelcomeMessage)
                await write_frame(writer, OpenSessionMessage())
                # ... then stall. The server must not wait for the distant
                # session deadline.
                error = await expect(reader, SessionErrorMessage, timeout=2.0)
                assert error.code == "idle-timeout"
                writer.close()

        asyncio.run(main())

    def test_deadline_closes_a_registered_quorum(self):
        async def main():
            async with service(session_deadline_s=0.3, idle_timeout_s=5.0) as (
                svc,
                _,
            ):
                reader, writer = await connect(svc)
                welcome = await expect(reader, SessionWelcomeMessage)
                assert welcome.deadline_ms == 300
                await write_frame(writer, OpenSessionMessage())
                await write_frame(
                    writer, RegisterIdsMessage.from_ids(make_ids("uniform", 6))
                )
                # No CloseSession: the deadline must run the quorum.
                names = await expect(reader, NamesAssignedMessage, timeout=5.0)
                certificate = await expect(reader, CertificateMessage)
                assert len(names.entries) == 6
                assert certificate.ok
                writer.close()

        asyncio.run(main())

    def test_deadline_with_nothing_registered_rejects(self):
        async def main():
            async with service(session_deadline_s=0.2, idle_timeout_s=5.0) as (
                svc,
                _,
            ):
                reader, writer = await connect(svc)
                await expect(reader, SessionWelcomeMessage)
                await write_frame(writer, OpenSessionMessage())
                error = await expect(reader, SessionErrorMessage, timeout=5.0)
                assert error.code == "deadline"
                writer.close()

        asyncio.run(main())


class TestContainment:
    def test_disconnect_mid_session_leaves_others_untouched(self):
        async def main():
            async with service() as (svc, _):
                reader, writer = await connect(svc)
                await expect(reader, SessionWelcomeMessage)
                await write_frame(writer, OpenSessionMessage())
                await write_frame(writer, RegisterIdsMessage(ids=(7, 9)))
                well_behaved = asyncio.create_task(drive(svc))
                writer.close()  # vanish mid-session
                await writer.wait_closed()
                outcome = await well_behaved
                assert outcome.status == "completed", outcome
                for _ in range(100):
                    if svc.stats.disconnected:
                        break
                    await asyncio.sleep(0.02)
                assert svc.stats.disconnected == 1
                assert svc.stats.infra == 0

        asyncio.run(main())

    def test_budget_breach_is_typed_and_contained(self, monkeypatch):
        # The runner child is forked, so it inherits this stalling stub —
        # a deterministic way to make a session overstay its wall budget.
        import time

        import repro.service.session as session_module

        def stalling(request):
            time.sleep(30.0)
            raise AssertionError("the budget should have killed this child")

        monkeypatch.setattr(session_module, "execute_session", stalling)

        async def main():
            async with service(
                budget=CellBudget(wall_s=0.2), session_deadline_s=10.0
            ) as (svc, _):
                outcome = await drive(svc)
                assert outcome.status == "rejected", outcome
                assert outcome.code == "wall-budget"

        asyncio.run(main())


class TestDrain:
    def test_drain_finishes_in_flight_and_turns_new_connects_away(self):
        async def main():
            async with service(drain_grace_s=5.0) as (svc, runner):
                reader, writer = await connect(svc)
                await expect(reader, SessionWelcomeMessage)
                await write_frame(writer, OpenSessionMessage())
                await write_frame(writer, RegisterIdsMessage(ids=(3, 8, 21)))
                svc.initiate_drain()
                late = await drive(svc)
                assert late.status == "busy", late
                await write_frame(writer, CloseSessionMessage())
                names = await expect(reader, NamesAssignedMessage)
                certificate = await expect(reader, CertificateMessage)
                assert len(names.entries) == 3 and certificate.ok
                writer.close()
                code = await asyncio.wait_for(runner, timeout=5.0)
                assert code == 0
                assert svc.stats.shed == 0

        asyncio.run(main())

    def test_drain_sheds_stragglers_with_a_typed_shutdown(self):
        async def main():
            async with service(
                drain_grace_s=0.2, session_deadline_s=30.0, idle_timeout_s=30.0
            ) as (svc, runner):
                reader, writer = await connect(svc)
                await expect(reader, SessionWelcomeMessage)
                await write_frame(writer, OpenSessionMessage())
                svc.initiate_drain()
                error = await expect(reader, SessionErrorMessage, timeout=5.0)
                assert error.code == "shutdown"
                writer.close()
                code = await asyncio.wait_for(runner, timeout=5.0)
                assert code == 4
                assert svc.stats.shed == 1

        asyncio.run(main())

    def test_exit_code_precedence(self):
        svc = RenamingService(install_signal_handlers=False)
        assert svc.exit_code() == 0
        svc.stats.violations = 1
        assert svc.exit_code() == 2
        svc.stats.shed = 1
        assert svc.exit_code() == 4
        svc.stats.infra = 1
        assert svc.exit_code() == 3


class TestLoadGenerator:
    def test_load_reports_latency_and_validates_client_side(self):
        async def main():
            async with service(max_sessions=16) as (svc, _):
                host, port = svc.bound_address
                report = await run_load(
                    host, port, sessions=12, concurrency=6, ids_per_session=6
                )
                assert report.completed == 12
                assert report.exit_code() == 0
                assert report.p50_s > 0
                assert report.p99_s >= report.p50_s
                assert report.sessions_per_sec > 0

        asyncio.run(main())

    def test_connection_refused_is_an_outcome_not_a_crash(self):
        async def main():
            outcome = await run_session("127.0.0.1", 1, ids=[1, 2, 3])
            assert outcome.status == "refused"

        asyncio.run(main())


class TestValidateNames:
    def test_good_assignment_passes(self):
        assert validate_names([(3, 1), (9, 2)], namespace=4, expected_count=2) == []

    def test_duplicate_names_are_caught(self):
        problems = validate_names(
            [(3, 1), (9, 1)], namespace=4, expected_count=2
        )
        assert any("uniqueness" in p for p in problems)

    def test_order_violation_is_caught_only_when_promised(self):
        swapped = [(3, 2), (9, 1)]
        assert validate_names(swapped, namespace=4, expected_count=2)
        assert (
            validate_names(
                swapped, namespace=4, expected_count=2, order_preserving=False
            )
            == []
        )

    def test_missing_decisions_break_termination(self):
        problems = validate_names([(3, 1)], namespace=4, expected_count=2)
        assert any("termination" in p for p in problems)


class TestSessionExecution:
    def test_select_algorithm_follows_the_regimes(self):
        assert select_algorithm(SystemParams(8, 0)) == "alg4"
        assert select_algorithm(SystemParams(11, 2)) == "alg4"  # 11 > 2·4+2
        assert select_algorithm(SystemParams(9, 2)) == "alg1-constant"  # 9 > 4+4
        assert select_algorithm(SystemParams(7, 2)) == "alg1"  # 7 > 6 only
        with pytest.raises(ConfigurationError):
            select_algorithm(SystemParams(6, 2))

    def test_execute_session_certifies_the_run(self):
        result = execute_session(
            SessionRequest(ids=tuple(make_ids("uniform", 8, seed=6)))
        )
        assert result.ok
        assert result.algorithm == "alg4"
        assert "order_preservation" in result.checked
        assert len(result.names) == 8

    def test_bad_attack_pairing_is_a_config_error(self):
        with pytest.raises(ConfigurationError, match="attack"):
            execute_session(
                SessionRequest(
                    ids=tuple(make_ids("uniform", 11, seed=7)),
                    algorithm="alg4",
                    t=2,
                    attack="divergence",  # an alg1-only strategy
                )
            )

    def test_isolated_execution_matches_inline(self):
        request = SessionRequest(ids=tuple(make_ids("uniform", 6, seed=9)))
        isolated = execute_session_isolated(request, CellBudget(wall_s=30.0))
        assert isolated == execute_session(request)

    def test_isolated_execution_reraises_typed_errors(self):
        request = SessionRequest(
            ids=tuple(make_ids("uniform", 6, seed=10)), algorithm="nope"
        )
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            execute_session_isolated(request, CellBudget(wall_s=30.0))

    def test_isolated_wall_breach_is_typed(self, monkeypatch):
        import time

        import repro.service.session as session_module

        monkeypatch.setattr(
            session_module, "execute_session", lambda request: time.sleep(30.0)
        )
        request = SessionRequest(ids=(3, 5, 8))
        with pytest.raises(ResourceBudgetExceeded) as info:
            execute_session_isolated(
                request, CellBudget(wall_s=0.1), poll_s=0.02
            )
        assert info.value.violated == "wall-budget"

    def test_out_of_regime_is_a_config_error(self):
        with pytest.raises(ConfigurationError, match="regime"):
            execute_session(
                SessionRequest(
                    ids=tuple(make_ids("uniform", 7, seed=8)),
                    algorithm="alg4",
                    t=2,  # 7 <= 2t²+t = 10
                )
            )
