"""Per-model contract tests (the :mod:`tests.test_beyond_model` style).

The contract: inside a model's stated bound, a run either finishes with a
total :class:`PropertyReport` whose broken properties all classify as
expected degradations, or raises a *typed* error (SafetyViolation from a
tripped invariant, ConfigurationError from a meaningless model × algorithm
pairing) — never an untyped escape. Guaranteed properties breaking inside
the bound is a finding; degradable properties breaking is the model doing
its job.
"""

from __future__ import annotations

import pytest

from helpers import standard_ids
from repro.analysis import ALGORITHMS, run_experiment
from repro.analysis.properties import PropertyReport
from repro.sim import (
    EXPECTATIONS,
    MODEL_KINDS,
    ConfigurationError,
    SimulationError,
    SystemModel,
    parse_model,
)
from repro.wire import WireError

ALL_PROPERTIES = ("validity", "termination", "uniqueness", "order_preservation")


class TestExpectationMatrix:
    def test_every_registered_kind_has_expectations(self):
        assert set(EXPECTATIONS) == set(MODEL_KINDS)

    @pytest.mark.parametrize("kind", MODEL_KINDS)
    def test_expectations_partition_the_four_properties(self, kind):
        model = {
            "classic": SystemModel.classic(),
            "impersonation": SystemModel.impersonation(2),
            "partial-synchrony": SystemModel.partial_synchrony(0.1),
        }[kind]
        exp = model.expectations()
        assert exp.model == model.describe()
        assert not set(exp.guaranteed) & set(exp.degradable)
        assert set(exp.guaranteed) | set(exp.degradable) == set(ALL_PROPERTIES)
        assert exp.bound  # a human-readable statement of the bound

    def test_classic_guarantees_everything(self):
        exp = SystemModel.classic().expectations()
        assert set(exp.guaranteed) == set(ALL_PROPERTIES)
        assert exp.round_budget_holds

    def test_impersonation_only_guarantees_termination(self):
        # Forged frames only add traffic; nothing is withheld.
        exp = SystemModel.impersonation(3).expectations()
        assert exp.guaranteed == ("termination",)
        assert exp.round_budget_holds

    def test_partial_synchrony_guarantees_nothing(self):
        exp = SystemModel.partial_synchrony(0.2).expectations()
        assert exp.guaranteed == ()
        assert not exp.round_budget_holds, (
            "withheld frames void the paper's round budgets"
        )

    def test_classify_splits_expected_from_findings(self):
        exp = SystemModel.impersonation(1).expectations()
        verdicts = exp.classify(("termination", "uniqueness"))
        assert verdicts == {
            "termination": "unexpected",
            "uniqueness": "expected-degradation",
        }


class TestTypedOutcomes:
    """Every (algorithm, model) run ends in a report or a typed error."""

    CASES = [
        ("alg1", 7, 2, SystemModel.impersonation(2)),
        ("alg1", 7, 2, SystemModel.impersonation(6, seed=3)),
        ("alg4", 11, 2, SystemModel.impersonation(2)),
        ("okun-crash", 5, 1, SystemModel.impersonation(2)),
        ("floodset", 5, 1, SystemModel.partial_synchrony(0.1, max_delay=2)),
        ("alg1", 7, 2, SystemModel.partial_synchrony(0.1, max_delay=2)),
        ("cht", 7, 2, SystemModel.partial_synchrony(0.05)),
        ("okun-crash", 5, 1, SystemModel.partial_synchrony(0.3, max_delay=1)),
    ]

    @pytest.mark.parametrize(
        "algorithm,n,t,model", CASES,
        ids=[f"{a}-{m.describe()}" for a, n, t, m in CASES],
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_within_bound_is_report_or_typed_error(self, algorithm, n, t, model, seed):
        try:
            record = run_experiment(
                algorithm, n, t, standard_ids(n),
                attack=ALGORITHMS[algorithm].attacks[0]
                if "silent" not in ALGORITHMS[algorithm].attacks else "silent",
                seed=seed, model=model, max_rounds=64,
            )
        except (SimulationError, WireError):
            return  # typed in-run detection — acceptable under a model
        report = record.report
        assert isinstance(report, PropertyReport)
        assert report.model == model.describe()
        verdicts = model.expectations().classify(report.broken)
        spec = ALGORITHMS[algorithm]
        unexpected = {
            prop for prop, verdict in verdicts.items()
            if verdict == "unexpected"
            and (prop != "order_preservation" or spec.order_preserving)
        }
        assert not unexpected, (algorithm, model.describe(), report.violations)

    def test_alg1_holds_everything_under_light_impersonation(self):
        # Empirical anchor: k forged frames replay real traffic, which only
        # reinforces alg1's echo/ready thresholds — all four properties
        # survive across seeds.
        for seed in range(5):
            record = run_experiment(
                "alg1", 7, 2, standard_ids(7), attack="silent", seed=seed,
                model=SystemModel.impersonation(2, seed=seed),
            )
            assert record.report.ok, (seed, record.report.violations)
            assert record.report.injected.get("forge")

    def test_report_counts_model_injections(self):
        record = run_experiment(
            "floodset", 5, 1, standard_ids(5), attack="silent", seed=0,
            model=SystemModel.partial_synchrony(0.3, max_delay=2, seed=1),
        )
        report = record.report
        injected = set(report.injected)
        assert injected <= {"omission", "late"}
        assert injected, "a 30% loss rate must actually touch traffic"


class TestMeaninglessPairings:
    @pytest.mark.parametrize(
        "model",
        [SystemModel.impersonation(1), SystemModel.partial_synchrony(0.1)],
        ids=lambda m: m.kind,
    )
    def test_consensus_rejects_non_classic_models(self, model):
        # The consensus baseline presumes authentic senders (it injects
        # identities); running it under a model that forges or withholds
        # frames is a configuration error, not a finding.
        assert model.kind not in ALGORITHMS["consensus"].models
        with pytest.raises(ConfigurationError, match="model"):
            run_experiment(
                "consensus", 7, 2, standard_ids(7), attack="silent", model=model
            )

    def test_classic_is_universal(self):
        for name, spec in ALGORITHMS.items():
            assert "classic" in spec.models, name

    def test_impersonation_needs_a_network(self):
        with pytest.raises(ConfigurationError):
            SystemModel.impersonation(1).build_injector(n=1)


class TestModelParsingAndValidation:
    @pytest.mark.parametrize("text,expected", [
        ("classic", SystemModel.classic()),
        ("impersonation:k=3", SystemModel.impersonation(3)),
        ("impersonation:k=3,seed=7", SystemModel.impersonation(3, seed=7)),
        ("partial-synchrony:rate=0.1", SystemModel.partial_synchrony(0.1)),
        (
            "partial-synchrony:rate=0.1,delay=3,seed=2",
            SystemModel.partial_synchrony(0.1, max_delay=3, seed=2),
        ),
    ])
    def test_parse_model_grammar(self, text, expected):
        assert parse_model(text) == expected

    @pytest.mark.parametrize("text", [
        "bogus",
        "impersonation",            # missing k
        "impersonation:k=-1",
        "impersonation:k=two",
        "impersonation:rate=0.1",   # foreign axis
        "partial-synchrony",        # missing rate
        "partial-synchrony:rate=1.5",
        "partial-synchrony:rate=0.1,delay=-1",
        "classic:k=1",
        "",
    ])
    def test_parse_model_rejects_malformed_specs(self, text):
        with pytest.raises(ConfigurationError):
            parse_model(text)

    @pytest.mark.parametrize("model", [
        SystemModel.classic(),
        SystemModel.impersonation(2),
        SystemModel.impersonation(2, seed=9),
        SystemModel.partial_synchrony(0.05, max_delay=2, seed=4),
    ], ids=lambda m: m.describe())
    def test_spec_and_dict_round_trips(self, model):
        assert parse_model(model.spec()) == model
        assert SystemModel.from_dict(model.to_dict()) == model

    def test_constructor_validation_is_typed(self):
        with pytest.raises(ConfigurationError):
            SystemModel(kind="impersonation", k=True)  # bools are not counts
        with pytest.raises(ConfigurationError):
            SystemModel(kind="partial-synchrony", omission_rate=-0.1)
        with pytest.raises(ConfigurationError):
            SystemModel(kind="classic", seed=1)  # classic has no seed axis
        with pytest.raises(ConfigurationError):
            SystemModel(kind="impersonation", k=1, omission_rate=0.5)
