"""Tests for the command-line driver."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "--algorithm", "alg1", "--n", "7", "--t", "2"]
        )
        assert args.algorithm == "alg1"
        assert args.attack == "silent"

    def test_size_parsing(self):
        args = build_parser().parse_args(
            ["sweep", "--algorithms", "alg1", "--sizes", "7:2", "10:3"]
        )
        assert args.sizes == [(7, 2), (10, 3)]

    def test_bad_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--algorithms", "alg1", "--sizes", "7-2"]
            )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--algorithm", "bogus", "--n", "7", "--t", "2"]
            )


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "alg1" in out and "id-forging" in out and "uniform" in out

    def test_run_ok(self, capsys):
        code = main(
            ["run", "--algorithm", "alg1", "--n", "7", "--t", "2",
             "--attack", "id-forging", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "->" in out

    def test_run_alg4(self, capsys):
        code = main(
            ["run", "--algorithm", "alg4", "--n", "11", "--t", "2",
             "--attack", "selective-echo"]
        )
        assert code == 0

    def test_scenario(self, capsys):
        code = main(["scenario", "saturation"])
        assert code == 0
        assert "forging" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(
            ["sweep", "--algorithms", "alg1", "alg4", "--sizes", "7:2", "11:2",
             "--attacks", "silent", "noise", "--seeds", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alg1" in out and "alg4" in out

    def test_sweep_parallel_and_cached(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        argv = [
            "sweep", "--algorithms", "alg1", "--sizes", "7:2",
            "--attacks", "silent", "--seeds", "0", "1",
            "--workers", "2", "--cache", str(cache),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 executed, 0 cached" in out
        # Second invocation hits the cache: zero runs executed.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 executed, 2 cached" in out

    def test_run_rejects_meaningless_pairing(self, capsys):
        code = main(
            ["run", "--algorithm", "okun-crash", "--n", "7", "--t", "2",
             "--attack", "id-forging"]
        )
        assert code == 2
        assert "valid attacks" in capsys.readouterr().err

    def test_sweep_csv(self, capsys, tmp_path):
        target = tmp_path / "out.csv"
        code = main(
            ["sweep", "--algorithms", "alg1", "--sizes", "7:2",
             "--attacks", "silent", "--csv", str(target)]
        )
        assert code == 0
        assert target.exists()
        assert "algorithm" in target.read_text().splitlines()[0]

    def test_bounds(self, capsys):
        code = main(["bounds", "7:2", "11:2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "N>3t" in out and "28/27" in out

    def test_inspect(self, capsys):
        code = main(
            ["inspect", "--algorithm", "alg1", "--n", "7", "--t", "2",
             "--attack", "divergence", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rank spread" in out
        assert "accepted-set views" in out
        assert "properties: OK" in out

    def test_inspect_save(self, capsys, tmp_path):
        target = tmp_path / "run.json"
        code = main(
            ["inspect", "--algorithm", "alg1", "--n", "7", "--t", "2",
             "--save", str(target)]
        )
        assert code == 0
        from repro.analysis import load_run

        archive = load_run(target)
        assert archive.n == 7
