"""Tests for the command-line driver."""

from __future__ import annotations

import pytest

from repro.cli import (
    EXIT_INFRA,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_VIOLATION,
    build_parser,
    main,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "--algorithm", "alg1", "--n", "7", "--t", "2"]
        )
        assert args.algorithm == "alg1"
        assert args.attack == "silent"

    def test_size_parsing(self):
        args = build_parser().parse_args(
            ["sweep", "--algorithms", "alg1", "--sizes", "7:2", "10:3"]
        )
        assert args.sizes == [(7, 2), (10, 3)]

    def test_bad_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--algorithms", "alg1", "--sizes", "7-2"]
            )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--algorithm", "bogus", "--n", "7", "--t", "2"]
            )


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "alg1" in out and "id-forging" in out and "uniform" in out

    def test_run_ok(self, capsys):
        code = main(
            ["run", "--algorithm", "alg1", "--n", "7", "--t", "2",
             "--attack", "id-forging", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "->" in out

    def test_run_alg4(self, capsys):
        code = main(
            ["run", "--algorithm", "alg4", "--n", "11", "--t", "2",
             "--attack", "selective-echo"]
        )
        assert code == 0

    def test_scenario(self, capsys):
        code = main(["scenario", "saturation"])
        assert code == 0
        assert "forging" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(
            ["sweep", "--algorithms", "alg1", "alg4", "--sizes", "7:2", "11:2",
             "--attacks", "silent", "noise", "--seeds", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alg1" in out and "alg4" in out

    def test_sweep_parallel_and_cached(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        argv = [
            "sweep", "--algorithms", "alg1", "--sizes", "7:2",
            "--attacks", "silent", "--seeds", "0", "1",
            "--workers", "2", "--cache", str(cache),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 executed, 0 cached" in out
        # Second invocation hits the cache: zero runs executed.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 executed, 2 cached" in out

    def test_run_rejects_meaningless_pairing(self, capsys):
        code = main(
            ["run", "--algorithm", "okun-crash", "--n", "7", "--t", "2",
             "--attack", "id-forging"]
        )
        # Configuration errors are infra failures (3), not violations (2):
        # the measurement never happened.
        assert code == 3
        assert "valid attacks" in capsys.readouterr().err

    def test_sweep_csv(self, capsys, tmp_path):
        target = tmp_path / "out.csv"
        code = main(
            ["sweep", "--algorithms", "alg1", "--sizes", "7:2",
             "--attacks", "silent", "--csv", str(target)]
        )
        assert code == 0
        assert target.exists()
        assert "algorithm" in target.read_text().splitlines()[0]

    def test_bounds(self, capsys):
        code = main(["bounds", "7:2", "11:2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "N>3t" in out and "28/27" in out

    def test_inspect(self, capsys):
        code = main(
            ["inspect", "--algorithm", "alg1", "--n", "7", "--t", "2",
             "--attack", "divergence", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rank spread" in out
        assert "accepted-set views" in out
        assert "properties: OK" in out

    def test_inspect_save(self, capsys, tmp_path):
        target = tmp_path / "run.json"
        code = main(
            ["inspect", "--algorithm", "alg1", "--n", "7", "--t", "2",
             "--save", str(target)]
        )
        assert code == 0
        from repro.analysis import load_run

        archive = load_run(target)
        assert archive.n == 7


class TestExitCodeContract:
    """The documented exit codes (docs/robustness.md) are append-only API."""

    def test_contract_values(self):
        assert EXIT_OK == 0
        assert EXIT_VIOLATION == 2
        assert EXIT_INFRA == 3
        assert EXIT_INTERRUPTED == 4

    def test_success_is_zero(self):
        assert main(
            ["run", "--algorithm", "alg1", "--n", "7", "--t", "2"]
        ) == EXIT_OK

    def test_configuration_error_is_infra(self, capsys):
        code = main(
            ["run", "--algorithm", "alg1", "--n", "6", "--t", "2"]
        )
        assert code == EXIT_INFRA
        capsys.readouterr()

    def test_unusable_journal_is_infra(self, capsys, tmp_path):
        code = main(
            ["runs", "resume", "missing", "--runs-dir", str(tmp_path)]
        )
        assert code == EXIT_INFRA
        assert "cannot read journal" in capsys.readouterr().err

    def test_duplicate_run_id_is_infra(self, capsys, tmp_path):
        argv = [
            "sweep", "--algorithms", "alg1", "--sizes", "7:2", "--seeds", "0",
            "--workers", "1", "--journal", str(tmp_path), "--run-id", "dup",
        ]
        assert main(argv) == EXIT_OK
        capsys.readouterr()
        assert main(argv) == EXIT_INFRA
        assert "already exists" in capsys.readouterr().err

    def test_bad_run_id_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["runs", "resume", "../escape", "--runs-dir", "x"]
            )


class TestRunsCommands:
    def _journaled_sweep(self, tmp_path, run_id="r1"):
        return main([
            "sweep", "--algorithms", "alg1", "--sizes", "7:2",
            "--seeds", "0", "1", "--workers", "1",
            "--journal", str(tmp_path), "--run-id", run_id,
        ])

    def test_list_empty(self, capsys, tmp_path):
        assert main(["runs", "list", "--runs-dir", str(tmp_path)]) == EXIT_OK
        assert "no journals" in capsys.readouterr().out

    def test_journaled_sweep_then_list(self, capsys, tmp_path):
        assert self._journaled_sweep(tmp_path) == EXIT_OK
        capsys.readouterr()
        assert main(["runs", "list", "--runs-dir", str(tmp_path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "r1" in out and "sweep" in out and "complete" in out

    def test_resume_complete_run_executes_nothing(self, capsys, tmp_path):
        assert self._journaled_sweep(tmp_path) == EXIT_OK
        capsys.readouterr()
        code = main([
            "runs", "resume", "r1", "--runs-dir", str(tmp_path),
            "--workers", "1",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "0 executed" in out and "2 restored" in out

    def test_doctor_asserts_no_reexecution(self, capsys, tmp_path):
        assert self._journaled_sweep(tmp_path) == EXIT_OK
        main(["runs", "resume", "r1", "--runs-dir", str(tmp_path),
              "--workers", "1"])
        capsys.readouterr()
        code = main([
            "runs", "doctor", "r1", "--runs-dir", str(tmp_path),
            "--assert-no-reexecution",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "reexecution: none" in out
        assert "complete" in out

    def test_doctor_missing_header_is_infra(self, capsys, tmp_path):
        # A journal whose only line is torn has no header: damaged.
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v": 1, "seq": 0, "ty')
        code = main(["runs", "doctor", "bad", "--runs-dir", str(tmp_path)])
        assert code == EXIT_INFRA
        assert "no header" in capsys.readouterr().err

    def test_journaled_chaos_round_trip(self, capsys, tmp_path):
        argv = [
            "chaos", "--algorithms", "alg1", "--sizes", "7:2",
            "--seeds", "0", "--chaos-seeds", "0", "--drop", "0.2",
            "--workers", "1", "--journal", str(tmp_path), "--run-id", "c1",
        ]
        assert main(argv) == EXIT_OK
        capsys.readouterr()
        code = main([
            "runs", "resume", "c1", "--runs-dir", str(tmp_path),
            "--workers", "1",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "already terminal, 0 to execute" in out
