"""Tests for the synchronous Echo/Ready reliable broadcast (Bracha [4])."""

from __future__ import annotations

import pytest

from helpers import standard_ids
from repro import run_protocol
from repro.adversary import make_adversary
from repro.broadcast import (
    NO_DELIVERY,
    RELIABLE_BROADCAST_ROUNDS,
    InitialMessage,
    make_rb_factory,
)
from repro.sim import Adversary


def rb_run(n, t, source_index, value, attack=None, seed=0, byzantine=(), adversary=None):
    ids = standard_ids(n)
    factory = make_rb_factory(n, ids, seed=seed, source_index=source_index, value=value)
    if adversary is None and attack is not None:
        adversary = make_adversary(attack)
    return run_protocol(
        factory,
        n=n,
        t=t,
        ids=ids,
        byzantine=byzantine,
        adversary=adversary,
        seed=seed,
    )


class TestCorrectSource:
    @pytest.mark.parametrize("attack", ["silent", "noise", "replay"])
    def test_everyone_delivers_source_value(self, attack):
        result = rb_run(7, 2, source_index=0, value=42, attack=attack,
                        byzantine=[3, 4])
        for index in result.correct:
            assert result.outputs[index] == 42

    def test_round_complexity(self):
        result = rb_run(7, 2, source_index=0, value=42, attack="silent",
                        byzantine=[3, 4])
        assert result.metrics.round_count == RELIABLE_BROADCAST_ROUNDS

    def test_fault_free(self):
        result = rb_run(5, 0, source_index=2, value=9)
        assert all(result.outputs[i] == 9 for i in result.correct)


class TestByzantineSource:
    def test_silent_byzantine_source_nobody_delivers(self):
        result = rb_run(7, 2, source_index=0, value=42, attack="silent",
                        byzantine=[0, 1])
        for index in result.correct:
            assert result.outputs[index] == NO_DELIVERY

    def test_equivocating_source_agreement(self):
        """A source sending different values to different halves: either all
        correct processes deliver the same value or none deliver."""

        class EquivocatingSource(Adversary):
            def send(self, round_no, correct_outboxes):
                if round_no != 1:
                    return {}
                source = self.ctx.byzantine[0]
                outbox = {}
                for peer in self.ctx.correct:
                    link = self.ctx.topology.label_of(source, peer)
                    value = 100 if peer % 2 == 0 else 200
                    outbox[link] = [InitialMessage(value)]
                return {source: outbox}

        for seed in range(4):
            result = rb_run(
                7, 2, source_index=0, value=0, byzantine=[0, 1],
                adversary=EquivocatingSource(), seed=seed,
            )
            delivered = {
                result.outputs[i]
                for i in result.correct
                if result.outputs[i] != NO_DELIVERY
            }
            assert len(delivered) <= 1, f"seed={seed}: split delivery {delivered}"

    def test_source_helped_by_colluder_agreement(self):
        """Byzantine source + colluding echoer still cannot split correct
        processes onto two values (N-t echo quorums intersect)."""

        class SplitEcho(Adversary):
            def send(self, round_no, correct_outboxes):
                from repro.broadcast import EchoValueMessage, ReadyValueMessage

                outboxes = {}
                for slot in self.ctx.byzantine:
                    outbox = {}
                    for peer in self.ctx.correct:
                        link = self.ctx.topology.label_of(slot, peer)
                        value = 100 if peer % 2 == 0 else 200
                        if round_no == 1 and slot == self.ctx.byzantine[0]:
                            outbox[link] = [InitialMessage(value)]
                        elif round_no == 2:
                            outbox[link] = [EchoValueMessage(value)]
                        elif round_no >= 3:
                            outbox[link] = [ReadyValueMessage(value)]
                    outboxes[slot] = outbox
                return outboxes

        for seed in range(4):
            result = rb_run(
                7, 2, source_index=0, value=0, byzantine=[0, 1],
                adversary=SplitEcho(), seed=seed,
            )
            delivered = {
                result.outputs[i]
                for i in result.correct
                if result.outputs[i] != NO_DELIVERY
            }
            assert len(delivered) <= 1
