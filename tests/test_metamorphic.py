"""Metamorphic invariance: the model's symmetries, held as test properties.

The ports model (Section II) promises that nothing observable depends on
*concrete* link labels — labels are private per-endpoint names — and the
renaming problem promises that only the *order* of original ids matters,
not their values. Each symmetry yields a metamorphic relation we can test
without knowing the expected output:

* **Link relabeling** — rerunning with a different label permutation
  (``topology_seed``) must leave every correct process's output, keyed by
  original id, unchanged. ``topology_seed`` perturbs *only* the labelling:
  fault slots, process randomness, and the adversary stream all still
  derive from ``seed``.
* **Order-preserving id translation** — applying ``x -> a*x + b`` (a > 0)
  to the original ids must translate the output keys and leave the chosen
  names identical, for any algorithm that solves order-preserving
  renaming from id *order* alone.

Each relation is asserted per attack family. Excluded families (with the
reason in the list definitions below) are the ones whose *adversary* is
not symmetric under the transform — e.g. the crash adversary keeps a
random subset of concrete link labels, so relabeling legitimately changes
which messages survive. Runs are deterministic, so these are exact
assertions, not statistical ones.
"""

from __future__ import annotations

import pytest

from helpers import run_registered, standard_ids
from repro.analysis import ALGORITHMS

#: (n, t) per algorithm under metamorphic test: Alg. 1, the constant-time
#: variant, and the two-step Alg. 4 — the paper's three renaming protocols.
SIZES = {
    "alg1": (7, 2),
    "alg1-constant": (11, 1),
    "alg4": (11, 2),
}

#: Attack families whose adversary never touches concrete link labels:
#: they pick victims by global process index and craft payloads from
#: observed message *content*. For these, relabeling is a pure symmetry.
#: Excluded: ``crash`` (keeps a random subset of concrete labels),
#: ``noise`` and ``fuzz`` (draw target links label-by-label from the rng).
_LABEL_DEPENDENT = {"crash", "noise", "fuzz"}

#: Attack families that never manufacture concrete id values: everything
#: they emit is derived from observed ids/ranks, so an affine translation
#: of the workload translates their traffic consistently too. Excluded:
#: ``noise`` and ``fuzz`` (emit rng-drawn concrete ids that do not follow
#: the translation). The forging attacks stay: they interpolate between
#: *observed* ids, which commutes with order-preserving translation.
_VALUE_DEPENDENT = {"noise", "fuzz"}

SEEDS = range(2)
TRANSLATIONS = [(3, 7), (11, 1000)]  # x -> a*x + b, a > 0


def _families(algorithm: str, excluded: set) -> list:
    return [a for a in ALGORITHMS[algorithm].attacks if a not in excluded]


RELABEL_GRID = [
    (algorithm, attack)
    for algorithm in SIZES
    for attack in _families(algorithm, _LABEL_DEPENDENT)
]
TRANSLATE_GRID = [
    (algorithm, attack)
    for algorithm in SIZES
    for attack in _families(algorithm, _VALUE_DEPENDENT)
]


@pytest.mark.parametrize("algorithm,attack", RELABEL_GRID)
def test_outputs_invariant_under_link_relabeling(algorithm, attack):
    n, t = SIZES[algorithm]
    for seed in SEEDS:
        base = run_registered(
            algorithm, n, t, attack=attack, seed=seed, engine="batched",
            collect_trace=False,
        )
        relabeled = run_registered(
            algorithm, n, t, attack=attack, seed=seed, engine="batched",
            collect_trace=False, topology_seed=seed + 10_000,
        )
        assert base.byzantine == relabeled.byzantine, (
            "topology_seed must not move fault slots"
        )
        assert base.outputs_by_id() == relabeled.outputs_by_id(), (
            f"{algorithm}/{attack}/seed={seed}: outputs depend on concrete "
            f"link labels"
        )


@pytest.mark.parametrize("algorithm,attack", TRANSLATE_GRID)
def test_names_invariant_under_id_translation(algorithm, attack):
    for a, b in TRANSLATIONS:
        n, t = SIZES[algorithm]
        base_ids = standard_ids(n)
        translated_ids = [a * x + b for x in base_ids]
        for seed in SEEDS:
            base = run_registered(
                algorithm, n, t, attack=attack, seed=seed, engine="batched",
                collect_trace=False, ids=base_ids,
            )
            translated = run_registered(
                algorithm, n, t, attack=attack, seed=seed, engine="batched",
                collect_trace=False, ids=translated_ids,
            )
            expected = {a * k + b: v for k, v in base.new_names().items()}
            assert expected == translated.new_names(), (
                f"{algorithm}/{attack}/seed={seed}/x->{a}x+{b}: names depend "
                f"on concrete id values, not just their order"
            )


def test_relabeling_changes_the_wiring_it_claims_to_change():
    """Sanity check on the instrument itself: a different topology_seed
    really does permute labels (otherwise every relabeling test above is
    vacuous), while the default reproduces the original wiring."""
    from repro.sim.topology import FullMeshTopology

    base = FullMeshTopology(7, seed=0)
    same = FullMeshTopology(7, seed=0)
    other = FullMeshTopology(7, seed=10_000)
    wiring = lambda topo: [dict(topo.link_items(p)) for p in range(7)]
    assert wiring(base) == wiring(same)
    assert wiring(base) != wiring(other)


def test_relabeled_run_still_counts_the_same_traffic():
    """Relabeling permutes who-hears-what-on-which-link but not how much
    correct traffic flows (label-oblivious attack, so byz traffic too)."""
    base = run_registered(
        "alg1", 7, 2, attack="divergence", seed=0, engine="batched",
        collect_trace=False,
    )
    relabeled = run_registered(
        "alg1", 7, 2, attack="divergence", seed=0, engine="batched",
        collect_trace=False, topology_seed=99,
    )
    assert base.metrics.correct_messages == relabeled.metrics.correct_messages
    assert base.metrics.correct_bits == relabeled.metrics.correct_bits
    assert base.metrics.round_count == relabeled.metrics.round_count
