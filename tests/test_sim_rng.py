"""Unit tests for deterministic random-stream derivation."""

from __future__ import annotations

import pytest

from repro.sim import derive_np_generator, derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "topology", 3) == derive_seed(42, "topology", 3)

    def test_varies_with_seed(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_varies_with_tokens(self):
        assert derive_seed(1, "topology", 0) != derive_seed(1, "topology", 1)
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_token_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_int_and_string_tokens_distinct(self):
        # repr-based encoding: the int 1 and the string "1" are different paths.
        assert derive_seed(7, 1) != derive_seed(7, "1")

    def test_no_token_prefix_collision(self):
        # ("ab",) must differ from ("a", "b") — the separator prevents
        # concatenation collisions.
        assert derive_seed(3, "ab") != derive_seed(3, "a", "b")

    def test_result_fits_64_bits(self):
        for seed in (0, 1, 2**31, 2**62):
            assert 0 <= derive_seed(seed, "t") < 2**64


class TestDeriveRng:
    def test_same_stream_reproducible(self):
        first = derive_rng(9, "adversary")
        second = derive_rng(9, "adversary")
        assert [first.random() for _ in range(5)] == [
            second.random() for _ in range(5)
        ]

    def test_independent_streams_differ(self):
        a = derive_rng(9, "process", 0)
        b = derive_rng(9, "process", 1)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestDeriveNpGenerator:
    """The numpy twin of derive_rng: same derive_seed path, numpy stream."""

    @pytest.fixture(autouse=True)
    def _numpy(self):
        pytest.importorskip("numpy")

    def test_same_stream_reproducible(self):
        first = derive_np_generator(9, "workload", 3)
        second = derive_np_generator(9, "workload", 3)
        assert first.random(5).tolist() == second.random(5).tolist()

    def test_independent_streams_differ(self):
        a = derive_np_generator(9, "workload", 0)
        b = derive_np_generator(9, "workload", 1)
        assert a.random(5).tolist() != b.random(5).tolist()

    def test_seeded_from_derive_seed_path(self):
        # Provably the same child-seed derivation as derive_rng: feeding
        # the derived seed to PCG64 directly reproduces the stream.
        from numpy.random import PCG64, Generator

        direct = Generator(PCG64(derive_seed(7, "chaos", "drop")))
        derived = derive_np_generator(7, "chaos", "drop")
        assert direct.random(5).tolist() == derived.random(5).tolist()

    def test_varies_with_tokens(self):
        a = derive_np_generator(1, "a")
        b = derive_np_generator(1, "b")
        assert a.random(5).tolist() != b.random(5).tolist()
