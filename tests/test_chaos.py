"""Unit tests for the beyond-model fault layer: plans, injector, monitor."""

from __future__ import annotations

import pickle

import pytest

from helpers import standard_ids
from repro.core.messages import IdMessage
from repro.sim import (
    BROADCAST,
    ChaosInjector,
    ConfigurationError,
    FaultPlan,
    SafetyMonitor,
    SafetyPolicy,
    SafetyViolation,
    run_protocol,
)
from repro.core.renaming import OrderPreservingRenaming


class TestFaultPlan:
    @pytest.mark.parametrize("axis", ["drop", "duplicate", "corrupt"])
    @pytest.mark.parametrize("value", [-0.1, 1.5, 2.0])
    def test_rejects_non_probabilities(self, axis, value):
        with pytest.raises(ConfigurationError):
            FaultPlan(**{axis: value})

    def test_rejects_negative_extra_crashes(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(extra_crashes=-1)

    def test_rejects_crash_round_zero(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crash_round=0)

    def test_rejects_bad_crash_entries(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes=((-1, 1),))
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes=((0, 0),))

    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty
        assert FaultPlan(seed=99).is_empty  # a seed alone injects nothing
        assert not FaultPlan(drop=0.1).is_empty
        assert not FaultPlan(crashes=((0, 1),)).is_empty
        assert not FaultPlan(extra_crashes=1).is_empty

    def test_describe_names_every_axis(self):
        text = FaultPlan(
            seed=7, drop=0.1, duplicate=0.2, corrupt=0.3,
            crashes=((0, 2),), extra_crashes=1, crash_round=3,
        ).describe()
        for fragment in ("drop=0.1", "dup=0.2", "corrupt=0.3", "crash=0@2",
                         "crash+1@3", "seed=7"):
            assert fragment in text
        assert FaultPlan().describe() == "none"


class TestChaosInjector:
    def test_rejects_crash_of_byzantine_slot(self):
        with pytest.raises(ConfigurationError, match="Byzantine"):
            ChaosInjector(FaultPlan(crashes=((2, 1),)), n=4, byzantine=(2,))

    def test_rejects_crash_out_of_range(self):
        with pytest.raises(ConfigurationError, match="n=4"):
            ChaosInjector(FaultPlan(crashes=((4, 1),)), n=4)

    def test_rejects_more_extra_crashes_than_correct_processes(self):
        with pytest.raises(ConfigurationError, match="extra"):
            ChaosInjector(FaultPlan(extra_crashes=4), n=4, byzantine=(0,))

    def test_perturbation_is_deterministic(self):
        plan = FaultPlan(seed=5, drop=0.4, duplicate=0.4)
        outbox = {BROADCAST: [IdMessage(10), IdMessage(20)]}
        first = ChaosInjector(plan, n=4).perturb(3, {0: outbox}, {})
        second = ChaosInjector(plan, n=4).perturb(3, {0: outbox}, {})
        assert first == second

    def test_drop_everything_spares_the_self_loop(self):
        injector = ChaosInjector(FaultPlan(drop=1.0), n=4)
        correct, _ = injector.perturb(1, {0: {BROADCAST: [IdMessage(10)]}}, {})
        delivered = {
            link: msgs for link, msgs in correct[0].items() if msgs
        }
        # Only the self-loop (label n=4) survives total network loss.
        assert delivered == {4: [IdMessage(10)]}
        assert injector.report.dropped == 3

    def test_duplicate_everything_doubles_network_links(self):
        injector = ChaosInjector(FaultPlan(duplicate=1.0), n=4)
        correct, _ = injector.perturb(1, {0: {BROADCAST: [IdMessage(10)]}}, {})
        for link in (1, 2, 3):
            assert correct[0][link] == [IdMessage(10), IdMessage(10)]
        assert correct[0][4] == [IdMessage(10)]  # self-loop untouched
        assert injector.report.duplicated == 3

    def test_crash_empties_outbox_from_crash_round(self):
        injector = ChaosInjector(FaultPlan(crashes=((0, 2),)), n=4)
        outboxes = {0: {BROADCAST: [IdMessage(10)]}, 1: {BROADCAST: [IdMessage(20)]}}
        before, _ = injector.perturb(1, outboxes, {})
        assert before[0] != {}
        assert injector.report.crash_engaged == ()
        after, _ = injector.perturb(2, outboxes, {})
        assert after[0] == {}
        assert after[1] != {}
        assert injector.report.crash_engaged == ((0, 2),)

    def test_inputs_are_never_mutated(self):
        injector = ChaosInjector(FaultPlan(drop=1.0, crashes=((0, 1),)), n=4)
        outbox = {BROADCAST: [IdMessage(10)]}
        injector.perturb(1, {0: outbox, 1: outbox}, {})
        assert outbox == {BROADCAST: [IdMessage(10)]}

    def test_corruption_goes_through_the_codec(self):
        injector = ChaosInjector(FaultPlan(seed=11, corrupt=1.0), n=4)
        correct, _ = injector.perturb(1, {0: {BROADCAST: [IdMessage(10)]}}, {})
        report = injector.report
        # Every network copy was either re-decoded to something (possibly a
        # different type) or discarded as an unparseable frame.
        assert report.corrupted + report.corrupted_dropped == 3
        survivors = [m for link in (1, 2, 3) for m in correct[0][link]]
        assert len(survivors) == report.corrupted
        assert correct[0][4] == [IdMessage(10)]

    def test_report_labels_and_dict(self):
        injector = ChaosInjector(FaultPlan(drop=1.0, crashes=((1, 1),)), n=4)
        injector.perturb(1, {0: {BROADCAST: [IdMessage(10)]}, 1: {}}, {})
        report = injector.report
        assert report.injected
        assert any(label.startswith("drop") for label in report.labels())
        assert any(label.startswith("crash") for label in report.labels())
        assert report.as_dict()["dropped"] == 3
        assert report.as_dict()["crash_engaged"] == [[1, 1]]


class TestRunnerIntegration:
    def test_empty_plan_installs_no_injector(self):
        result = run_protocol(
            OrderPreservingRenaming, n=4, t=1, ids=standard_ids(4), seed=0,
            chaos=FaultPlan(),
        )
        assert result.chaos is None

    def test_non_empty_plan_reports(self):
        result = run_protocol(
            OrderPreservingRenaming, n=4, t=1, ids=standard_ids(4), seed=0,
            chaos=FaultPlan(seed=3, duplicate=0.5), max_rounds=32,
        )
        assert result.chaos is not None
        assert result.chaos.duplicated > 0


class _StubProcess:
    def __init__(self, done=False, output=None):
        self.done = done
        self.output_value = output


class TestSafetyMonitor:
    def test_round_budget_watchdog(self):
        monitor = SafetyMonitor(SafetyPolicy(round_budget=5), ids={})
        monitor.begin_round(5)  # at budget: fine
        with pytest.raises(SafetyViolation) as excinfo:
            monitor.begin_round(6)
        assert excinfo.value.violated == "round-budget"
        assert excinfo.value.round_no == 6

    def test_validity_checked_as_names_are_emitted(self):
        monitor = SafetyMonitor(SafetyPolicy(namespace=4), ids={0: 10})
        monitor.after_deliver(1, {0: _StubProcess()})  # not done: no check
        with pytest.raises(SafetyViolation) as excinfo:
            monitor.after_deliver(2, {0: _StubProcess(done=True, output=9)})
        assert excinfo.value.violated == "validity"
        assert excinfo.value.ids == (10,)
        assert excinfo.value.round_no == 2

    def test_validity_rejects_bool_and_non_int(self):
        for garbage in (True, "3", 2.5):
            monitor = SafetyMonitor(SafetyPolicy(namespace=4), ids={0: 10})
            with pytest.raises(SafetyViolation):
                monitor.after_deliver(1, {0: _StubProcess(done=True, output=garbage)})

    def test_uniqueness_names_both_offenders(self):
        monitor = SafetyMonitor(SafetyPolicy(), ids={0: 10, 1: 20})
        monitor.after_deliver(1, {0: _StubProcess(done=True, output=3)})
        with pytest.raises(SafetyViolation) as excinfo:
            monitor.after_deliver(2, {1: _StubProcess(done=True, output=3)})
        assert excinfo.value.violated == "uniqueness"
        assert set(excinfo.value.ids) == {10, 20}

    def test_each_process_checked_once(self):
        monitor = SafetyMonitor(SafetyPolicy(), ids={0: 10})
        process = _StubProcess(done=True, output=3)
        monitor.after_deliver(1, {0: process})
        monitor.after_deliver(2, {0: process})  # re-seen, not re-claimed

    def test_unhashable_output_is_not_a_name(self):
        monitor = SafetyMonitor(SafetyPolicy(), ids={0: 10, 1: 20})
        monitor.after_deliver(1, {0: _StubProcess(done=True, output=[1, 2])})
        monitor.after_deliver(2, {1: _StubProcess(done=True, output=[1, 2])})

    def test_violation_pickles_with_payload(self):
        try:
            raise SafetyViolation(
                "boom", violated="validity", round_no=3, ids=(10,),
                trace_pointer=7,
            )
        except SafetyViolation as exc:
            clone = pickle.loads(pickle.dumps(exc))
        assert str(clone) == "boom"
        assert clone.violated == "validity"
        assert clone.round_no == 3
        assert clone.ids == (10,)
        assert clone.trace_pointer == 7
