"""White-box tests of attack construction details.

The attacks *are* executable versions of the paper's proof constructions, so
their internals deserve the same scrutiny as the protocols: a buggy attack
silently weakens every "properties hold under attack" test.
"""

from __future__ import annotations

import pytest

from helpers import standard_ids
from repro import OrderPreservingRenaming, TwoStepRenaming, run_protocol
from repro.adversary import (
    AsymmetricForgingAdversary,
    DivergenceAdversary,
    IdForgingAdversary,
    SelectiveEchoAdversary,
    SplitWorldAdversary,
)


def bind_against(adversary, factory=OrderPreservingRenaming, n=7, t=2, seed=0):
    """Run one round so bind() executes, then return (adversary, result)."""
    result = run_protocol(
        factory,
        n=n,
        t=t,
        ids=standard_ids(n),
        adversary=adversary,
        seed=seed,
        collect_trace=True,
    )
    return adversary, result


class TestIdForgingInternals:
    def test_fake_count_matches_budget(self):
        adversary, _ = bind_against(IdForgingAdversary())
        # n=7, t=2: floor(t(N-t)/(N-2t)) = floor(10/3) = 3 fakes.
        assert len(adversary.fakes) == 3

    def test_requested_count_capped_by_budget(self):
        adversary, _ = bind_against(IdForgingAdversary(count=100))
        assert len(adversary.fakes) == 3

    def test_smaller_count_honoured(self):
        adversary, result = bind_against(IdForgingAdversary(count=1))
        accepted = [
            len(e.detail)
            for e in result.trace.select(event="accepted")
            if e.process in result.correct
        ]
        assert max(accepted) == (7 - 2) + 1

    def test_fakes_disjoint_from_all_ids(self):
        adversary, result = bind_against(IdForgingAdversary())
        assert not set(adversary.fakes) & set(result.ids.values())


class TestAsymmetricForgingInternals:
    def test_victims_limited_to_t(self):
        adversary, _ = bind_against(AsymmetricForgingAdversary(victim_count=5))
        assert len(adversary.victims) <= 2

    def test_divergence_only_at_victims(self):
        adversary, result = bind_against(AsymmetricForgingAdversary())
        views = {
            e.process: frozenset(e.detail)
            for e in result.trace.select(event="accepted")
            if e.process in result.correct
        }
        fakes = set(adversary.fakes)
        for process, view in views.items():
            if process in adversary.victims:
                assert fakes <= view
            else:
                assert not fakes & view

    def test_fakes_never_timely(self):
        """The construction must stay below the timely threshold or Lemma
        IV.1's amplification would uniformise the views."""
        adversary, result = bind_against(AsymmetricForgingAdversary())
        fakes = set(adversary.fakes)
        for event in result.trace.select(event="timely"):
            if event.process in result.correct:
                assert not fakes & set(event.detail)

    def test_t_zero_noop(self):
        adversary, result = bind_against(
            AsymmetricForgingAdversary(), n=5, t=0
        )
        assert adversary.fakes == []
        assert len(result.new_names()) == 5

    def test_alternate_victims_interleave(self):
        adversary, result = bind_against(
            AsymmetricForgingAdversary(victim_mode="alternate")
        )
        by_id = sorted(result.correct, key=lambda i: result.ids[i])
        expected = by_id[1::2][:2]
        assert list(adversary.victims) == expected

    def test_unknown_victim_mode_rejected(self):
        with pytest.raises(ValueError):
            AsymmetricForgingAdversary(victim_mode="sideways")


class TestDivergenceInternals:
    def test_unknown_push_mode_rejected(self):
        with pytest.raises(ValueError):
            DivergenceAdversary(push_mode="sideways")

    def test_zigzag_votes_all_filtered(self):
        """Every zigzag vote must fail isValid — if any slipped through the
        E9a ablation conclusion would be suspect."""
        from repro.core import SystemParams, is_valid_ranks

        adversary, result = bind_against(DivergenceAdversary())
        outboxes = adversary._voting_push({})
        params = SystemParams(7, 2)
        correct_ids = sorted(result.ids[i] for i in result.correct)
        for outbox in outboxes.values():
            for messages in outbox.values():
                for message in messages:
                    vote = message.as_dict()
                    assert not is_valid_ranks(correct_ids, vote, params.delta)

    def test_valid_shift_votes_all_pass(self):
        from repro.core import SystemParams, is_valid_ranks

        adversary, result = bind_against(
            DivergenceAdversary(push_mode="valid-shift")
        )
        outboxes = adversary._voting_push({})
        params = SystemParams(7, 2)
        correct_ids = sorted(result.ids[i] for i in result.correct)
        for outbox in outboxes.values():
            for messages in outbox.values():
                for message in messages:
                    vote = message.as_dict()
                    assert is_valid_ranks(correct_ids, vote, params.delta)


class TestSelectiveEchoInternals:
    def test_poisoned_echo_exactly_n_ids(self):
        adversary, _ = bind_against(
            SelectiveEchoAdversary(), factory=TwoStepRenaming, n=11, t=2
        )
        outboxes = adversary._echo()
        for outbox in outboxes.values():
            for messages in outbox.values():
                for message in messages:
                    assert len(message.ids) <= 11

    def test_target_modes(self):
        for mode, picker in (
            ("alternate", lambda ordered: set(ordered[::2])),
            ("low-half", lambda ordered: set(ordered[: len(ordered) // 2])),
            ("high-half", lambda ordered: set(ordered[len(ordered) // 2:])),
        ):
            adversary, result = bind_against(
                SelectiveEchoAdversary(target=mode),
                factory=TwoStepRenaming,
                n=11,
                t=2,
            )
            ordered = sorted(result.correct, key=lambda i: result.ids[i])
            assert adversary.targets == picker(ordered), mode

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            SelectiveEchoAdversary(target="everyone")


class TestSplitWorldInternals:
    def test_unknown_support_rejected(self):
        with pytest.raises(ValueError):
            SplitWorldAdversary(support="most")

    def test_threshold_support_sizes(self):
        adversary, result = bind_against(SplitWorldAdversary())
        for slot, fakes in adversary._fakes.items():
            first, second = fakes
            audiences = adversary._audience[slot]
            assert len(audiences[first]) == 7 - 2 * 2  # N - 2t
            assert len(audiences[first]) + len(audiences[second]) == 5
