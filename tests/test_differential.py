"""Differential tests: independent execution modes must agree.

Two implementations of the same semantics are a free oracle for each other:

* exact (Fraction) vs float arithmetic — the float path is an approximation
  of the exact one and must produce identical *names* (the δ margins dwarf
  double-precision error at these scales);
* live runs vs their JSON archives — serialisation must be lossless;
* the golden corpus — canonical runs' exact outputs are pinned so silent
  semantic drift (a changed threshold, an off-by-one in a round count)
  cannot slip through a refactor.
"""

from __future__ import annotations

from functools import partial

import pytest

from helpers import standard_ids
from repro import (
    OrderPreservingRenaming,
    RenamingOptions,
    TwoStepRenaming,
    run_protocol,
)
from repro.adversary import ALG1_ATTACKS, make_adversary


class TestExactVsFloat:
    @pytest.mark.parametrize("attack", ALG1_ATTACKS)
    def test_names_agree(self, attack):
        n, t, seed = 7, 2, 5
        exact = run_protocol(
            OrderPreservingRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary(attack),
            seed=seed,
        )
        floaty = run_protocol(
            partial(
                OrderPreservingRenaming,
                options=RenamingOptions(exact_arithmetic=False),
            ),
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary(attack),
            seed=seed,
        )
        assert exact.new_names() == floaty.new_names(), attack


class TestWireFidelity:
    """Running every correct message through the binary codec must change
    nothing — the codec carries the full protocol losslessly."""

    @pytest.mark.parametrize(
        "attack", ["silent", "id-forging", "divergence", "rank-skew"]
    )
    def test_alg1_through_wire(self, attack):
        kwargs = dict(
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary(attack),
            seed=3,
        )
        base = run_protocol(OrderPreservingRenaming, **kwargs)
        wired = run_protocol(
            OrderPreservingRenaming, through_wire=True, **kwargs
        )
        assert base.new_names() == wired.new_names()
        assert base.metrics.round_count == wired.metrics.round_count

    def test_alg4_through_wire(self):
        kwargs = dict(
            n=11,
            t=2,
            ids=standard_ids(11),
            adversary=make_adversary("selective-echo"),
            seed=1,
        )
        base = run_protocol(TwoStepRenaming, **kwargs)
        wired = run_protocol(TwoStepRenaming, through_wire=True, **kwargs)
        assert base.new_names() == wired.new_names()

    def test_baselines_through_wire(self):
        from repro.baselines import FloodSetRenaming, OkunCrashRenaming

        for cls in (OkunCrashRenaming, FloodSetRenaming):
            kwargs = dict(
                n=7,
                t=2,
                ids=standard_ids(7),
                adversary=make_adversary("crash"),
                seed=2,
            )
            base = run_protocol(cls, **kwargs)
            wired = run_protocol(cls, through_wire=True, **kwargs)
            assert base.new_names() == wired.new_names(), cls.__name__


class TestArchiveFidelity:
    def test_every_attack_roundtrips(self, tmp_path):
        from repro.analysis import dump_run, load_run

        for attack in ("id-forging", "divergence", "rank-skew"):
            result = run_protocol(
                OrderPreservingRenaming,
                n=7,
                t=2,
                ids=standard_ids(7),
                adversary=make_adversary(attack),
                seed=1,
                collect_trace=True,
            )
            archive = load_run(dump_run(result, tmp_path / f"{attack}.json"))
            assert archive.new_names() == result.new_names()
            assert len(archive.trace) == len(list(result.trace))


class TestGoldenCorpus:
    """Exact expected outputs of canonical runs. If one of these changes,
    the protocol semantics changed — bump deliberately, never casually."""

    def test_alg1_fault_free(self):
        result = run_protocol(
            OrderPreservingRenaming,
            n=6,
            t=0,
            ids=[31, 7, 99, 54, 18, 76],
            seed=0,
        )
        assert result.new_names() == {7: 1, 18: 2, 31: 3, 54: 4, 76: 5, 99: 6}

    def test_alg1_under_forging_seed7(self):
        result = run_protocol(
            OrderPreservingRenaming,
            n=7,
            t=2,
            ids=[103_441, 55_200, 910_210, 8_118, 77_077, 150_150, 42_424],
            adversary=make_adversary("id-forging"),
            seed=7,
        )
        assert result.byzantine == (1, 6)
        assert result.new_names() == {
            8_118: 1,
            77_077: 5,
            103_441: 6,
            150_150: 7,
            910_210: 8,
        }

    def test_alg4_under_selective_echo_seed99(self):
        result = run_protocol(
            TwoStepRenaming,
            n=11,
            t=2,
            ids=[1_303, 2_771, 4_042, 4_979, 6_331, 7_177, 8_214, 8_846,
                 9_555, 10_203, 11_498],
            adversary=make_adversary("selective-echo"),
            seed=99,
        )
        names = result.new_names()
        assert len(names) == 9
        values = [names[i] for i in sorted(names)]
        assert values == sorted(values)
        assert result.metrics.round_count == 2

    def test_alg1_divergence_seed2_metrics(self):
        result = run_protocol(
            OrderPreservingRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary("divergence"),
            seed=2,
        )
        assert result.metrics.round_count == 10
        assert result.metrics.correct_messages == 693
        names = result.new_names()
        assert sorted(names.values()) == [1, 2, 3, 4, 5]
