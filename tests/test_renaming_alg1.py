"""Integration tests for Algorithm 1 (Theorem IV.10 and its lemmas)."""

from __future__ import annotations

from functools import partial

import pytest

from helpers import assert_renaming_ok, standard_ids
from repro import OrderPreservingRenaming, RenamingOptions, SystemParams, run_protocol
from repro.adversary import ALG1_ATTACKS, make_adversary

SIZES = [(4, 1), (7, 2), (10, 3), (13, 4)]


class TestTheoremIV10:
    """Validity + termination + uniqueness + order under every attack."""

    @pytest.mark.parametrize("attack", ALG1_ATTACKS)
    @pytest.mark.parametrize("n,t", SIZES)
    def test_properties_hold_under_attack(self, n, t, attack):
        params = SystemParams(n, t)
        for seed in (0, 1):
            result = run_protocol(
                OrderPreservingRenaming,
                n=n,
                t=t,
                ids=standard_ids(n),
                adversary=make_adversary(attack),
                seed=seed,
            )
            assert_renaming_ok(
                result,
                params.namespace_bound,
                context=f"alg1 n={n} t={t} attack={attack} seed={seed}",
            )

    def test_fault_free(self):
        result = run_protocol(
            OrderPreservingRenaming, n=6, t=0, ids=standard_ids(6), seed=0
        )
        assert_renaming_ok(result, 6)
        # With no faults and identical views, names are exactly the ranks.
        assert sorted(result.new_names().values()) == [1, 2, 3, 4, 5, 6]

    @pytest.mark.parametrize("n,t", SIZES)
    def test_round_complexity_exact(self, n, t):
        params = SystemParams(n, t)
        result = run_protocol(
            OrderPreservingRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary("silent"),
            seed=0,
        )
        assert result.metrics.round_count == params.total_rounds

    def test_resilience_enforced(self):
        with pytest.raises(ValueError):
            run_protocol(
                OrderPreservingRenaming, n=6, t=2, ids=standard_ids(6), seed=0
            )

    def test_resilience_check_can_be_disabled(self):
        options = RenamingOptions(enforce_resilience=False)
        result = run_protocol(
            partial(OrderPreservingRenaming, options=options),
            n=6,
            t=1,  # run t=1 actual faults but an over-tight promise is not made
            ids=standard_ids(6),
            adversary=make_adversary("silent"),
            seed=0,
        )
        assert len(result.new_names()) == 5


class TestIdSelectionLemmas:
    """White-box checks of Lemmas IV.1–IV.3 via the trace."""

    def run_traced(self, attack, n=7, t=2, seed=0):
        return run_protocol(
            OrderPreservingRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary(attack),
            seed=seed,
            collect_trace=True,
        )

    def collect(self, result, event):
        return {
            e.process: e.detail
            for e in result.trace.select(event=event)
            if e.process in result.correct
        }

    @pytest.mark.parametrize("attack", ALG1_ATTACKS)
    def test_lemma_iv1_timely_subset_of_all_accepted(self, attack):
        result = self.run_traced(attack)
        timely = self.collect(result, "timely")
        accepted = self.collect(result, "accepted")
        for p, timely_p in timely.items():
            for q, accepted_q in accepted.items():
                assert set(timely_p) <= set(accepted_q), (
                    f"attack={attack}: timely of {p} not within accepted of {q}"
                )

    @pytest.mark.parametrize("attack", ALG1_ATTACKS)
    def test_lemma_iv2_correct_ids_timely_everywhere(self, attack):
        result = self.run_traced(attack)
        correct_ids = {result.ids[i] for i in result.correct}
        for process, timely in self.collect(result, "timely").items():
            assert correct_ids <= set(timely), (
                f"attack={attack}: correct ids missing from timely of {process}"
            )

    @pytest.mark.parametrize("attack", ALG1_ATTACKS)
    @pytest.mark.parametrize("n,t", SIZES)
    def test_lemma_iv3_accepted_bound(self, n, t, attack):
        result = self.run_traced(attack, n=n, t=t)
        bound = SystemParams(n, t).accepted_bound
        for process, accepted in self.collect(result, "accepted").items():
            assert len(accepted) <= bound, (
                f"attack={attack} n={n} t={t}: |accepted|={len(accepted)} > {bound}"
            )

    def test_forging_attack_saturates_lemma_iv3(self):
        result = self.run_traced("id-forging")
        bound = SystemParams(7, 2).accepted_bound
        for accepted in self.collect(result, "accepted").values():
            assert len(accepted) == bound

    def test_lemma_iv7_initial_spread_bound(self):
        for attack in ("id-forging", "divergence", "split-world"):
            result = self.run_traced(attack)
            params = SystemParams(7, 2)
            initial = {
                e.process: e.detail
                for e in result.trace.select(event="ranks", round_no=4)
                if e.process in result.correct
            }
            timely = self.collect(result, "timely")
            union_timely = set().union(*timely.values())
            for identifier in union_timely:
                values = [r[identifier] for r in initial.values() if identifier in r]
                if len(values) > 1:
                    assert max(values) - min(values) <= params.initial_spread_bound


class TestVotingPhase:
    def test_lemma_iv8_spread_contracts_each_round(self):
        result = run_protocol(
            OrderPreservingRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary("divergence"),
            seed=0,
            collect_trace=True,
        )
        params = SystemParams(7, 2)
        correct_ids = {result.ids[i] for i in result.correct}
        spreads = []
        for round_no in range(4, params.total_rounds + 1):
            snapshots = [
                e.detail
                for e in result.trace.select(event="ranks", round_no=round_no)
                if e.process in result.correct
            ]
            if not snapshots:
                continue
            spread = max(
                max(s[i] for s in snapshots) - min(s[i] for s in snapshots)
                for i in correct_ids
            )
            spreads.append(spread)
        # Monotone non-increasing overall, and final below the inversion bar.
        assert spreads[-1] <= spreads[0]
        assert spreads[-1] < params.delta

    def test_exact_arithmetic_is_default(self):
        from fractions import Fraction

        result = run_protocol(
            OrderPreservingRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary("rank-skew"),
            seed=0,
            collect_trace=True,
        )
        final = [
            e
            for e in result.trace.select(event="ranks")
            if e.process in result.correct
        ][-1]
        assert all(isinstance(v, (int, Fraction)) for v in final.detail.values())

    def test_float_mode_works(self):
        options = RenamingOptions(exact_arithmetic=False)
        result = run_protocol(
            partial(OrderPreservingRenaming, options=options),
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary("rank-skew"),
            seed=0,
        )
        assert_renaming_ok(result, SystemParams(7, 2).namespace_bound)

    def test_zero_voting_rounds_rejected(self):
        with pytest.raises(ValueError):
            options = RenamingOptions(voting_rounds=0)
            OrderPreservingRenaming.__call__  # appease linters
            run_protocol(
                partial(OrderPreservingRenaming, options=options),
                n=7,
                t=2,
                ids=standard_ids(7),
                seed=0,
            )


class TestDeterminism:
    def test_same_seed_same_names(self):
        runs = [
            run_protocol(
                OrderPreservingRenaming,
                n=7,
                t=2,
                ids=standard_ids(7),
                adversary=make_adversary("noise"),
                seed=42,
            )
            for _ in range(2)
        ]
        assert runs[0].new_names() == runs[1].new_names()

    def test_different_workloads_same_guarantees(self):
        from repro.workloads import make_ids, workload_names

        for workload in workload_names():
            ids = make_ids(workload, 7, seed=1)
            result = run_protocol(
                OrderPreservingRenaming,
                n=7,
                t=2,
                ids=ids,
                adversary=make_adversary("id-forging"),
                seed=1,
            )
            assert_renaming_ok(result, 8, context=f"workload={workload}")
